//! Tamper detection demonstration: the attacks of §1 against the untrusted
//! store, and how TDB detects each one.
//!
//! ```sh
//! cargo run --example tamper_audit
//! ```

use std::sync::Arc;

use tdb::{CommitOp, TrustedBackend, TrustedDbBuilder};
use tdb_crypto::SecretKey;
use tdb_storage::{
    CounterOverTrusted, MemArchive, MemStore, MemTrustedStore, SharedUntrusted, TrustedStore,
};

fn main() {
    let secret = SecretKey::random(24);
    let untrusted = Arc::new(MemStore::new());
    let register = Arc::new(MemTrustedStore::new(64));
    let backend = || {
        TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
            Arc::clone(&register) as Arc<dyn TrustedStore>
        )))
    };
    let build = |store: Arc<MemStore>| {
        TrustedDbBuilder::new().secret(secret.clone()).open(
            store as SharedUntrusted,
            backend(),
            Arc::new(MemArchive::new()),
        )
    };

    let db = TrustedDbBuilder::new()
        .secret(secret.clone())
        .create(
            Arc::clone(&untrusted) as SharedUntrusted,
            backend(),
            Arc::new(MemArchive::new()),
        )
        .expect("create");
    let p = db.partition();
    let c = db.chunks().allocate_chunk(p).expect("allocate");
    db.chunks()
        .commit(vec![CommitOp::WriteChunk {
            id: c,
            bytes: b"account balance: $100".to_vec(),
        }])
        .expect("write");
    println!("stored: \"account balance: $100\"");

    // --- Attack 1: the host cannot read the state --------------------------
    let image = untrusted.image();
    let visible = image.windows(b"$100".len()).any(|w| w == b"$100");
    println!("attack 1 (read raw device): plaintext visible = {visible}");
    assert!(!visible, "secrecy: state must be encrypted");

    // --- Attack 2: bit-flip the stored state -------------------------------
    // Snapshot the device after a clean shutdown; this is the state the
    // attacker copies.
    db.close().expect("close");
    drop(db);
    let snapshot = untrusted.image();
    let mut flipped = 0;
    let mut detected = 0;
    for offset in (512..snapshot.len() as u64).step_by(101) {
        let tampered = Arc::new(MemStore::from_bytes(snapshot.clone()));
        tampered.tamper(offset, 0x20);
        flipped += 1;
        match build(tampered) {
            Err(_) => detected += 1,
            Ok(db) => match db.chunks().read(c) {
                Err(_) => detected += 1,
                Ok(data) => assert_eq!(data, b"account balance: $100", "silent corruption!"),
            },
        }
    }
    println!("attack 2 (bit flips): {detected}/{flipped} flips detected, 0 silent corruptions");
    assert!(detected > 0);

    // --- Attack 3: replay a saved copy after spending ----------------------
    // "A consumer could save a copy of the local database, purchase some
    // goods, then replay the saved copy, thus eliminating payments" (§1).
    let db = build(Arc::new(MemStore::from_bytes(snapshot.clone()))).expect("reopen");
    let saved_copy = snapshot; // The attacker's stash: balance still $100.
    db.chunks()
        .commit(vec![CommitOp::WriteChunk {
            id: c,
            bytes: b"account balance: $1".to_vec(),
        }])
        .expect("spend");
    db.close().expect("close");
    drop(db);
    println!("spent down to $1; attacker replays the saved $100 image...");
    match build(Arc::new(MemStore::from_bytes(saved_copy))) {
        Err(e) => println!("attack 3 (replay): detected — {e}"),
        Ok(_) => panic!("replay attack succeeded!"),
    }

    println!("ok");
}
