//! Backup and restore (§6): full + incremental backup chains on archival
//! storage, surviving a simulated media failure of the untrusted store.
//!
//! ```sh
//! cargo run --example backup_cycle
//! ```

use std::sync::Arc;

use tdb::{ApproveAll, BackupSpec, CommitOp, TrustedBackend, TrustedDbBuilder};
use tdb_crypto::SecretKey;
use tdb_storage::{
    CounterOverTrusted, MemArchive, MemStore, MemTrustedStore, SharedUntrusted, TrustedStore,
};

fn main() {
    // Platform stores. The archive outlives the untrusted store — its
    // "failures are independent of the untrusted store" (§2.1).
    let secret = SecretKey::random(24);
    let untrusted = Arc::new(MemStore::new());
    let register = Arc::new(MemTrustedStore::new(64));
    let archive = Arc::new(MemArchive::new());
    let backend = || {
        TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
            Arc::clone(&register) as Arc<dyn TrustedStore>
        )))
    };

    let db = TrustedDbBuilder::new()
        .secret(secret.clone())
        .create(
            Arc::clone(&untrusted) as SharedUntrusted,
            backend(),
            archive.clone(),
        )
        .expect("create database");
    let p = db.partition();

    // Write some usage counters.
    let mut chunks = Vec::new();
    for i in 0..20u32 {
        let c = db.chunks().allocate_chunk(p).expect("allocate");
        db.chunks()
            .commit(vec![CommitOp::WriteChunk {
                id: c,
                bytes: format!("usage-counter {i} = 0").into_bytes(),
            }])
            .expect("write");
        chunks.push(c);
    }

    // Full backup.
    let full = db
        .backup(
            &[BackupSpec {
                source: p,
                base: None,
            }],
            "nightly-full",
        )
        .expect("full backup");
    println!(
        "full backup: {} object(s), {} bytes in archive",
        full.names.len(),
        archive.total_size()
    );

    // The device keeps being used: counters tick up.
    for (i, c) in chunks.iter().enumerate().take(5) {
        db.chunks()
            .commit(vec![CommitOp::WriteChunk {
                id: *c,
                bytes: format!("usage-counter {i} = 7").into_bytes(),
            }])
            .expect("update");
    }

    // Incremental backup against the full backup's snapshot — "fast
    // incremental backups, which contain only changes made since a
    // previous backup" (§2.2).
    let before = archive.total_size();
    let _incr = db
        .backup(
            &[BackupSpec {
                source: p,
                base: Some(full.snapshots[0]),
            }],
            "nightly-incr1",
        )
        .expect("incremental backup");
    let incr_bytes = archive.total_size() - before;
    println!(
        "incremental backup: {} bytes (full was {} bytes)",
        incr_bytes, before
    );
    assert!(
        incr_bytes * 2 < before,
        "incremental should be much smaller"
    );
    db.close().expect("close");
    drop(db);

    // --- Media failure: the untrusted store is lost entirely ---------------
    println!("simulating media failure: untrusted store destroyed");
    let fresh_untrusted = Arc::new(MemStore::new());

    // Recreate an empty database on the new media (same platform secret and
    // counter), then restore the backup chain.
    let db = TrustedDbBuilder::new()
        .secret(secret.clone())
        .create(
            Arc::clone(&fresh_untrusted) as SharedUntrusted,
            backend(),
            archive.clone(),
        )
        .expect("re-create database on new media");

    let report = db
        .restore(&["nightly-full.0", "nightly-incr1.0"], &ApproveAll)
        .expect("restore chain");
    println!(
        "restored partition(s) {:?}: {} chunks",
        report.restored, report.chunks_written
    );

    // Updated counters come from the incremental, the rest from the full.
    let updated = db.chunks().read(chunks[0]).expect("read restored");
    assert_eq!(updated, b"usage-counter 0 = 7");
    let untouched = db.chunks().read(chunks[10]).expect("read restored");
    assert_eq!(untouched, b"usage-counter 10 = 0");
    println!("counter 0:  {}", String::from_utf8_lossy(&updated));
    println!("counter 10: {}", String::from_utf8_lossy(&untouched));

    // Restores need the whole set and an unbroken chain; a trusted program
    // may additionally "deny frequent restoring or restoring of old
    // backups" (§6.3) via the RestorePolicy hook.
    let err = db
        .restore(&["nightly-incr1.0"], &ApproveAll)
        .expect_err("incremental alone must be rejected");
    println!("restoring the incremental alone is rejected: {err}");
    db.close().expect("clean shutdown");
    println!("ok");
}
