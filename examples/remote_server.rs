//! TDB over an untrusted *server* (§1, §10): the database lives on a
//! network store the client does not trust, with client-side write
//! batching to cut round trips.
//!
//! "TDB may also be used to protect a database stored at an untrusted
//! server. … This application of TDB may benefit from additional
//! optimizations for reducing network round-trips to the untrusted server,
//! such as batching reads and writes."
//!
//! ```sh
//! cargo run --example remote_server
//! ```

use std::sync::Arc;
use std::time::Duration;

use tdb::{CommitOp, TrustedBackend, TrustedDbBuilder};
use tdb_crypto::SecretKey;
use tdb_storage::{
    BatchingStore, CounterOverTrusted, MemArchive, MemStore, MemTrustedStore, RemoteStore,
    SharedUntrusted, SimClock, TrustedStore,
};

fn main() {
    // The "server": raw storage the client cannot trust. Every request
    // pays a simulated 3 ms round trip, accounted on a virtual clock.
    let server_disk = Arc::new(MemStore::new());
    let network = Arc::new(SimClock::new(false));
    let build_client = |batched: bool| -> SharedUntrusted {
        let remote = Arc::new(RemoteStore::new(
            Arc::clone(&server_disk) as SharedUntrusted,
            Duration::from_millis(3),
            Arc::clone(&network),
        ));
        if batched {
            Arc::new(BatchingStore::new(remote))
        } else {
            remote
        }
    };

    // The client device holds the trusted pieces: the secret key and the
    // monotonic counter.
    let secret = SecretKey::random(24);
    let register = Arc::new(MemTrustedStore::new(64));
    let backend = || {
        TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(
            Arc::clone(&register) as Arc<dyn TrustedStore>
        )))
    };

    let db = TrustedDbBuilder::new()
        .secret(secret.clone())
        .create(build_client(true), backend(), Arc::new(MemArchive::new()))
        .expect("create database on remote server");

    network.reset();
    let p = db.partition();
    let mut chunks = Vec::new();
    for i in 0..25u32 {
        let c = db.chunks().allocate_chunk(p).expect("allocate");
        db.chunks()
            .commit(vec![CommitOp::WriteChunk {
                id: c,
                bytes: format!("entitlement record {i}").into_bytes(),
            }])
            .expect("write");
        chunks.push(c);
    }
    println!(
        "25 commits over the network: {:?} of simulated round-trip time (batched writes)",
        network.elapsed()
    );

    // Everything reads back validated, through the cache-aware map walk.
    network.reset();
    for (i, c) in chunks.iter().enumerate() {
        let data = db.chunks().read(*c).expect("read");
        assert_eq!(data, format!("entitlement record {i}").as_bytes());
    }
    println!(
        "25 validated reads: {:?} of simulated round-trip time",
        network.elapsed()
    );

    // The server operator tampers with its own disk; the client detects it.
    db.close().expect("close");
    drop(db);
    server_disk.tamper(2048, 0x80);
    let reopened = TrustedDbBuilder::new().secret(secret).open(
        build_client(true),
        backend(),
        Arc::new(MemArchive::new()),
    );
    match reopened {
        Err(e) => println!("server-side tampering detected on reopen: {e}"),
        Ok(db) => {
            // The flipped byte may sit in untouched slack; every read is
            // still validated.
            let mut detected = false;
            for c in &chunks {
                if db.chunks().read(*c).is_err() {
                    detected = true;
                }
            }
            println!(
                "server-side tampering: detected-on-read = {detected} (byte may be in slack space)"
            );
        }
    }
    println!("ok");
}
