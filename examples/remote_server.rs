//! TDB served over the network (§1, §10): a real `tdb-server` process
//! loop on one end of a TCP socket, a real `tdb-client` on the other,
//! and — because read proofs travel the wire — a client that verifies
//! every answer against a root digest it pinned itself, trusting the
//! server for availability only.
//!
//! "TDB may also be used to protect a database stored at an untrusted
//! server. … This application of TDB may benefit from additional
//! optimizations for reducing network round-trips to the untrusted
//! server, such as batching reads and writes."
//!
//! The flow: spawn the server on a loopback port, fail an impostor's
//! handshake, then connect with the shared key, load records through a
//! pipelined burst, pin the snapshot root, and re-read everything with
//! client-side Merkle verification. A later update changes the root, so
//! the stale pin rejects — freshness is the client's call, not the
//! server's.
//!
//! ```sh
//! cargo run --example remote_server
//! ```

use std::sync::Arc;

use tdb::{Command, Response, TrustedDbBuilder};
use tdb_client::{ClientError, TdbClient};
use tdb_crypto::SecretKey;
use tdb_server::{ServerConfig, TdbServer};

const REC_TAG: u32 = 42;

fn record(payload: &str) -> Vec<u8> {
    let mut out = REC_TAG.to_le_bytes().to_vec();
    out.extend_from_slice(payload.as_bytes());
    out
}

#[derive(Debug)]
struct Rec(Vec<u8>);

impl tdb::StoredObject for Rec {
    fn type_tag(&self) -> u32 {
        REC_TAG
    }
    fn pickle(&self) -> Vec<u8> {
        self.0.clone()
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn unpickle_rec(body: &[u8]) -> tdb_object::errors::Result<Arc<dyn tdb::StoredObject>> {
    Ok(Arc::new(Rec(body.to_vec())))
}

fn main() {
    // The server side: a trusted database and the accept loop over it.
    // The pre-shared HMAC key gates the handshake — no key, no session.
    let auth_key = b"example-pre-shared-key".to_vec();
    let db = Arc::new(
        TrustedDbBuilder::new()
            .register_type(REC_TAG, unpickle_rec)
            .build_in_memory()
            .expect("build database"),
    );
    let partition = db.partition();
    let mut server = TdbServer::spawn(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig::new(SecretKey::new(auth_key.clone())),
    )
    .expect("spawn server");
    let addr = server.addr();
    println!("server listening on {addr}");

    // An impostor without the key never gets a session: the handshake is
    // challenge-response, so the key itself never crosses the wire.
    match TdbClient::connect(addr, "impostor", b"wrong-key") {
        Err(ClientError::AuthRejected(reason)) => {
            println!("impostor rejected at the handshake: {reason}")
        }
        other => panic!("impostor must be rejected, got {other:?}"),
    }

    // The real client: authenticate, then load 25 records in one
    // pipelined burst — every send goes out before the first recv, and
    // the server feeds the whole burst through group commit.
    let mut client = TdbClient::connect(addr, "storefront", &auth_key).expect("connect");
    let mut sent = Vec::new();
    for i in 0..25u32 {
        let payload = format!("entitlement record {i}");
        let req = client
            .send(&Command::Create {
                partition,
                record: record(&payload),
            })
            .expect("send");
        sent.push((req, payload));
    }
    let mut ids = Vec::new();
    for (req, payload) in &sent {
        let (id, resp) = client.recv().expect("recv");
        assert_eq!(id, *req, "pipelined responses arrive in order");
        match resp {
            Response::Id(obj) => ids.push((obj, payload.clone())),
            other => panic!("create answered {other:?}"),
        }
    }
    println!("25 records created over one pipelined burst");

    // Pin the snapshot root. From here on the server is untrusted for
    // integrity: every verified read must prove membership, via the
    // chunk-map Merkle path shipped with the record, against this digest.
    let root = client.snapshot_root().expect("pin root");
    for (id, payload) in &ids {
        let body = client.get_verified(*id, &root).expect("verified read");
        assert_eq!(body, record(payload));
    }
    println!("25 reads verified client-side against the pinned root");

    // An update moves the root. The stale pin now rejects that record's
    // proof — a server replaying yesterday's state cannot satisfy a
    // client holding today's digest, and vice versa.
    client
        .put(ids[7].0, record("entitlement record 7 (revoked)"))
        .expect("update");
    match client.get_verified(ids[7].0, &root) {
        Err(ClientError::ProofInvalid) => {
            println!("stale root rejects the updated record's proof")
        }
        other => panic!("stale pin must reject, got {other:?}"),
    }
    let fresh = client.snapshot_root().expect("re-pin root");
    assert_ne!(fresh, root, "an update must move the root digest");
    let body = client
        .get_verified(ids[7].0, &fresh)
        .expect("verified read against the fresh root");
    assert_eq!(body, record("entitlement record 7 (revoked)"));
    println!("re-pinned root verifies the update");

    let stats = server.stats();
    println!(
        "server stats: {} sessions accepted, {} rejected, {} requests served",
        stats.sessions.load(std::sync::atomic::Ordering::Relaxed),
        stats.rejected.load(std::sync::atomic::Ordering::Relaxed),
        stats.requests.load(std::sync::atomic::Ordering::Relaxed)
    );
    drop(client);
    server.shutdown();
    println!("ok");
}
