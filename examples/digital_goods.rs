//! Digital-goods vending: the paper's motivating scenario (§1) and the
//! shape of its high-level benchmark (§9.5.1).
//!
//! A vendor *binds* contracts (pay-per-use, limited-trial, site-license) to
//! digital goods; a consumer *releases* (acquires) a good under one of the
//! contracts, which debits an account and mints a license. Collections with
//! functional indexes answer "which goods does this vendor sell?", "which
//! licenses does this consumer hold?", and price-range queries.
//!
//! ```sh
//! cargo run --example digital_goods
//! ```

use std::any::Any;
use std::sync::Arc;

use tdb::{IndexKey, IndexKind, StoredObject, TrustedDbBuilder};
use tdb_crypto::SecretKey;

// ---------------------------------------------------------------------------
// Schema.
// ---------------------------------------------------------------------------

const GOOD_TAG: u32 = 10;
const CONTRACT_TAG: u32 = 11;
const ACCOUNT_TAG: u32 = 12;
const LICENSE_TAG: u32 = 13;

#[derive(Debug, Clone)]
struct Good {
    sku: String,
    vendor: String,
    title: String,
}

#[derive(Debug, Clone)]
struct Contract {
    sku: String,
    kind: String, // "pay-per-use" | "trial" | "site"
    price_cents: i64,
    max_uses: u32,
}

#[derive(Debug, Clone)]
struct Account {
    owner: String,
    cents: i64,
}

#[derive(Debug, Clone)]
struct License {
    owner: String,
    sku: String,
    contract_kind: String,
    uses_left: u32,
}

macro_rules! pickle_strings_and_nums {
    ($t:ty, $tag:expr, [$($s:ident),*], [$($n:ident : $nt:ty),*]) => {
        impl StoredObject for $t {
            fn type_tag(&self) -> u32 { $tag }
            fn pickle(&self) -> Vec<u8> {
                let mut out = Vec::new();
                $(
                    out.extend_from_slice(&(self.$s.len() as u32).to_le_bytes());
                    out.extend_from_slice(self.$s.as_bytes());
                )*
                $( out.extend_from_slice(&self.$n.to_le_bytes()); )*
                out
            }
            fn as_any(&self) -> &dyn Any { self }
        }
    };
}

pickle_strings_and_nums!(Good, GOOD_TAG, [sku, vendor, title], []);
pickle_strings_and_nums!(Contract, CONTRACT_TAG, [sku, kind], [price_cents: i64, max_uses: u32]);
pickle_strings_and_nums!(Account, ACCOUNT_TAG, [owner], [cents: i64]);
pickle_strings_and_nums!(License, LICENSE_TAG, [owner, sku, contract_kind], [uses_left: u32]);

struct Cursor<'a>(&'a [u8], usize);
impl Cursor<'_> {
    fn string(&mut self) -> String {
        let n = u32::from_le_bytes(self.0[self.1..self.1 + 4].try_into().unwrap()) as usize;
        let s = String::from_utf8(self.0[self.1 + 4..self.1 + 4 + n].to_vec()).unwrap();
        self.1 += 4 + n;
        s
    }
    fn i64(&mut self) -> i64 {
        let v = i64::from_le_bytes(self.0[self.1..self.1 + 8].try_into().unwrap());
        self.1 += 8;
        v
    }
    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.0[self.1..self.1 + 4].try_into().unwrap());
        self.1 += 4;
        v
    }
}

fn unpickle_good(b: &[u8]) -> tdb_object::errors::Result<Arc<dyn StoredObject>> {
    let mut c = Cursor(b, 0);
    Ok(Arc::new(Good {
        sku: c.string(),
        vendor: c.string(),
        title: c.string(),
    }))
}
fn unpickle_contract(b: &[u8]) -> tdb_object::errors::Result<Arc<dyn StoredObject>> {
    let mut c = Cursor(b, 0);
    Ok(Arc::new(Contract {
        sku: c.string(),
        kind: c.string(),
        price_cents: c.i64(),
        max_uses: c.u32(),
    }))
}
fn unpickle_account(b: &[u8]) -> tdb_object::errors::Result<Arc<dyn StoredObject>> {
    let mut c = Cursor(b, 0);
    Ok(Arc::new(Account {
        owner: c.string(),
        cents: c.i64(),
    }))
}
fn unpickle_license(b: &[u8]) -> tdb_object::errors::Result<Arc<dyn StoredObject>> {
    let mut c = Cursor(b, 0);
    Ok(Arc::new(License {
        owner: c.string(),
        sku: c.string(),
        contract_kind: c.string(),
        uses_left: c.u32(),
    }))
}

// Functional index key extractors (§8).
fn good_by_vendor(o: &dyn StoredObject) -> Option<Vec<u8>> {
    o.as_any()
        .downcast_ref::<Good>()
        .map(|g| IndexKey::new().str(&g.vendor).into_bytes())
}
fn contract_by_sku(o: &dyn StoredObject) -> Option<Vec<u8>> {
    o.as_any()
        .downcast_ref::<Contract>()
        .map(|c| IndexKey::new().str(&c.sku).into_bytes())
}
fn contract_by_price(o: &dyn StoredObject) -> Option<Vec<u8>> {
    o.as_any()
        .downcast_ref::<Contract>()
        .map(|c| IndexKey::new().i64(c.price_cents).into_bytes())
}
fn license_by_owner(o: &dyn StoredObject) -> Option<Vec<u8>> {
    o.as_any()
        .downcast_ref::<License>()
        .map(|l| IndexKey::new().str(&l.owner).into_bytes())
}

fn main() {
    let db = TrustedDbBuilder::new()
        .secret(SecretKey::random(24))
        .register_type(GOOD_TAG, unpickle_good)
        .register_type(CONTRACT_TAG, unpickle_contract)
        .register_type(ACCOUNT_TAG, unpickle_account)
        .register_type(LICENSE_TAG, unpickle_license)
        .register_extractor("good_by_vendor", good_by_vendor)
        .register_extractor("contract_by_sku", contract_by_sku)
        .register_extractor("contract_by_price", contract_by_price)
        .register_extractor("license_by_owner", license_by_owner)
        .build_in_memory()
        .expect("create database");
    let p = db.partition();

    // Collections with indexes, as in the paper's benchmark setup.
    let (goods, contracts, accounts, licenses) = db
        .run(|tx| {
            let cs = db.collections();
            let goods = cs.create_collection(tx, p, "goods")?;
            cs.add_index(tx, goods, "vendor", "good_by_vendor", IndexKind::Unsorted)?;
            let contracts = cs.create_collection(tx, p, "contracts")?;
            cs.add_index(tx, contracts, "sku", "contract_by_sku", IndexKind::Sorted)?;
            cs.add_index(
                tx,
                contracts,
                "price",
                "contract_by_price",
                IndexKind::Sorted,
            )?;
            let accounts = cs.create_collection(tx, p, "accounts")?;
            let licenses = cs.create_collection(tx, p, "licenses")?;
            cs.add_index(tx, licenses, "owner", "license_by_owner", IndexKind::Sorted)?;
            Ok((goods, contracts, accounts, licenses))
        })
        .expect("set up collections");

    // --- Bind: a vendor binds three alternative contracts to a good -------
    for (i, title) in ["Sonata in G", "Field Recording", "Synthwave Set"]
        .iter()
        .enumerate()
    {
        let sku = format!("sku-{i:03}");
        db.run(|tx| {
            let cs = db.collections();
            cs.insert(
                tx,
                goods,
                Arc::new(Good {
                    sku: sku.clone(),
                    vendor: "harmonic-labs".into(),
                    title: title.to_string(),
                }),
            )?;
            for (kind, price, uses) in [
                ("pay-per-use", 50, 1u32),
                ("trial", 0, 3),
                ("site", 5_000, u32::MAX),
            ] {
                cs.insert(
                    tx,
                    contracts,
                    Arc::new(Contract {
                        sku: sku.clone(),
                        kind: kind.into(),
                        price_cents: price,
                        max_uses: uses,
                    }),
                )?;
            }
            Ok(())
        })
        .expect("bind");
        println!("bound 3 contracts to {sku} ({title})");
    }

    // --- Release: a consumer picks a contract and acquires the good -------
    let consumer = db
        .run(|tx| {
            db.collections().insert(
                tx,
                accounts,
                Arc::new(Account {
                    owner: "carol".into(),
                    cents: 500,
                }),
            )
        })
        .expect("open account");

    let sku = "sku-001";
    db.run(|tx| {
        let cs = db.collections();
        // Find this good's contracts via the sku index, pick pay-per-use.
        let key = IndexKey::new().str(sku).into_bytes();
        let options = cs.lookup(tx, contracts, "sku", &key)?;
        let chosen = options
            .iter()
            .map(|id| tx.get::<Contract>(*id))
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .find(|c| c.kind == "pay-per-use")
            .expect("pay-per-use offered");
        // Debit the account.
        let account = tx.get::<Account>(consumer)?;
        assert!(account.cents >= chosen.price_cents, "insufficient funds");
        tx.put(
            consumer,
            Arc::new(Account {
                owner: account.owner.clone(),
                cents: account.cents - chosen.price_cents,
            }),
        )?;
        // Mint the license.
        cs.insert(
            tx,
            licenses,
            Arc::new(License {
                owner: account.owner.clone(),
                sku: sku.into(),
                contract_kind: chosen.kind.clone(),
                uses_left: chosen.max_uses,
            }),
        )?;
        Ok(())
    })
    .expect("release");
    println!("carol released {sku} under pay-per-use");

    // --- Queries over the trusted state ------------------------------------
    let (vendor_goods, cheap, carols) = db
        .run(|tx| {
            let cs = db.collections();
            let vkey = IndexKey::new().str("harmonic-labs").into_bytes();
            let vendor_goods = cs.lookup(tx, goods, "vendor", &vkey)?.len();
            // Range query on encrypted data — possible because indexes are
            // built over decrypted objects (§1.2).
            let lo = IndexKey::new().i64(1).into_bytes();
            let hi = IndexKey::new().i64(100).into_bytes();
            let cheap = cs
                .range(tx, contracts, "price", Some(&lo), Some(&hi))?
                .len();
            let okey = IndexKey::new().str("carol").into_bytes();
            let carols = cs.lookup(tx, licenses, "owner", &okey)?.len();
            Ok((vendor_goods, cheap, carols))
        })
        .expect("queries");
    println!("harmonic-labs sells {vendor_goods} goods");
    println!("{cheap} contracts priced in (0, 100) cents");
    println!("carol holds {carols} license(s)");
    assert_eq!((vendor_goods, cheap, carols), (3, 3, 1));

    let balance = db
        .run(|tx| tx.get::<Account>(consumer).map(|a| a.cents))
        .expect("balance");
    println!("carol's balance: {balance} cents");
    assert_eq!(balance, 450);
    db.close().expect("clean shutdown");
    println!("ok");
}
