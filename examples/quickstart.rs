//! Quickstart: create a trusted database, store typed objects
//! transactionally, and read them back validated.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::any::Any;
use std::sync::Arc;

use tdb::{StoredObject, TrustedDbBuilder};
use tdb_crypto::SecretKey;

/// The application state: a pay-per-use account (the paper's motivating
/// example: "under a pay-per-use contract, the program may verify and debit
/// the consumer's account").
#[derive(Debug)]
struct Account {
    owner: String,
    cents: i64,
}

const ACCOUNT_TAG: u32 = 1;

impl StoredObject for Account {
    fn type_tag(&self) -> u32 {
        ACCOUNT_TAG
    }
    fn pickle(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.owner.len() as u32).to_le_bytes());
        out.extend_from_slice(self.owner.as_bytes());
        out.extend_from_slice(&self.cents.to_le_bytes());
        out
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn unpickle_account(body: &[u8]) -> tdb_object::errors::Result<Arc<dyn StoredObject>> {
    let n = u32::from_le_bytes(body[..4].try_into().unwrap()) as usize;
    Ok(Arc::new(Account {
        owner: String::from_utf8(body[4..4 + n].to_vec()).unwrap(),
        cents: i64::from_le_bytes(body[4 + n..4 + n + 8].try_into().unwrap()),
    }))
}

fn main() {
    // The platform provides a secret key; everything else is derived.
    let db = TrustedDbBuilder::new()
        .secret(SecretKey::random(24))
        .register_type(ACCOUNT_TAG, unpickle_account)
        .build_in_memory()
        .expect("create database");

    // Create an account and debit it twice, each step an atomic,
    // replay-protected transaction.
    let id = db
        .run(|tx| {
            tx.create(
                db.partition(),
                Arc::new(Account {
                    owner: "alice".into(),
                    cents: 1_000,
                }),
            )
        })
        .expect("create account");

    for price in [250i64, 99] {
        db.run(|tx| {
            let account = tx.get::<Account>(id)?;
            println!(
                "debit {:>4} cents from {} (balance {})",
                price, account.owner, account.cents
            );
            tx.put(
                id,
                Arc::new(Account {
                    owner: account.owner.clone(),
                    cents: account.cents - price,
                }),
            )
        })
        .expect("debit");
    }

    let balance = db
        .run(|tx| tx.get::<Account>(id).map(|a| a.cents))
        .expect("read balance");
    println!("final balance: {balance} cents");
    assert_eq!(balance, 651);

    // Every read was decrypted and validated against the hash tree rooted
    // in the tamper-resistant store; an attacker modifying, corrupting, or
    // replaying the untrusted bytes would get a TamperDetected error
    // instead of a wrong balance. See examples/tamper_audit.rs.
    db.close().expect("clean shutdown");
    println!("ok");
}
