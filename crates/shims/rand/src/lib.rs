//! API-compatible stand-in for the `rand` crate covering the surface the
//! workspace uses: `RngCore`, `thread_rng()`, and `fill_bytes`. The build
//! environment has no network access to a crates registry, so this small
//! shim is vendored in-tree.
//!
//! The generator is xoshiro256** seeded per thread from the system clock,
//! a monotonically increasing process-wide counter, and a stack address.
//! That is plenty for key generation and test data in this codebase (the
//! crypto layer's security comes from its primitives, not this RNG), but
//! it is *not* a cryptographically secure source of randomness.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// The core of a random number generator, as in `rand_core`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn seeded(seed: u64) -> Xoshiro256 {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix cannot produce
        // four zeros from any seed, but keep the guard for clarity.
        if s == [0; 4] {
            s[0] = 1;
        }
        Xoshiro256 { s }
    }

    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

thread_local! {
    static THREAD_STATE: Cell<Option<Xoshiro256>> = const { Cell::new(None) };
}

static THREAD_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_seed() -> u64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0xDEAD_BEEF);
    let seq = THREAD_SEQ.fetch_add(1, Ordering::Relaxed);
    let stack_probe = 0u8;
    nanos ^ (seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ ((&stack_probe as *const u8) as u64)
}

/// Handle to the per-thread generator, as returned by [`thread_rng`].
pub struct ThreadRng {
    _private: (),
}

/// Returns a handle to this thread's lazily seeded generator.
pub fn thread_rng() -> ThreadRng {
    ThreadRng { _private: () }
}

fn with_state<R>(f: impl FnOnce(&mut Xoshiro256) -> R) -> R {
    THREAD_STATE.with(|cell| {
        let mut state = cell
            .take()
            .unwrap_or_else(|| Xoshiro256::seeded(fresh_seed()));
        let result = f(&mut state);
        cell.set(Some(state));
        result
    })
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        with_state(|s| s.next() as u32)
    }

    fn next_u64(&mut self) -> u64 {
        with_state(|s| s.next())
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        with_state(|s| {
            for chunk in dest.chunks_mut(8) {
                let word = s.next().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        });
    }
}

pub mod rngs {
    pub use super::ThreadRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_bytes_varies() {
        let mut rng = thread_rng();
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        rng.fill_bytes(&mut a);
        rng.fill_bytes(&mut b);
        assert_ne!(a, b);
        assert_ne!(a, [0u8; 32]);
    }

    #[test]
    fn words_vary() {
        let mut rng = thread_rng();
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        let _ = rng.next_u32();
    }

    #[test]
    fn threads_get_distinct_streams() {
        let mut here = [0u8; 16];
        thread_rng().fill_bytes(&mut here);
        let there = std::thread::spawn(|| {
            let mut buf = [0u8; 16];
            thread_rng().fill_bytes(&mut buf);
            buf
        })
        .join()
        .unwrap();
        assert_ne!(here, there);
    }
}
