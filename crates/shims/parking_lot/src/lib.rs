//! API-compatible stand-in for the `parking_lot` crate, implemented over
//! `std::sync`. The build environment has no network access to a crates
//! registry, so the workspace vendors the small API surface it actually
//! uses: `Mutex`, `RwLock`, and `Condvar::wait_until`.
//!
//! Semantics match parking_lot where the workspace depends on them:
//! locks are not poisoned by panics (a poisoned std lock is transparently
//! recovered), guards implement `Deref`/`DerefMut`, and `Condvar` pairs
//! only with this module's `Mutex`.

use std::sync::{self, PoisonError};
use std::time::Instant;

/// A mutual exclusion primitive (non-poisoning, like parking_lot's).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_until` can temporarily take the std guard
    // by value (std's wait API consumes and returns the guard).
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// A reader-writer lock (non-poisoning).
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condition-variable wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable pairing with this module's `Mutex`.
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Waits until notified or `deadline` passes, like parking_lot's
    /// `wait_until`.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken");
        let now = Instant::now();
        if now >= deadline {
            guard.inner = Some(inner);
            return WaitTimeoutResult { timed_out: true };
        }
        let (inner, result) = self
            .inner
            .wait_timeout(inner, deadline - now)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Waits until notified or `timeout` elapses, like parking_lot's
    /// `wait_for`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn rwlock_try_paths() {
        let l = RwLock::new(5);
        {
            let r = l.try_read().expect("uncontended try_read");
            assert_eq!(*r, 5);
            // A second reader coexists; a writer does not.
            assert!(l.try_read().is_some());
            assert!(l.try_write().is_none());
        }
        {
            let mut w = l.try_write().expect("uncontended try_write");
            *w = 6;
            assert!(l.try_read().is_none());
        }
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let result = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(result.timed_out());
    }

    #[test]
    fn condvar_wakes() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            *m2.lock() = true;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while !*g {
            let r = cv.wait_until(&mut g, Instant::now() + Duration::from_secs(5));
            assert!(!r.timed_out(), "missed wakeup");
        }
        t.join().unwrap();
    }
}
