//! API-compatible stand-in for the `proptest` crate. The build
//! environment has no network access to a crates registry, so the
//! workspace vendors the surface its property tests use:
//!
//! * the `proptest!` block macro (with `#![proptest_config(..)]`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! * strategies: integer ranges, tuples, `Just`, `any::<T>()`,
//!   `prop_oneof!` (weighted and unweighted), `.prop_map`,
//!   `collection::vec`, `sample::Index`, and simple string patterns
//!   like `"[a-z]{0,8}"`.
//!
//! Differences from real proptest: generation is driven by a
//! deterministic per-(test, case) seed — set `TDB_PROPTEST_SEED` to vary
//! the base seed — and failing cases are *not* shrunk; the failure
//! message reports the seed so a case can be replayed exactly.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

// ---------------------------------------------------------------------------
// RNG

/// Deterministic generator handed to strategies (xoshiro256**).
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        TestRng { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    pub fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform value in `[lo, hi]` (inclusive), over the full u64 domain.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi.wrapping_sub(lo);
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo.wrapping_add(self.below(span + 1))
        }
    }
}

// ---------------------------------------------------------------------------
// Core strategy machinery

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe view used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

// Integer range strategies.
macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let hi = self.end as i128 - 1;
                let span = (hi - lo) as u64;
                (lo + rng.range_inclusive(0, span) as i128) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                let span = (hi - lo) as u64;
                (lo + rng.range_inclusive(0, span) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuple strategies.
macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// String pattern strategy: supports a subset of regex syntax — literal
/// characters, `[a-z0-9_]`-style classes, and `{n}` / `{m,n}` repetition
/// counts — which covers patterns like `"[a-z]{0,8}"`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let atom: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    for c in lo..=hi {
                        set.push(char::from_u32(c).unwrap());
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional {n} or {m,n} repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad repetition"),
                    n.trim().parse::<usize>().expect("bad repetition"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = rng.range_inclusive(min as u64, max as u64) as usize;
        for _ in 0..count {
            if atom.is_empty() {
                continue;
            }
            out.push(atom[rng.below(atom.len() as u64) as usize]);
        }
    }
    out
}

/// Weighted union of boxed strategies — what `prop_oneof!` builds.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().any(|(w, _)| *w > 0), "all weights are zero");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (weight, strategy) in &self.arms {
            let weight = *weight as u64;
            if pick < weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

// ---------------------------------------------------------------------------
// any / Arbitrary

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        char::from_u32(rng.range_inclusive(0x20, 0x7E) as u32).unwrap()
    }
}

/// Strategy returned by [`any`].
pub struct Any<A> {
    _marker: std::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A`: `any::<u8>()`, `any::<Index>()`, …
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// collection / sample

pub mod collection {
    use super::{Strategy, TestRng};

    /// Accepted size arguments for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        /// Inclusive upper bound.
        pub max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors whose length falls in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.range_inclusive(self.size.min as u64, self.size.max as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod num {
    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Strategy for normal (finite, non-zero, non-subnormal) floats.
        pub struct Normal;

        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let candidate = f64::from_bits(rng.next_u64());
                    if candidate.is_normal() {
                        return candidate;
                    }
                }
            }
        }
    }
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// A position into a collection of not-yet-known size.
    #[derive(Clone, Copy, Debug)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Projects the index into `[0, len)`; panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.raw % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index {
                raw: rng.next_u64(),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Test runner

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; this shim never forks.
    pub fork: bool,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 32,
            max_shrink_iters: 0,
            fork: false,
        }
    }
}

/// A failed property (from `prop_assert!` and friends).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Drives `config.cases` cases of one property; used by `proptest!`.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = match std::env::var("TDB_PROPTEST_SEED") {
        Ok(v) => v.parse::<u64>().unwrap_or_else(|_| fnv1a(v.as_bytes())),
        Err(_) => 0x7DB0_5EED,
    };
    for case_index in 0..config.cases {
        let seed = fnv1a(name.as_bytes())
            ^ base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case_index as u64 + 1));
        let mut rng = TestRng::from_seed(seed);
        match catch_unwind(AssertUnwindSafe(|| case(&mut rng))) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => panic!(
                "property {name} failed at case {case_index}/{} (seed {seed:#x}): {e}",
                config.cases
            ),
            Err(payload) => {
                eprintln!(
                    "property {name} panicked at case {case_index}/{} (seed {seed:#x})",
                    config.cases
                );
                resume_unwind(payload);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
            stringify!($left), stringify!($right), left, right, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}\n  {}",
            stringify!($left), stringify!($right), left, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

pub mod strategy {
    pub use super::{BoxedStrategy, Just, Map, Strategy, Union};
}

pub mod prelude {
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn rng() -> super::TestRng {
        super::TestRng::from_seed(42)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..200 {
            let v = (3u16..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u8..=255).generate(&mut rng);
            assert!(w >= 1);
            let s = (5usize..6).generate(&mut rng);
            assert_eq!(s, 5);
        }
    }

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = "[a-z]{0,8}".generate(&mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        let lit = "ab[01]{2}".generate(&mut rng);
        assert_eq!(lit.len(), 4);
        assert!(lit.starts_with("ab"));
    }

    #[test]
    fn oneof_weights_respected() {
        let mut rng = rng();
        let strategy = prop_oneof![
            9 => Just(1u8),
            1 => Just(2u8),
        ];
        let mut ones = 0;
        for _ in 0..1000 {
            if strategy.generate(&mut rng) == 1 {
                ones += 1;
            }
        }
        assert!(ones > 700, "ones = {ones}");
    }

    #[test]
    fn vec_and_tuple_and_map() {
        let mut rng = rng();
        let strategy =
            super::collection::vec((any::<u8>(), 1u16..4).prop_map(|(a, b)| a as u16 + b), 2..5);
        for _ in 0..50 {
            let v = strategy.generate(&mut rng);
            assert!(v.len() >= 2 && v.len() < 5);
        }
    }

    #[test]
    fn index_projects() {
        let mut rng = rng();
        let idx = any::<prop::sample::Index>().generate(&mut rng);
        assert!(idx.index(7) < 7);
    }

    #[test]
    fn determinism_same_seed_same_values() {
        let mut a = super::TestRng::from_seed(7);
        let mut b = super::TestRng::from_seed(7);
        let strategy = super::collection::vec(any::<u64>(), 5..20);
        assert_eq!(strategy.generate(&mut a), strategy.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// The macro itself: args bind, asserts work, config applies.
        #[test]
        fn macro_roundtrip(a in 0u16..100, b in any::<bool>(), s in "[a-d]{1,3}") {
            prop_assert!(a < 100);
            prop_assert_eq!(b, b);
            prop_assert_ne!(s.len(), 0, "pattern {} must be nonempty", s);
        }
    }
}
