//! API-compatible stand-in for the `crossbeam` scoped-thread API, backed
//! by `std::thread::scope`. The build environment has no network access
//! to a crates registry, so the workspace vendors the surface it uses:
//! `crossbeam::scope(|s| { s.spawn(|_| ...); })`.
//!
//! One semantic difference from real crossbeam: if a spawned thread
//! panics and its handle was not joined, `std::thread::scope` propagates
//! the panic instead of returning `Err`. Callers here always `.unwrap()`
//! the scope result, so a child panic fails the caller either way.

use std::thread;

/// Result type matching `crossbeam::thread::Scope`'s `spawn`/`join`.
pub type ThreadResult<T> = thread::Result<T>;

/// A scope handle passed to [`scope`]'s closure and to every spawned
/// thread's closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Handle to a thread spawned inside a [`scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again (like
    /// crossbeam), so nested spawns are possible.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Creates a scope in which threads borrowing from the enclosing stack
/// frame can be spawned; all unjoined threads are joined before `scope`
/// returns.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

/// Mirror of `crossbeam::thread` for callers using the long path.
pub mod thread_mod {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_locals() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn join_returns_value() {
        let got = super::scope(|s| {
            let h = s.spawn(|_| 41 + 1);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(got, 42);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let got = super::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(got, 7);
    }
}
