//! API-compatible stand-in for the `criterion` benchmark harness. The
//! build environment has no network access to a crates registry, so the
//! workspace vendors the surface its benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`/`iter_batched`,
//! `BenchmarkId`, `Throughput`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is a simple wall-clock loop: a short warm-up, then
//! `sample_size` samples of an adaptively sized batch, reporting the
//! median per-iteration time. `--test` (as passed by `cargo bench --
//! --test`) runs each routine once and reports nothing, matching
//! criterion's smoke-test mode.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; the shim always runs one
/// setup per measured invocation, which is exactly `PerIteration`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Declares the throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// The timing loop handle passed to each benchmark closure.
pub struct Bencher<'a> {
    config: &'a RunConfig,
    /// Median nanoseconds per iteration, filled in by `iter*`.
    report_ns: Option<f64>,
}

struct RunConfig {
    sample_size: usize,
    test_mode: bool,
    measurement_time: Duration,
}

impl<'a> Bencher<'a> {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.config.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up and batch sizing: grow the batch until it runs long
        // enough to measure reliably.
        let mut batch = 1u64;
        let warmup_floor = Duration::from_micros(200);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            if start.elapsed() >= warmup_floor || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut samples = Vec::with_capacity(self.config.sample_size);
        let deadline = Instant::now() + self.config.measurement_time;
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
        self.report_ns = Some(median(&mut samples));
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.config.test_mode {
            let input = setup();
            black_box(routine(input));
            return;
        }
        let mut samples = Vec::with_capacity(self.config.sample_size);
        let deadline = Instant::now() + self.config.measurement_time;
        // One warm-up invocation, then timed ones (setup excluded).
        let input = setup();
        black_box(routine(input));
        for _ in 0..self.config.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_nanos() as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
        self.report_ns = Some(median(&mut samples));
    }
}

fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark manager configured by `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            test_mode: false,
            measurement_time: Duration::from_secs(3),
            filter: None,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Applies command-line arguments (`--test`, and a positional name
    /// filter) like real criterion's harness entry point.
    pub fn configure_from_args(mut self) -> Criterion {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" => {}
                s if s.starts_with('-') => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(id.id.clone(), None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    fn run_one<F>(&mut self, name: String, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let config = RunConfig {
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            measurement_time: self.measurement_time,
        };
        let mut bencher = Bencher {
            config: &config,
            report_ns: None,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("{name}: ok (test mode)");
            return;
        }
        if let Some(ns) = bencher.report_ns {
            match throughput {
                Some(Throughput::Bytes(bytes)) | Some(Throughput::BytesDecimal(bytes)) => {
                    let mib_s = (bytes as f64 / (1024.0 * 1024.0)) / (ns / 1e9);
                    println!("{name:50} {:>12}/iter  {mib_s:>10.1} MiB/s", human_ns(ns));
                }
                Some(Throughput::Elements(n)) => {
                    let elem_s = n as f64 / (ns / 1e9);
                    println!("{name:50} {:>12}/iter  {elem_s:>10.0} elem/s", human_ns(ns));
                }
                None => println!("{name:50} {:>12}/iter", human_ns(ns)),
            }
        }
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        let throughput = self.throughput;
        self.criterion.run_one(full, throughput, f);
        self.criterion.sample_size = saved;
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5));
        let mut runs = 0u64;
        c.bench_function("counts", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn group_runs_batched() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(128));
        let mut runs = 0u64;
        group.bench_function(BenchmarkId::from_parameter("x"), |b| {
            b.iter_batched(|| 1u64, |v| runs += v, BatchSize::PerIteration)
        });
        group.finish();
        assert!(runs > 0);
    }
}
