#![warn(missing_docs)]

//! From-scratch cryptographic primitives for TDB.
//!
//! The TDB paper (OSDI 2000) protects a database on untrusted storage with a
//! small secret key and a collision-resistant hash in trusted storage. Each
//! *partition* of the database selects its own cipher and hash function
//! (§2.2), while the reserved system partition uses a fixed, conservative
//! pair (the paper uses 3DES + SHA-1, §5.2).
//!
//! This crate implements every primitive the system needs, from scratch and
//! validated against published test vectors, because no third-party crypto
//! crates are available in the build environment:
//!
//! - [`sha1`] and [`sha256`] — FIPS 180 hash functions.
//! - [`des`] — DES and 3DES (EDE3) block ciphers, FIPS 46-3.
//! - [`aes`] — AES-128/-256, FIPS 197 (the "other, more secure, algorithms
//!   that run faster than DES" the paper alludes to in §9.2.1).
//! - [`cbc`] — CBC mode with PKCS#7 padding over any [`BlockCipher`].
//! - [`hmac`] — HMAC (RFC 2104) over any [`HashKind`], used to *sign* commit
//!   chunks and backups ("the signature need not be publicly verifiable, so
//!   it may be based on symmetric-key encryption", §4.8.2.2).
//! - [`crc32`] — the unencrypted backup trailer checksum (§6.2).
//!
//! The [`CipherKind`] / [`HashKind`] enums are the dynamic dispatch points
//! used by partition cryptographic parameters.

pub mod aes;
pub mod cbc;
pub mod crc32;
pub mod des;
pub mod hmac;
pub mod sha1;
pub mod sha256;

use std::fmt;

/// Maximum digest length any supported hash can produce, in bytes.
pub const MAX_DIGEST_LEN: usize = 32;

/// Errors produced by cryptographic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A key of the wrong length was supplied for the selected cipher.
    BadKeyLength {
        /// Required key length.
        expected: usize,
        /// Supplied key length.
        got: usize,
    },
    /// Ciphertext length is not a multiple of the cipher block size.
    BadCiphertextLength {
        /// Cipher block size.
        block: usize,
        /// Offending ciphertext length.
        got: usize,
    },
    /// CBC padding was malformed on decryption (corrupt or tampered data).
    BadPadding,
    /// An initialization vector of the wrong length was supplied.
    BadIvLength {
        /// Required IV length (the block size).
        expected: usize,
        /// Supplied IV length.
        got: usize,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::BadKeyLength { expected, got } => {
                write!(f, "bad key length: expected {expected} bytes, got {got}")
            }
            CryptoError::BadCiphertextLength { block, got } => {
                write!(
                    f,
                    "ciphertext length {got} is not a multiple of block size {block}"
                )
            }
            CryptoError::BadPadding => write!(f, "malformed CBC padding"),
            CryptoError::BadIvLength { expected, got } => {
                write!(f, "bad IV length: expected {expected} bytes, got {got}")
            }
        }
    }
}

impl std::error::Error for CryptoError {}

/// A keyed block cipher operating on fixed-size blocks in place.
///
/// Implementations hold their expanded key schedule; construction is the
/// keying step. All TDB bulk encryption goes through [`cbc`] on top of this.
pub trait BlockCipher: Send + Sync {
    /// Block size in bytes (8 for DES/3DES, 16 for AES).
    fn block_size(&self) -> usize;
    /// Encrypts one block in place. `block.len()` must equal `block_size()`.
    fn encrypt_block(&self, block: &mut [u8]);
    /// Decrypts one block in place. `block.len()` must equal `block_size()`.
    fn decrypt_block(&self, block: &mut [u8]);
}

/// An incremental hash function.
pub trait Hasher: Send {
    /// Absorbs `data` into the hash state.
    fn update(&mut self, data: &[u8]);
    /// Consumes the state and returns the digest.
    fn finalize(self: Box<Self>) -> HashValue;
    /// Digest length in bytes.
    fn digest_len(&self) -> usize;
}

/// A fixed-capacity hash digest value.
///
/// Stored inline (no allocation) because descriptors in the chunk map hold
/// one per chunk (§4.3) and the map must stay compact.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct HashValue {
    len: u8,
    bytes: [u8; MAX_DIGEST_LEN],
}

impl HashValue {
    /// Creates a digest from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds [`MAX_DIGEST_LEN`].
    pub fn new(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= MAX_DIGEST_LEN, "digest too long");
        let mut buf = [0u8; MAX_DIGEST_LEN];
        buf[..bytes.len()].copy_from_slice(bytes);
        HashValue {
            len: bytes.len() as u8,
            bytes: buf,
        }
    }

    /// The empty digest (used for unwritten chunks).
    pub fn zero(len: usize) -> Self {
        assert!(len <= MAX_DIGEST_LEN);
        HashValue {
            len: len as u8,
            bytes: [0u8; MAX_DIGEST_LEN],
        }
    }

    /// Digest bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Digest length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if the digest is zero-length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Constant-time equality check, for comparing secrets or MACs.
    pub fn ct_eq(&self, other: &HashValue) -> bool {
        ct_eq(self.as_bytes(), other.as_bytes())
    }
}

impl fmt::Debug for HashValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HashValue(")?;
        for b in self.as_bytes() {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

/// Hash function selector for partition cryptographic parameters (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashKind {
    /// No validation: the digest is empty and never checked. The paper allows
    /// partitions with "no need ... to validate other data" (§2.2).
    Null,
    /// SHA-1 (the paper's default).
    Sha1,
    /// SHA-256 (a stronger modern option).
    Sha256,
}

impl HashKind {
    /// Length in bytes of digests this function produces.
    pub fn digest_len(self) -> usize {
        match self {
            HashKind::Null => 0,
            HashKind::Sha1 => 20,
            HashKind::Sha256 => 32,
        }
    }

    /// Creates a boxed incremental hasher (dynamic-dispatch convenience;
    /// hot paths should prefer [`InlineHasher`] or the one-shot helpers).
    pub fn hasher(self) -> Box<dyn Hasher> {
        match self {
            HashKind::Null => Box::new(NullHasher),
            HashKind::Sha1 => Box::new(sha1::Sha1::new()),
            HashKind::Sha256 => Box::new(sha256::Sha256::new()),
        }
    }

    /// Creates a stack-allocated incremental hasher.
    pub fn inline_hasher(self) -> InlineHasher {
        InlineHasher::new(self)
    }

    /// One-shot hash of `data`.
    ///
    /// Monomorphic: dispatches once on the kind and runs the concrete
    /// digest with no heap allocation (this sits under every chunk
    /// validation, so the old per-call `Box<dyn Hasher>` mattered).
    pub fn hash(self, data: &[u8]) -> HashValue {
        match self {
            HashKind::Null => HashValue::zero(0),
            HashKind::Sha1 => sha1::Sha1::digest(data),
            HashKind::Sha256 => sha256::Sha256::digest(data),
        }
    }

    /// One-shot hash over several segments without concatenating them.
    pub fn hash_parts(self, parts: &[&[u8]]) -> HashValue {
        let mut h = InlineHasher::new(self);
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }

    /// Stable wire tag for serialization.
    pub fn tag(self) -> u8 {
        match self {
            HashKind::Null => 0,
            HashKind::Sha1 => 1,
            HashKind::Sha256 => 2,
        }
    }

    /// Inverse of [`HashKind::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(HashKind::Null),
            1 => Some(HashKind::Sha1),
            2 => Some(HashKind::Sha256),
            _ => None,
        }
    }
}

/// A stack-allocated incremental hasher over any [`HashKind`].
///
/// The enum dispatch replaces per-call `Box<dyn Hasher>` allocation on the
/// validation hot paths; `Clone` snapshots the midstate (HMAC resumes from
/// pre-absorbed pad blocks this way).
#[derive(Clone)]
pub enum InlineHasher {
    /// No-op hasher for [`HashKind::Null`]: absorbs nothing, yields the
    /// empty digest.
    Null,
    /// SHA-1 state.
    Sha1(sha1::Sha1),
    /// SHA-256 state.
    Sha256(sha256::Sha256),
}

impl InlineHasher {
    /// Creates a fresh hasher for `kind`.
    pub fn new(kind: HashKind) -> Self {
        match kind {
            HashKind::Null => InlineHasher::Null,
            HashKind::Sha1 => InlineHasher::Sha1(sha1::Sha1::new()),
            HashKind::Sha256 => InlineHasher::Sha256(sha256::Sha256::new()),
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        match self {
            InlineHasher::Null => {}
            InlineHasher::Sha1(h) => h.absorb(data),
            InlineHasher::Sha256(h) => h.absorb(data),
        }
    }

    /// Consumes the state and returns the digest.
    pub fn finalize(self) -> HashValue {
        match self {
            InlineHasher::Null => HashValue::zero(0),
            InlineHasher::Sha1(h) => h.finish(),
            InlineHasher::Sha256(h) => h.finish(),
        }
    }

    /// Digest length in bytes.
    pub fn digest_len(&self) -> usize {
        match self {
            InlineHasher::Null => 0,
            InlineHasher::Sha1(_) => 20,
            InlineHasher::Sha256(_) => 32,
        }
    }
}

/// The no-op hasher backing [`HashKind::Null`].
struct NullHasher;

impl Hasher for NullHasher {
    fn update(&mut self, _data: &[u8]) {}
    fn finalize(self: Box<Self>) -> HashValue {
        HashValue::zero(0)
    }
    fn digest_len(&self) -> usize {
        0
    }
}

/// Cipher selector for partition cryptographic parameters (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CipherKind {
    /// No encryption (the paper allows unencrypted partitions). Data is
    /// stored as-is; the "block size" is 1 and no padding is added.
    Null,
    /// Single DES in CBC mode (the paper's fast per-partition choice).
    Des,
    /// Triple DES (EDE3) in CBC mode (the paper's system cipher).
    TripleDes,
    /// AES-128 in CBC mode.
    Aes128,
    /// AES-256 in CBC mode.
    Aes256,
}

impl CipherKind {
    /// Required key length in bytes.
    pub fn key_len(self) -> usize {
        match self {
            CipherKind::Null => 0,
            CipherKind::Des => 8,
            CipherKind::TripleDes => 24,
            CipherKind::Aes128 => 16,
            CipherKind::Aes256 => 32,
        }
    }

    /// Cipher block size in bytes (1 for the null cipher).
    pub fn block_size(self) -> usize {
        match self {
            CipherKind::Null => 1,
            CipherKind::Des | CipherKind::TripleDes => 8,
            CipherKind::Aes128 | CipherKind::Aes256 => 16,
        }
    }

    /// Constructs a keyed block cipher.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadKeyLength`] if `key` has the wrong length.
    ///
    /// # Panics
    ///
    /// Never panics; the null cipher accepts only an empty key.
    pub fn new_cipher(self, key: &[u8]) -> Result<Box<dyn BlockCipher>, CryptoError> {
        let expected = self.key_len();
        if key.len() != expected {
            return Err(CryptoError::BadKeyLength {
                expected,
                got: key.len(),
            });
        }
        Ok(match self {
            CipherKind::Null => Box::new(NullCipher),
            CipherKind::Des => Box::new(des::Des::new(key.try_into().expect("len checked"))),
            CipherKind::TripleDes => {
                Box::new(des::TripleDes::new(key.try_into().expect("len checked")))
            }
            CipherKind::Aes128 => Box::new(aes::Aes::new_128(key.try_into().expect("len checked"))),
            CipherKind::Aes256 => Box::new(aes::Aes::new_256(key.try_into().expect("len checked"))),
        })
    }

    /// Stable wire tag for serialization.
    pub fn tag(self) -> u8 {
        match self {
            CipherKind::Null => 0,
            CipherKind::Des => 1,
            CipherKind::TripleDes => 2,
            CipherKind::Aes128 => 3,
            CipherKind::Aes256 => 4,
        }
    }

    /// Inverse of [`CipherKind::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(CipherKind::Null),
            1 => Some(CipherKind::Des),
            2 => Some(CipherKind::TripleDes),
            3 => Some(CipherKind::Aes128),
            4 => Some(CipherKind::Aes256),
            _ => None,
        }
    }
}

/// The identity cipher backing [`CipherKind::Null`].
struct NullCipher;

impl BlockCipher for NullCipher {
    fn block_size(&self) -> usize {
        1
    }
    fn encrypt_block(&self, _block: &mut [u8]) {}
    fn decrypt_block(&self, _block: &mut [u8]) {}
}

/// A secret key whose bytes are zeroed on drop.
///
/// Stands in for material that would live in the trusted platform's secret
/// store (§2.1): it should never reach untrusted storage unencrypted.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey {
    bytes: Vec<u8>,
}

impl SecretKey {
    /// Wraps raw key bytes.
    pub fn new(bytes: Vec<u8>) -> Self {
        SecretKey { bytes }
    }

    /// Generates a fresh random key of `len` bytes.
    pub fn random(len: usize) -> Self {
        use rand::RngCore;
        let mut bytes = vec![0u8; len];
        rand::thread_rng().fill_bytes(&mut bytes);
        SecretKey { bytes }
    }

    /// Key material.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Key length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the key is empty (the null cipher's key).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl Drop for SecretKey {
    fn drop(&mut self) {
        // Best-effort scrub; `write_volatile` prevents the compiler from
        // eliding the zeroing of memory it considers dead.
        for b in self.bytes.iter_mut() {
            // SAFETY: `b` is a valid, aligned, exclusive reference.
            unsafe { std::ptr::write_volatile(b, 0) };
        }
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "SecretKey({} bytes)", self.bytes.len())
    }
}

/// Constant-time byte-slice equality.
///
/// Returns `false` for mismatched lengths without early exit on content.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_value_roundtrip() {
        let h = HashValue::new(&[1, 2, 3]);
        assert_eq!(h.as_bytes(), &[1, 2, 3]);
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
    }

    #[test]
    fn hash_value_equality_ignores_slack() {
        let a = HashValue::new(&[9; 20]);
        let b = HashValue::new(&[9; 20]);
        assert_eq!(a, b);
        assert!(a.ct_eq(&b));
    }

    #[test]
    #[should_panic(expected = "digest too long")]
    fn hash_value_rejects_oversize() {
        let _ = HashValue::new(&[0u8; 33]);
    }

    #[test]
    fn null_hash_is_empty() {
        let h = HashKind::Null.hash(b"anything");
        assert!(h.is_empty());
        assert_eq!(HashKind::Null.digest_len(), 0);
    }

    #[test]
    fn hash_parts_matches_concatenation() {
        for kind in [HashKind::Sha1, HashKind::Sha256] {
            let whole = kind.hash(b"hello world");
            let parts = kind.hash_parts(&[b"hello", b" ", b"world"]);
            assert_eq!(whole, parts);
        }
    }

    #[test]
    fn inline_hasher_matches_boxed() {
        let data: Vec<u8> = (0..300u32).map(|i| (i * 7) as u8).collect();
        for kind in [HashKind::Null, HashKind::Sha1, HashKind::Sha256] {
            let mut inline = kind.inline_hasher();
            let mut boxed = kind.hasher();
            assert_eq!(inline.digest_len(), boxed.digest_len());
            for piece in data.chunks(37) {
                inline.update(piece);
                boxed.update(piece);
            }
            assert_eq!(inline.finalize(), boxed.finalize());
            assert_eq!(
                kind.hash(&data),
                kind.hash_parts(&[&data[..100], &data[100..]])
            );
        }
    }

    #[test]
    fn kind_tags_roundtrip() {
        for k in [HashKind::Null, HashKind::Sha1, HashKind::Sha256] {
            assert_eq!(HashKind::from_tag(k.tag()), Some(k));
        }
        for c in [
            CipherKind::Null,
            CipherKind::Des,
            CipherKind::TripleDes,
            CipherKind::Aes128,
            CipherKind::Aes256,
        ] {
            assert_eq!(CipherKind::from_tag(c.tag()), Some(c));
        }
        assert_eq!(HashKind::from_tag(200), None);
        assert_eq!(CipherKind::from_tag(200), None);
    }

    #[test]
    fn cipher_key_length_enforced() {
        let err = CipherKind::Des
            .new_cipher(&[0u8; 7])
            .map(|_| ())
            .unwrap_err();
        assert_eq!(
            err,
            CryptoError::BadKeyLength {
                expected: 8,
                got: 7
            }
        );
        assert!(CipherKind::Aes128.new_cipher(&[0u8; 16]).is_ok());
    }

    #[test]
    fn null_cipher_is_identity() {
        let c = CipherKind::Null.new_cipher(&[]).unwrap();
        let mut block = [42u8];
        c.encrypt_block(&mut block);
        assert_eq!(block, [42]);
        c.decrypt_block(&mut block);
        assert_eq!(block, [42]);
    }

    #[test]
    fn ct_eq_basics() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn secret_key_debug_hides_material() {
        let k = SecretKey::new(vec![1, 2, 3, 4]);
        let s = format!("{k:?}");
        assert!(!s.contains('1'), "debug output leaked key bytes: {s}");
        assert!(s.contains("4 bytes"));
    }

    #[test]
    fn secret_key_random_lengths() {
        let k = SecretKey::random(24);
        assert_eq!(k.len(), 24);
        assert!(!k.is_empty());
        // Two random keys should differ (overwhelming probability).
        let k2 = SecretKey::random(24);
        assert_ne!(k.as_bytes(), k2.as_bytes());
    }
}
