//! CRC-32 (IEEE 802.3), the unencrypted trailer checksum on backups.
//!
//! The paper's backup format ends with an unencrypted checksum so that an
//! *external, untrusted* application (e.g. a tape archiver) can verify the
//! backup was written completely, without any keys (§6.2). CRC-32 provides
//! exactly that: integrity against accidental truncation/corruption, with no
//! security claim — the encrypted HMAC signature provides tamper detection.

use std::sync::OnceLock;

/// Reflected CRC-32 polynomial (IEEE).
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// An incremental CRC-32 computation.
#[derive(Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh CRC computation.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = (self.state >> 8) ^ t[((self.state ^ u32::from(b)) & 0xFF) as usize];
        }
    }

    /// Returns the final checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }

    /// One-shot checksum of `data`.
    pub fn checksum(data: &[u8]) -> u32 {
        let mut c = Crc32::new();
        c.update(data);
        c.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The canonical CRC-32 check value.
        assert_eq!(Crc32::checksum(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(Crc32::checksum(b""), 0);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..500u32).map(|i| (i * 3) as u8).collect();
        let mut c = Crc32::new();
        for piece in data.chunks(17) {
            c.update(piece);
        }
        assert_eq!(c.finalize(), Crc32::checksum(&data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = vec![0xA5u8; 100];
        let base = Crc32::checksum(&data);
        for i in 0..data.len() {
            let mut corrupted = data.clone();
            corrupted[i] ^= 0x10;
            assert_ne!(Crc32::checksum(&corrupted), base, "flip at {i}");
        }
    }

    #[test]
    fn detects_truncation() {
        let data = b"a backup stream with a trailer";
        assert_ne!(
            Crc32::checksum(data),
            Crc32::checksum(&data[..data.len() - 1])
        );
    }
}
