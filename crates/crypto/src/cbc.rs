//! CBC mode with PKCS#7 padding over any [`BlockCipher`].
//!
//! All bulk encryption in TDB (chunk headers, chunk bodies, backup streams)
//! runs in CBC mode, as in the paper (§9.2.1: "3DES in CBC mode", "DES in
//! CBC mode"). Each encrypted unit carries its own fresh IV, so identical
//! plaintexts written at different times yield unrelated ciphertexts — part
//! of the paper's resistance to traffic-monitoring attacks (§1.2).

use rand::RngCore;

use crate::{BlockCipher, CryptoError};

/// A CBC-mode wrapper around a keyed block cipher.
pub struct Cbc {
    cipher: Box<dyn BlockCipher>,
}

impl Cbc {
    /// Wraps a keyed block cipher.
    pub fn new(cipher: Box<dyn BlockCipher>) -> Self {
        Cbc { cipher }
    }

    /// Block size of the underlying cipher.
    pub fn block_size(&self) -> usize {
        self.cipher.block_size()
    }

    /// Generates a random IV of the cipher's block size.
    pub fn random_iv(&self) -> Vec<u8> {
        let mut iv = vec![0u8; self.cipher.block_size()];
        // The null cipher has block size 1; its IV is a single ignored byte.
        rand::thread_rng().fill_bytes(&mut iv);
        iv
    }

    /// Fills `iv` (which must be block-sized) with fresh random bytes.
    pub fn fill_iv(&self, iv: &mut [u8]) {
        debug_assert_eq!(iv.len(), self.cipher.block_size());
        rand::thread_rng().fill_bytes(iv);
    }

    /// Encrypts `plaintext` with PKCS#7 padding under `iv`.
    ///
    /// The output length is `plaintext.len()` rounded up to the next whole
    /// multiple of the block size (always at least one padding byte). The
    /// null cipher (block size 1) adds exactly one padding byte.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadIvLength`] if `iv` has the wrong length.
    pub fn encrypt(&self, iv: &[u8], plaintext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let mut out = Vec::new();
        self.encrypt_append(iv, plaintext, &mut out)?;
        Ok(out)
    }

    /// Appends `encrypt(iv, plaintext)` to `out` without intermediate
    /// buffers: the padded plaintext is laid into `out` once and ciphered
    /// in place, each block XOR-chained against the previous ciphertext
    /// block already sitting in `out` (no per-block `prev` copy).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadIvLength`] if `iv` has the wrong length.
    pub fn encrypt_append(
        &self,
        iv: &[u8],
        plaintext: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CryptoError> {
        let bs = self.cipher.block_size();
        if iv.len() != bs {
            return Err(CryptoError::BadIvLength {
                expected: bs,
                got: iv.len(),
            });
        }
        let pad = bs - plaintext.len() % bs;
        let start = out.len();
        out.reserve(plaintext.len() + pad);
        out.extend_from_slice(plaintext);
        out.extend(std::iter::repeat_n(pad as u8, pad));
        let buf = &mut out[start..];
        let mut off = 0;
        while off < buf.len() {
            let (done, rest) = buf.split_at_mut(off);
            let prev = if off == 0 { iv } else { &done[off - bs..] };
            let block = &mut rest[..bs];
            for (b, p) in block.iter_mut().zip(prev.iter()) {
                *b ^= p;
            }
            self.cipher.encrypt_block(block);
            off += bs;
        }
        Ok(())
    }

    /// Decrypts `ciphertext` under `iv` and strips PKCS#7 padding.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadCiphertextLength`] for a length that is not
    /// a whole number of blocks, [`CryptoError::BadIvLength`] for a bad IV,
    /// and [`CryptoError::BadPadding`] when padding is malformed — which is
    /// how ciphertext corruption usually first surfaces.
    pub fn decrypt(&self, iv: &[u8], ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let bs = self.cipher.block_size();
        if iv.len() != bs {
            return Err(CryptoError::BadIvLength {
                expected: bs,
                got: iv.len(),
            });
        }
        if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(bs) {
            return Err(CryptoError::BadCiphertextLength {
                block: bs,
                got: ciphertext.len(),
            });
        }
        let mut out = ciphertext.to_vec();
        // Every cipher in this crate has a block size of at most 16 bytes
        // (AES), so the previous-ciphertext carry fits in fixed stack
        // buffers — no per-block heap allocation on the decrypt path.
        const MAX_BS: usize = 16;
        debug_assert!(bs <= MAX_BS, "block size {bs} exceeds CBC carry buffer");
        let mut prev = [0u8; MAX_BS];
        let mut saved = [0u8; MAX_BS];
        prev[..bs].copy_from_slice(iv);
        for block in out.chunks_mut(bs) {
            saved[..bs].copy_from_slice(block);
            self.cipher.decrypt_block(block);
            for (b, p) in block.iter_mut().zip(prev[..bs].iter()) {
                *b ^= p;
            }
            std::mem::swap(&mut prev, &mut saved);
        }
        let pad = *out.last().expect("non-empty checked") as usize;
        if pad == 0 || pad > bs || pad > out.len() {
            return Err(CryptoError::BadPadding);
        }
        if !out[out.len() - pad..].iter().all(|&b| b as usize == pad) {
            return Err(CryptoError::BadPadding);
        }
        out.truncate(out.len() - pad);
        Ok(out)
    }

    /// Length of the ciphertext produced for a plaintext of `len` bytes
    /// (including padding, excluding the IV).
    pub fn ciphertext_len(&self, len: usize) -> usize {
        let bs = self.cipher.block_size();
        len + (bs - len % bs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CipherKind;

    fn cbc(kind: CipherKind) -> Cbc {
        let key = vec![0x42u8; kind.key_len()];
        Cbc::new(kind.new_cipher(&key).unwrap())
    }

    #[test]
    fn roundtrip_all_ciphers_various_lengths() {
        for kind in [
            CipherKind::Null,
            CipherKind::Des,
            CipherKind::TripleDes,
            CipherKind::Aes128,
            CipherKind::Aes256,
        ] {
            let c = cbc(kind);
            for len in [0usize, 1, 7, 8, 15, 16, 17, 100, 1000] {
                let pt: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
                let iv = c.random_iv();
                let ct = c.encrypt(&iv, &pt).unwrap();
                assert_eq!(ct.len(), c.ciphertext_len(len), "{kind:?} len {len}");
                assert_eq!(c.decrypt(&iv, &ct).unwrap(), pt, "{kind:?} len {len}");
            }
        }
    }

    #[test]
    fn nist_sp800_38a_aes128_cbc_vector() {
        // NIST SP 800-38A F.2.1 CBC-AES128.Encrypt, first block.
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let iv: [u8; 16] = (0..16u8).collect::<Vec<_>>().try_into().unwrap();
        let pt: [u8; 16] = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        let c = Cbc::new(CipherKind::Aes128.new_cipher(&key).unwrap());
        let ct = c.encrypt(&iv, &pt).unwrap();
        // Our output includes a full padding block after the vector block.
        assert_eq!(
            &ct[..16],
            &[
                0x76, 0x49, 0xab, 0xac, 0x81, 0x19, 0xb2, 0x46, 0xce, 0xe9, 0x8e, 0x9b, 0x12, 0xe9,
                0x19, 0x7d
            ]
        );
    }

    #[test]
    fn encrypt_append_matches_encrypt_and_preserves_prefix() {
        let c = cbc(CipherKind::Aes128);
        let iv = c.random_iv();
        let pt = b"some plaintext spanning more than one block";
        let expect = c.encrypt(&iv, pt).unwrap();
        let mut out = b"prefix".to_vec();
        c.encrypt_append(&iv, pt, &mut out).unwrap();
        assert_eq!(&out[..6], b"prefix");
        assert_eq!(&out[6..], &expect[..]);
    }

    #[test]
    fn ciphertext_differs_across_ivs() {
        let c = cbc(CipherKind::Aes128);
        let pt = b"identical plaintext";
        let ct1 = c.encrypt(&c.random_iv(), pt).unwrap();
        let ct2 = c.encrypt(&c.random_iv(), pt).unwrap();
        assert_ne!(ct1, ct2);
    }

    #[test]
    fn tampered_padding_detected() {
        let c = cbc(CipherKind::Aes128);
        let iv = vec![0u8; 16];
        let mut ct = c.encrypt(&iv, b"hello").unwrap();
        // Corrupt the last block; padding check should usually fail. (A
        // random corruption may accidentally produce valid padding, so use a
        // deterministic corruption known to break it for this key/iv.)
        let last = ct.len() - 1;
        ct[last] ^= 0xFF;
        let res = c.decrypt(&iv, &ct);
        if let Ok(pt) = res {
            assert_ne!(pt, b"hello");
        }
    }

    #[test]
    fn length_errors() {
        let c = cbc(CipherKind::Des);
        assert!(matches!(
            c.decrypt(&[0; 8], &[0u8; 9]),
            Err(CryptoError::BadCiphertextLength { .. })
        ));
        assert!(matches!(
            c.decrypt(&[0; 8], &[]),
            Err(CryptoError::BadCiphertextLength { .. })
        ));
        assert!(matches!(
            c.encrypt(&[0; 7], b"x"),
            Err(CryptoError::BadIvLength { .. })
        ));
    }

    #[test]
    fn null_cipher_cbc_passes_data_with_padding_byte() {
        let c = cbc(CipherKind::Null);
        let iv = c.random_iv();
        let ct = c.encrypt(&iv, b"abc").unwrap();
        assert_eq!(ct.len(), 4);
        assert_eq!(c.decrypt(&iv, &ct).unwrap(), b"abc");
    }
}
