//! HMAC (RFC 2104) over any supported hash.
//!
//! TDB uses HMAC as the symmetric signature on commit chunks (§4.8.2.2: "the
//! signature need not be publicly verifiable, so it may be based on
//! symmetric-key encryption") and on backup signatures (§6.2).

use crate::{HashKind, HashValue, InlineHasher};

/// Block size (in bytes) of the compression function for `kind`.
///
/// SHA-1 and SHA-256 both use 64-byte blocks.
fn block_len(kind: HashKind) -> usize {
    match kind {
        HashKind::Null => 64,
        HashKind::Sha1 | HashKind::Sha256 => 64,
    }
}

/// A reusable HMAC key: the inner and outer hash states with their pad
/// blocks already absorbed.
///
/// Deriving ipad/opad and compressing one block of each costs two
/// compressions plus two 64-byte key expansions per MAC when done eagerly
/// (as [`Hmac::new`] used to on every call). `HmacKey` pays that once at
/// construction and every subsequent [`HmacKey::mac`] resumes from the
/// cloned midstates — mirroring the cached AES key schedule on the cipher
/// side.
#[derive(Clone)]
pub struct HmacKey {
    kind: HashKind,
    /// Hash state after absorbing `key ^ ipad` (one block).
    inner: InlineHasher,
    /// Hash state after absorbing `key ^ opad` (one block).
    outer: InlineHasher,
}

impl HmacKey {
    /// Derives the pad midstates for `key`.
    ///
    /// Keys longer than the hash block size are hashed first, per RFC 2104.
    pub fn new(kind: HashKind, key: &[u8]) -> Self {
        let bl = block_len(kind);
        debug_assert!(bl <= 64);
        let mut k = [0u8; 64];
        if key.len() > bl {
            let digest = kind.hash(key);
            k[..digest.len()].copy_from_slice(digest.as_bytes());
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; 64];
        let mut opad = [0u8; 64];
        for i in 0..bl {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = InlineHasher::new(kind);
        inner.update(&ipad[..bl]);
        let mut outer = InlineHasher::new(kind);
        outer.update(&opad[..bl]);
        HmacKey { kind, inner, outer }
    }

    /// The underlying hash kind.
    pub fn kind(&self) -> HashKind {
        self.kind
    }

    /// Begins an incremental MAC resuming from the cached midstates.
    pub fn begin(&self) -> Hmac {
        Hmac {
            inner: self.inner.clone(),
            outer: self.outer.clone(),
        }
    }

    /// One-shot MAC of `data`.
    pub fn mac(&self, data: &[u8]) -> HashValue {
        let mut h = self.begin();
        h.update(data);
        h.finalize()
    }

    /// One-shot MAC over several segments.
    pub fn mac_parts(&self, parts: &[&[u8]]) -> HashValue {
        let mut h = self.begin();
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }

    /// Verifies `tag` against the MAC of `data` in constant time.
    pub fn verify(&self, data: &[u8], tag: &HashValue) -> bool {
        self.mac(data).ct_eq(tag)
    }
}

/// An incremental HMAC computation.
pub struct Hmac {
    inner: InlineHasher,
    outer: InlineHasher,
}

impl Hmac {
    /// Creates an HMAC instance keyed with `key`.
    ///
    /// Keys longer than the hash block size are hashed first, per RFC 2104.
    /// Callers MACing repeatedly under one key should build an [`HmacKey`]
    /// once and use [`HmacKey::begin`] / [`HmacKey::mac`] instead.
    pub fn new(kind: HashKind, key: &[u8]) -> Self {
        HmacKey::new(kind, key).begin()
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the MAC value.
    pub fn finalize(self) -> HashValue {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }

    /// One-shot MAC of `data`.
    pub fn mac(kind: HashKind, key: &[u8], data: &[u8]) -> HashValue {
        let mut h = Hmac::new(kind, key);
        h.update(data);
        h.finalize()
    }

    /// One-shot MAC over several segments.
    pub fn mac_parts(kind: HashKind, key: &[u8], parts: &[&[u8]]) -> HashValue {
        let mut h = Hmac::new(kind, key);
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }

    /// Verifies `tag` against the MAC of `data` in constant time.
    pub fn verify(kind: HashKind, key: &[u8], data: &[u8], tag: &HashValue) -> bool {
        Hmac::mac(kind, key, data).ct_eq(tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(h: &HashValue) -> String {
        h.as_bytes().iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc2202_hmac_sha1_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&Hmac::mac(HashKind::Sha1, &key, b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }

    #[test]
    fn rfc2202_hmac_sha1_case2() {
        assert_eq!(
            hex(&Hmac::mac(
                HashKind::Sha1,
                b"Jefe",
                b"what do ya want for nothing?"
            )),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn rfc2202_hmac_sha1_long_key() {
        // Case 6: 80-byte key (longer than block size).
        let key = [0xaa; 80];
        assert_eq!(
            hex(&Hmac::mac(
                HashKind::Sha1,
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    #[test]
    fn rfc4231_hmac_sha256_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&Hmac::mac(HashKind::Sha256, &key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_hmac_sha256_case2() {
        assert_eq!(
            hex(&Hmac::mac(
                HashKind::Sha256,
                b"Jefe",
                b"what do ya want for nothing?"
            )),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"some signing key";
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Hmac::new(HashKind::Sha256, key);
        for piece in data.chunks(5) {
            h.update(piece);
        }
        assert_eq!(h.finalize(), Hmac::mac(HashKind::Sha256, key, data));
        assert_eq!(
            Hmac::mac_parts(HashKind::Sha256, key, &[&data[..10], &data[10..]]),
            Hmac::mac(HashKind::Sha256, key, data)
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = Hmac::mac(HashKind::Sha1, b"k", b"msg");
        assert!(Hmac::verify(HashKind::Sha1, b"k", b"msg", &tag));
        assert!(!Hmac::verify(HashKind::Sha1, b"k", b"msg2", &tag));
        assert!(!Hmac::verify(HashKind::Sha1, b"k2", b"msg", &tag));
    }

    #[test]
    fn different_keys_different_macs() {
        let a = Hmac::mac(HashKind::Sha256, b"key-a", b"data");
        let b = Hmac::mac(HashKind::Sha256, b"key-b", b"data");
        assert_ne!(a, b);
    }

    #[test]
    fn cached_key_matches_oneshot() {
        for kind in [HashKind::Sha1, HashKind::Sha256] {
            for key in [&b"k"[..], &[0xaa; 80][..], &[0x0b; 64][..], &[][..]] {
                let cached = HmacKey::new(kind, key);
                for msg in [&b""[..], &b"Hi There"[..], &[0x42; 1000][..]] {
                    assert_eq!(cached.mac(msg), Hmac::mac(kind, key, msg));
                    assert!(cached.verify(msg, &cached.mac(msg)));
                }
                // The key is reusable: a second round still agrees.
                assert_eq!(cached.mac(b"again"), Hmac::mac(kind, key, b"again"));
                assert_eq!(
                    cached.mac_parts(&[b"a", b"b", b"c"]),
                    Hmac::mac(kind, key, b"abc")
                );
            }
        }
    }

    #[test]
    fn cached_key_null_kind_is_empty() {
        let cached = HmacKey::new(HashKind::Null, b"k");
        assert_eq!(cached.kind(), HashKind::Null);
        assert!(cached.mac(b"data").is_empty());
        assert_eq!(
            cached.mac(b"data"),
            Hmac::mac(HashKind::Null, b"k", b"data")
        );
    }
}
