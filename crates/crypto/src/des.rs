//! DES and Triple-DES (FIPS 46-3).
//!
//! The paper uses DES in CBC mode for ordinary partitions (measured at
//! 7.2 MB/s in 2000) and 3DES for the system partition (2.5 MB/s). Both are
//! implemented here bit-faithfully from the standard's permutation tables.
//! DES is *not* a secure cipher by modern standards; it is provided for
//! fidelity to the paper. Use [`crate::aes`] for real deployments.

use crate::BlockCipher;

/// Initial permutation (IP). Entries are 1-based bit positions from the MSB.
const IP: [u8; 64] = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4, 62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8, 57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3, 61,
    53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
];

/// Final permutation (IP⁻¹).
const FP: [u8; 64] = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31, 38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29, 36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
];

/// Expansion permutation E (32 → 48 bits).
const E: [u8; 48] = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9, 8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18,
    19, 20, 21, 20, 21, 22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
];

/// Permutation P applied to the S-box output.
const P: [u8; 32] = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10, 2, 8, 24, 14, 32, 27, 3, 9, 19,
    13, 30, 6, 22, 11, 4, 25,
];

/// Permuted choice 1 (64 → 56 bits, drops parity).
const PC1: [u8; 56] = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18, 10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60,
    52, 44, 36, 63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22, 14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
];

/// Permuted choice 2 (56 → 48 bits).
const PC2: [u8; 48] = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10, 23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2, 41, 52,
    31, 37, 47, 55, 30, 40, 51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
];

/// Left-rotation schedule for the key halves, one entry per round.
const SHIFTS: [u8; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];

/// The eight S-boxes, each indexed by `row * 16 + column`.
const SBOX: [[u8; 64]; 8] = [
    [
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7, 0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12,
        11, 9, 5, 3, 8, 4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0, 15, 12, 8, 2, 4, 9,
        1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ],
    [
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10, 3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1,
        10, 6, 9, 11, 5, 0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15, 13, 8, 10, 1, 3, 15,
        4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ],
    [
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8, 13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5,
        14, 12, 11, 15, 1, 13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7, 1, 10, 13, 0, 6,
        9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ],
    [
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15, 13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2,
        12, 1, 10, 14, 9, 10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4, 3, 15, 0, 6, 10, 1,
        13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ],
    [
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9, 14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15,
        10, 3, 9, 8, 6, 4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14, 11, 8, 12, 7, 1, 14,
        2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ],
    [
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11, 10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13,
        14, 0, 11, 3, 8, 9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6, 4, 3, 2, 12, 9, 5,
        15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ],
    [
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1, 13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5,
        12, 2, 15, 8, 6, 1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2, 6, 11, 13, 8, 1, 4,
        10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ],
    [
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7, 1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6,
        11, 0, 14, 9, 2, 7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8, 2, 1, 14, 7, 4, 10,
        8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ],
];

/// Applies a 1-based-from-MSB permutation table to the low `in_bits` bits of
/// `input`, producing `table.len()` output bits packed MSB-first.
fn permute(input: u64, in_bits: u32, table: &[u8]) -> u64 {
    let mut out = 0u64;
    for &pos in table {
        out <<= 1;
        out |= (input >> (in_bits - u32::from(pos))) & 1;
    }
    out
}

/// Computes the 16 48-bit round subkeys from a 64-bit key.
fn key_schedule(key: &[u8; 8]) -> [u64; 16] {
    let key64 = u64::from_be_bytes(*key);
    let pc1 = permute(key64, 64, &PC1);
    let mut c = (pc1 >> 28) & 0x0FFF_FFFF;
    let mut d = pc1 & 0x0FFF_FFFF;
    let mut subkeys = [0u64; 16];
    for (round, &shift) in SHIFTS.iter().enumerate() {
        c = ((c << shift) | (c >> (28 - u32::from(shift)))) & 0x0FFF_FFFF;
        d = ((d << shift) | (d >> (28 - u32::from(shift)))) & 0x0FFF_FFFF;
        subkeys[round] = permute((c << 28) | d, 56, &PC2);
    }
    subkeys
}

/// The Feistel function f(R, K).
fn feistel(r: u32, subkey: u64) -> u32 {
    let x = permute(u64::from(r), 32, &E) ^ subkey;
    let mut out = 0u32;
    for (i, sbox) in SBOX.iter().enumerate() {
        let six = ((x >> (42 - 6 * i)) & 0x3F) as usize;
        let row = ((six & 0x20) >> 4) | (six & 1);
        let col = (six >> 1) & 0xF;
        out = (out << 4) | u32::from(sbox[row * 16 + col]);
    }
    permute(u64::from(out), 32, &P) as u32
}

/// Runs the 16 Feistel rounds over one block with the given subkey order.
fn des_rounds(block: u64, subkeys: impl Iterator<Item = u64>) -> u64 {
    let ip = permute(block, 64, &IP);
    let mut l = (ip >> 32) as u32;
    let mut r = ip as u32;
    for k in subkeys {
        let next_r = l ^ feistel(r, k);
        l = r;
        r = next_r;
    }
    // The halves are swapped before the final permutation.
    permute((u64::from(r) << 32) | u64::from(l), 64, &FP)
}

/// Single DES with an expanded key schedule.
pub struct Des {
    subkeys: [u64; 16],
}

impl Des {
    /// Keys a DES instance. Parity bits in `key` are ignored, per the
    /// standard.
    pub fn new(key: &[u8; 8]) -> Self {
        Des {
            subkeys: key_schedule(key),
        }
    }

    fn encrypt_u64(&self, block: u64) -> u64 {
        des_rounds(block, self.subkeys.iter().copied())
    }

    fn decrypt_u64(&self, block: u64) -> u64 {
        des_rounds(block, self.subkeys.iter().rev().copied())
    }
}

impl BlockCipher for Des {
    fn block_size(&self) -> usize {
        8
    }

    fn encrypt_block(&self, block: &mut [u8]) {
        let b: [u8; 8] = block.try_into().expect("DES block must be 8 bytes");
        block.copy_from_slice(&self.encrypt_u64(u64::from_be_bytes(b)).to_be_bytes());
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        let b: [u8; 8] = block.try_into().expect("DES block must be 8 bytes");
        block.copy_from_slice(&self.decrypt_u64(u64::from_be_bytes(b)).to_be_bytes());
    }
}

/// Triple DES in EDE3 mode (encrypt-decrypt-encrypt with three keys).
pub struct TripleDes {
    k1: Des,
    k2: Des,
    k3: Des,
}

impl TripleDes {
    /// Keys a 3DES instance from a 24-byte key (K1 ‖ K2 ‖ K3).
    pub fn new(key: &[u8; 24]) -> Self {
        TripleDes {
            k1: Des::new(key[0..8].try_into().expect("8-byte slice")),
            k2: Des::new(key[8..16].try_into().expect("8-byte slice")),
            k3: Des::new(key[16..24].try_into().expect("8-byte slice")),
        }
    }
}

impl BlockCipher for TripleDes {
    fn block_size(&self) -> usize {
        8
    }

    fn encrypt_block(&self, block: &mut [u8]) {
        let b: [u8; 8] = block.try_into().expect("3DES block must be 8 bytes");
        let x = u64::from_be_bytes(b);
        let y = self
            .k3
            .encrypt_u64(self.k2.decrypt_u64(self.k1.encrypt_u64(x)));
        block.copy_from_slice(&y.to_be_bytes());
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        let b: [u8; 8] = block.try_into().expect("3DES block must be 8 bytes");
        let x = u64::from_be_bytes(b);
        let y = self
            .k1
            .decrypt_u64(self.k2.encrypt_u64(self.k3.decrypt_u64(x)));
        block.copy_from_slice(&y.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(key: u64, pt: u64) -> u64 {
        Des::new(&key.to_be_bytes()).encrypt_u64(pt)
    }

    #[test]
    fn classic_walkthrough_vector() {
        // The widely published DES walkthrough (key 133457799BBCDFF1).
        assert_eq!(
            enc(0x1334_5779_9BBC_DFF1, 0x0123_4567_89AB_CDEF),
            0x85E8_1354_0F0A_B405
        );
    }

    #[test]
    fn nist_style_vectors() {
        // Weak key of all zeros.
        assert_eq!(enc(0, 0), 0x8CA6_4DE9_C1B1_23A7);
        // All-ones key and plaintext.
        assert_eq!(
            enc(0xFFFF_FFFF_FFFF_FFFF, 0xFFFF_FFFF_FFFF_FFFF),
            0x7359_B216_3E4E_DC58
        );
    }

    #[test]
    fn roundtrip_block_trait() {
        let des = Des::new(b"8bytekey");
        let mut block = *b"plaintxt";
        let orig = block;
        des.encrypt_block(&mut block);
        assert_ne!(block, orig);
        des.decrypt_block(&mut block);
        assert_eq!(block, orig);
        assert_eq!(des.block_size(), 8);
    }

    #[test]
    fn triple_des_with_equal_keys_degenerates_to_des() {
        // EDE with K1 = K2 = K3 must equal single DES.
        let mut key24 = [0u8; 24];
        for part in key24.chunks_mut(8) {
            part.copy_from_slice(b"testkey!");
        }
        let tdes = TripleDes::new(&key24);
        let des = Des::new(b"testkey!");
        let mut a = *b"datadata";
        let mut b = *b"datadata";
        tdes.encrypt_block(&mut a);
        des.encrypt_block(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn triple_des_roundtrip_distinct_keys() {
        let key: [u8; 24] = *b"0123456789abcdefghijklmn";
        let tdes = TripleDes::new(&key);
        let mut block = *b"\x00\x11\x22\x33\x44\x55\x66\x77";
        let orig = block;
        tdes.encrypt_block(&mut block);
        assert_ne!(block, orig);
        tdes.decrypt_block(&mut block);
        assert_eq!(block, orig);
    }

    #[test]
    fn decrypt_inverts_all_round_structure() {
        // Exhaustive-ish sweep of structured blocks.
        let des = Des::new(&0xA5A5_A5A5_5A5A_5A5Au64.to_be_bytes());
        for i in 0..64u64 {
            let pt = 1u64 << i;
            assert_eq!(des.decrypt_u64(des.encrypt_u64(pt)), pt, "bit {i}");
        }
    }

    #[test]
    fn avalanche_property() {
        // Flipping one plaintext bit should flip many ciphertext bits.
        let des = Des::new(&0x0E32_9232_EA6D_0D73u64.to_be_bytes());
        let c1 = des.encrypt_u64(0x8787_8787_8787_8787);
        let c2 = des.encrypt_u64(0x8787_8787_8787_8786);
        let diff = (c1 ^ c2).count_ones();
        assert!(diff > 10, "weak avalanche: only {diff} bits differ");
    }
}
