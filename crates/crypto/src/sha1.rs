//! SHA-1 (FIPS 180-1), the paper's default collision-resistant hash.
//!
//! SHA-1 is cryptographically broken for collision resistance today; it is
//! implemented here for fidelity to the paper (§2.2, §9.2.1) and remains the
//! default partition hash so measured bandwidth ratios are comparable.
//! [`crate::sha256`] is the recommended modern choice.

use crate::{HashValue, Hasher};

/// Incremental SHA-1 state.
///
/// `Clone` snapshots the midstate; [`crate::hmac::HmacKey`] relies on this
/// to resume from pre-absorbed pad blocks without recompressing them.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh SHA-1 state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> HashValue {
        let mut h = Sha1::new();
        h.absorb(data);
        h.finish()
    }

    pub(crate) fn absorb(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                Self::compress_blocks(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        let whole = data.len() & !63;
        if whole > 0 {
            Self::compress_blocks(&mut self.state, &data[..whole]);
            data = &data[whole..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    pub(crate) fn finish(mut self) -> HashValue {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.absorb(&[0x80]);
        while self.buf_len != 56 {
            self.absorb(&[0]);
        }
        // Absorbing the length bytes must not re-count toward `len`, but we
        // already captured `bit_len`, so further updates are harmless.
        self.absorb(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 20];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        HashValue::new(&out)
    }

    /// Compresses every 64-byte block of `data` (whose length must be a
    /// multiple of 64), keeping the chaining variables in locals across
    /// blocks so multi-block messages don't round-trip through memory
    /// between compressions.
    fn compress_blocks(state: &mut [u32; 5], data: &[u8]) {
        debug_assert_eq!(data.len() % 64, 0);
        let [mut h0, mut h1, mut h2, mut h3, mut h4] = *state;
        for block in data.chunks_exact(64) {
            let mut w = [0u32; 80];
            for (i, chunk) in block.chunks_exact(4).enumerate() {
                w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
            }
            for i in 16..80 {
                w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
            }
            let (mut a, mut b, mut c, mut d, mut e) = (h0, h1, h2, h3, h4);
            for (i, &wi) in w.iter().enumerate() {
                let (f, k) = match i {
                    0..=19 => ((b & c) | (!b & d), 0x5A827999),
                    20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                    40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                    _ => (b ^ c ^ d, 0xCA62C1D6),
                };
                let tmp = a
                    .rotate_left(5)
                    .wrapping_add(f)
                    .wrapping_add(e)
                    .wrapping_add(k)
                    .wrapping_add(wi);
                e = d;
                d = c;
                c = b.rotate_left(30);
                b = a;
                a = tmp;
            }
            h0 = h0.wrapping_add(a);
            h1 = h1.wrapping_add(b);
            h2 = h2.wrapping_add(c);
            h3 = h3.wrapping_add(d);
            h4 = h4.wrapping_add(e);
        }
        *state = [h0, h1, h2, h3, h4];
    }
}

impl Hasher for Sha1 {
    fn update(&mut self, data: &[u8]) {
        self.absorb(data);
    }

    fn finalize(self: Box<Self>) -> HashValue {
        (*self).finish()
    }

    fn digest_len(&self) -> usize {
        20
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(h: &HashValue) -> String {
        h.as_bytes().iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha1::digest(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        // Feed in irregular pieces crossing block boundaries.
        for split in [1usize, 7, 63, 64, 65, 130] {
            let mut h = Sha1::new();
            for piece in data.chunks(split) {
                h.absorb(piece);
            }
            assert_eq!(h.finish(), Sha1::digest(&data), "split {split}");
        }
    }

    #[test]
    fn trait_object_digest() {
        let mut h: Box<dyn Hasher> = Box::new(Sha1::new());
        assert_eq!(h.digest_len(), 20);
        h.update(b"abc");
        assert_eq!(
            hex(&h.finalize()),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }
}
