//! AES-128/-256 (FIPS 197).
//!
//! The paper notes "there are other, more secure, algorithms that run faster
//! than DES" (§9.2.1); AES is the canonical such choice today and is offered
//! as a partition cipher alongside DES/3DES.
//!
//! The S-box is derived algebraically (multiplicative inverse in GF(2⁸)
//! followed by the affine transform) instead of being transcribed, and the
//! whole cipher is verified against the FIPS 197 appendix vectors.

use std::sync::OnceLock;

use crate::BlockCipher;

/// Precomputed S-box, inverse S-box, and GF(2⁸) multiplication tables for
/// the fixed MixColumns coefficients. The xtime-loop [`gf_mul`] stays as the
/// reference implementation (key expansion, tests); the hot per-block path
/// is pure table lookups.
struct Tables {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
    mul2: [u8; 256],
    mul3: [u8; 256],
    mul9: [u8; 256],
    mul11: [u8; 256],
    mul13: [u8; 256],
    mul14: [u8; 256],
}

/// Multiplies two elements of GF(2⁸) modulo the AES polynomial x⁸+x⁴+x³+x+1.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut out = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            out ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    out
}

/// Computes the multiplicative inverse in GF(2⁸) (0 maps to 0).
fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 = a^-1 in GF(2^8); square-and-multiply over the 254 = 0b11111110
    // exponent.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u8;
    while exp != 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut sbox = [0u8; 256];
        let mut inv_sbox = [0u8; 256];
        let mut mul2 = [0u8; 256];
        let mut mul3 = [0u8; 256];
        let mut mul9 = [0u8; 256];
        let mut mul11 = [0u8; 256];
        let mut mul13 = [0u8; 256];
        let mut mul14 = [0u8; 256];
        for i in 0..=255u8 {
            let x = gf_inv(i);
            let s = x
                ^ x.rotate_left(1)
                ^ x.rotate_left(2)
                ^ x.rotate_left(3)
                ^ x.rotate_left(4)
                ^ 0x63;
            sbox[i as usize] = s;
            inv_sbox[s as usize] = i;
            mul2[i as usize] = gf_mul(i, 2);
            mul3[i as usize] = gf_mul(i, 3);
            mul9[i as usize] = gf_mul(i, 9);
            mul11[i as usize] = gf_mul(i, 11);
            mul13[i as usize] = gf_mul(i, 13);
            mul14[i as usize] = gf_mul(i, 14);
        }
        Tables {
            sbox,
            inv_sbox,
            mul2,
            mul3,
            mul9,
            mul11,
            mul13,
            mul14,
        }
    })
}

/// Maximum number of round keys (AES-256: 15 round keys of 16 bytes).
const MAX_ROUND_KEYS: usize = 15;

/// An AES instance holding the expanded key schedule.
///
/// The key schedule is expanded exactly once, at construction; per-block
/// work touches only the cached `tables` reference (no `OnceLock` acquire
/// on the hot path) and the precomputed multiplication tables.
pub struct Aes {
    round_keys: [[u8; 16]; MAX_ROUND_KEYS],
    rounds: usize,
    tables: &'static Tables,
}

impl Aes {
    /// Keys AES-128 (10 rounds).
    pub fn new_128(key: &[u8; 16]) -> Self {
        Self::expand(key, 4, 10)
    }

    /// Keys AES-256 (14 rounds).
    pub fn new_256(key: &[u8; 32]) -> Self {
        Self::expand(key, 8, 14)
    }

    /// Expands `key` (`nk` 32-bit words) into `rounds + 1` round keys.
    fn expand(key: &[u8], nk: usize, rounds: usize) -> Self {
        let t = tables();
        let total_words = 4 * (rounds + 1);
        let mut w = vec![[0u8; 4]; total_words];
        for (i, word) in w.iter_mut().take(nk).enumerate() {
            word.copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
        let mut rcon = 1u8;
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = t.sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            } else if nk > 6 && i % nk == 4 {
                for b in temp.iter_mut() {
                    *b = t.sbox[*b as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; MAX_ROUND_KEYS];
        for (r, rk) in round_keys.iter_mut().take(rounds + 1).enumerate() {
            for c in 0..4 {
                rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes {
            round_keys,
            rounds,
            tables: t,
        }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    fn sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.tables.sbox[*b as usize];
        }
    }

    fn inv_sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.tables.inv_sbox[*b as usize];
        }
    }

    /// State layout is column-major: byte `state[c*4 + r]` is row `r`,
    /// column `c`, matching the FIPS 197 input ordering.
    fn shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[c * 4 + r] = s[((c + r) % 4) * 4 + r];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[((c + r) % 4) * 4 + r] = s[c * 4 + r];
            }
        }
    }

    fn mix_columns(&self, state: &mut [u8; 16]) {
        let t = self.tables;
        for c in 0..4 {
            let col: [u8; 4] = state[c * 4..c * 4 + 4].try_into().expect("4-byte column");
            let [a, b, d, e] = col.map(usize::from);
            state[c * 4] = t.mul2[a] ^ t.mul3[b] ^ col[2] ^ col[3];
            state[c * 4 + 1] = col[0] ^ t.mul2[b] ^ t.mul3[d] ^ col[3];
            state[c * 4 + 2] = col[0] ^ col[1] ^ t.mul2[d] ^ t.mul3[e];
            state[c * 4 + 3] = t.mul3[a] ^ col[1] ^ col[2] ^ t.mul2[e];
        }
    }

    fn inv_mix_columns(&self, state: &mut [u8; 16]) {
        let t = self.tables;
        for c in 0..4 {
            let col: [u8; 4] = state[c * 4..c * 4 + 4].try_into().expect("4-byte column");
            let [a, b, d, e] = col.map(usize::from);
            state[c * 4] = t.mul14[a] ^ t.mul11[b] ^ t.mul13[d] ^ t.mul9[e];
            state[c * 4 + 1] = t.mul9[a] ^ t.mul14[b] ^ t.mul11[d] ^ t.mul13[e];
            state[c * 4 + 2] = t.mul13[a] ^ t.mul9[b] ^ t.mul14[d] ^ t.mul11[e];
            state[c * 4 + 3] = t.mul11[a] ^ t.mul13[b] ^ t.mul9[d] ^ t.mul14[e];
        }
    }
}

impl BlockCipher for Aes {
    fn block_size(&self) -> usize {
        16
    }

    fn encrypt_block(&self, block: &mut [u8]) {
        let state: &mut [u8; 16] = block.try_into().expect("AES block must be 16 bytes");
        Self::add_round_key(state, &self.round_keys[0]);
        for round in 1..self.rounds {
            self.sub_bytes(state);
            Self::shift_rows(state);
            self.mix_columns(state);
            Self::add_round_key(state, &self.round_keys[round]);
        }
        self.sub_bytes(state);
        Self::shift_rows(state);
        Self::add_round_key(state, &self.round_keys[self.rounds]);
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        let state: &mut [u8; 16] = block.try_into().expect("AES block must be 16 bytes");
        Self::add_round_key(state, &self.round_keys[self.rounds]);
        for round in (1..self.rounds).rev() {
            Self::inv_shift_rows(state);
            self.inv_sub_bytes(state);
            Self::add_round_key(state, &self.round_keys[round]);
            self.inv_mix_columns(state);
        }
        Self::inv_shift_rows(state);
        self.inv_sub_bytes(state);
        Self::add_round_key(state, &self.round_keys[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_known_entries() {
        let t = tables();
        // Spot values from the FIPS 197 S-box table.
        assert_eq!(t.sbox[0x00], 0x63);
        assert_eq!(t.sbox[0x01], 0x7c);
        assert_eq!(t.sbox[0x53], 0xed);
        assert_eq!(t.sbox[0xff], 0x16);
        // Inverse really inverts.
        for i in 0..=255usize {
            assert_eq!(t.inv_sbox[t.sbox[i] as usize], i as u8);
        }
    }

    #[test]
    fn fips197_aes128_vector() {
        // FIPS 197 Appendix C.1.
        let key: [u8; 16] = (0..16u8).collect::<Vec<_>>().try_into().unwrap();
        let aes = Aes::new_128(&key);
        let mut block: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let pt = block;
        aes.encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
        aes.decrypt_block(&mut block);
        assert_eq!(block, pt);
    }

    #[test]
    fn fips197_aes256_vector() {
        // FIPS 197 Appendix C.3.
        let key: [u8; 32] = (0..32u8).collect::<Vec<_>>().try_into().unwrap();
        let aes = Aes::new_256(&key);
        let mut block: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let pt = block;
        aes.encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
                0x60, 0x89
            ]
        );
        aes.decrypt_block(&mut block);
        assert_eq!(block, pt);
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS 197 Appendix B: key 2b7e151628aed2a6abf7158809cf4f3c.
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        Aes::new_128(&key).encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                0x0b, 0x32
            ]
        );
    }

    #[test]
    fn mul_tables_match_reference_gf_mul() {
        let t = tables();
        for i in 0..=255u8 {
            assert_eq!(t.mul2[i as usize], gf_mul(i, 2));
            assert_eq!(t.mul3[i as usize], gf_mul(i, 3));
            assert_eq!(t.mul9[i as usize], gf_mul(i, 9));
            assert_eq!(t.mul11[i as usize], gf_mul(i, 11));
            assert_eq!(t.mul13[i as usize], gf_mul(i, 13));
            assert_eq!(t.mul14[i as usize], gf_mul(i, 14));
        }
    }

    #[test]
    fn gf_mul_properties() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1); // FIPS 197 §4.2 example.
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "inverse of {a:#x}");
        }
    }

    #[test]
    fn roundtrip_random_blocks() {
        use rand::RngCore;
        let mut rng = rand::thread_rng();
        let mut key = [0u8; 32];
        rng.fill_bytes(&mut key);
        let aes = Aes::new_256(&key);
        for _ in 0..50 {
            let mut block = [0u8; 16];
            rng.fill_bytes(&mut block);
            let orig = block;
            aes.encrypt_block(&mut block);
            aes.decrypt_block(&mut block);
            assert_eq!(block, orig);
        }
    }
}
