//! Property-based testing of the cryptographic primitives.

use proptest::prelude::*;

use tdb_crypto::cbc::Cbc;
use tdb_crypto::crc32::Crc32;
use tdb_crypto::hmac::Hmac;
use tdb_crypto::{ct_eq, CipherKind, HashKind};

fn cipher_strategy() -> impl Strategy<Value = CipherKind> {
    prop_oneof![
        Just(CipherKind::Null),
        Just(CipherKind::Des),
        Just(CipherKind::TripleDes),
        Just(CipherKind::Aes128),
        Just(CipherKind::Aes256),
    ]
}

proptest! {
    /// Encrypt-then-decrypt is the identity for every cipher, key, IV, and
    /// plaintext length.
    #[test]
    fn cbc_roundtrip(
        cipher in cipher_strategy(),
        key_seed in any::<u64>(),
        plaintext in proptest::collection::vec(any::<u8>(), 0..2000),
    ) {
        let key: Vec<u8> = (0..cipher.key_len())
            .map(|i| (key_seed >> (i % 8 * 8)) as u8 ^ i as u8)
            .collect();
        let cbc = Cbc::new(cipher.new_cipher(&key).unwrap());
        let iv = cbc.random_iv();
        let ct = cbc.encrypt(&iv, &plaintext).unwrap();
        prop_assert_eq!(ct.len(), cbc.ciphertext_len(plaintext.len()));
        prop_assert_eq!(cbc.decrypt(&iv, &ct).unwrap(), plaintext);
    }

    /// Ciphertext never contains the plaintext verbatim (for real ciphers
    /// and plaintexts long enough to matter).
    #[test]
    fn cbc_hides_plaintext(
        plaintext in proptest::collection::vec(any::<u8>(), 32..256),
    ) {
        let cbc = Cbc::new(CipherKind::Aes128.new_cipher(&[7u8; 16]).unwrap());
        let iv = cbc.random_iv();
        let ct = cbc.encrypt(&iv, &plaintext).unwrap();
        prop_assert!(!ct.windows(plaintext.len()).any(|w| w == plaintext.as_slice()));
    }

    /// Incremental hashing over arbitrary splits equals one-shot hashing.
    #[test]
    fn hash_split_invariance(
        data in proptest::collection::vec(any::<u8>(), 0..3000),
        splits in proptest::collection::vec(1usize..200, 0..8),
    ) {
        for kind in [HashKind::Sha1, HashKind::Sha256] {
            let oneshot = kind.hash(&data);
            let mut hasher = kind.hasher();
            let mut rest: &[u8] = &data;
            for s in &splits {
                let take = (*s).min(rest.len());
                hasher.update(&rest[..take]);
                rest = &rest[take..];
            }
            hasher.update(rest);
            prop_assert_eq!(hasher.finalize(), oneshot);
        }
    }

    /// Distinct inputs (as generated) virtually never collide, and equal
    /// inputs always agree — the soundness side of collision resistance.
    #[test]
    fn hash_determinism_and_separation(
        a in proptest::collection::vec(any::<u8>(), 0..500),
        b in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        for kind in [HashKind::Sha1, HashKind::Sha256] {
            prop_assert_eq!(kind.hash(&a), kind.hash(&a));
            if a != b {
                prop_assert_ne!(kind.hash(&a), kind.hash(&b));
            }
        }
    }

    /// HMAC verification accepts exactly the signed message under the
    /// signing key.
    #[test]
    fn hmac_round(
        key in proptest::collection::vec(any::<u8>(), 1..100),
        msg in proptest::collection::vec(any::<u8>(), 0..500),
        tweak in any::<u8>(),
    ) {
        let tag = Hmac::mac(HashKind::Sha256, &key, &msg);
        prop_assert!(Hmac::verify(HashKind::Sha256, &key, &msg, &tag));
        // A flipped message bit must reject.
        if !msg.is_empty() {
            let mut forged = msg.clone();
            forged[0] ^= tweak | 1;
            prop_assert!(!Hmac::verify(HashKind::Sha256, &key, &forged, &tag));
        }
        // A different key must reject.
        let mut other_key = key.clone();
        other_key[0] ^= tweak | 1;
        prop_assert!(!Hmac::verify(HashKind::Sha256, &other_key, &msg, &tag));
    }

    /// CRC-32 is linear-checkable: incremental equals one-shot, and any
    /// single-byte change is detected.
    #[test]
    fn crc_incremental_and_sensitivity(
        data in proptest::collection::vec(any::<u8>(), 1..800),
        at in any::<prop::sample::Index>(),
        mask in 1u8..=255,
    ) {
        let mut inc = Crc32::new();
        for piece in data.chunks(7) {
            inc.update(piece);
        }
        prop_assert_eq!(inc.finalize(), Crc32::checksum(&data));
        let mut corrupted = data.clone();
        let i = at.index(corrupted.len());
        corrupted[i] ^= mask;
        prop_assert_ne!(Crc32::checksum(&corrupted), Crc32::checksum(&data));
    }

    /// Constant-time equality agrees with ordinary equality.
    #[test]
    fn ct_eq_agrees(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }
}
