#![warn(missing_docs)]

//! # tdb-collection — the TDB collection store (§8)
//!
//! "The *collection store* provides applications with indexes on
//! *collections* of objects. A collection is a set of objects sharing one
//! or more indexes. Indexes can be dynamically added and removed from each
//! collection. Collections and indexes are themselves represented as
//! objects."
//!
//! Indexes are **functional** (§8, citing \[Hwa94\]): a deterministic,
//! application-registered function extracts the key from each object, so no
//! separate data-definition language is needed. Index maintenance is
//! automatic as objects are inserted, updated, and removed through this
//! store; all index mutations ride in the caller's transaction and commit
//! atomically with the object change. Indexes may be sorted (B+-tree,
//! supporting scan / exact-match / range iterators) or unsorted (hash,
//! scan / exact-match) — sorting is possible "because the objects are
//! decrypted" when keys are extracted.

pub mod btree;
pub mod catalog;
pub mod hashindex;
pub mod keys;

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use tdb_core::metrics::{self, modules};
use tdb_core::PartitionId;
use tdb_object::errors::{ObjectError, Result};
use tdb_object::pickle::{StoredObject, TypeRegistry};
use tdb_object::{ObjectId, Transactional};

use btree::BTree;
pub use catalog::Catalog;
use hashindex::HashIndex;
pub use keys::IndexKey;

/// Reserved type tag for collection objects.
pub const COLLECTION_TAG: u32 = 0xF000_0001;

/// A deterministic key-extraction function: returns the object's index key,
/// or `None` when the object should not appear in the index.
pub type KeyExtractor = fn(&dyn StoredObject) -> Option<Vec<u8>>;

/// Named key extractors. Names are stored in index metadata so indexes can
/// be rebuilt and maintained across sessions.
#[derive(Default, Clone)]
pub struct ExtractorRegistry {
    extractors: HashMap<String, KeyExtractor>,
}

impl ExtractorRegistry {
    /// An empty registry.
    pub fn new() -> ExtractorRegistry {
        ExtractorRegistry::default()
    }

    /// Registers `name`. Re-registration with the same function is a no-op.
    ///
    /// # Panics
    ///
    /// Panics on re-registration with a different function.
    pub fn register(&mut self, name: &str, extractor: KeyExtractor) {
        if let Some(existing) = self.extractors.get(name) {
            assert!(
                std::ptr::fn_addr_eq(*existing, extractor),
                "extractor {name} registered twice with different functions"
            );
            return;
        }
        self.extractors.insert(name.to_string(), extractor);
    }

    fn get(&self, name: &str) -> Result<KeyExtractor> {
        self.extractors
            .get(name)
            .copied()
            .ok_or_else(|| ObjectError::BadPickle(format!("unknown key extractor: {name}")))
    }
}

/// Whether an index is sorted (B+-tree) or unsorted (hash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Sorted: scan, exact-match, and range iterators.
    Sorted,
    /// Unsorted: scan and exact-match only.
    Unsorted,
}

/// Stored metadata for one index of a collection.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IndexMeta {
    name: String,
    extractor: String,
    kind: IndexKind,
    /// Rank of the index's root object.
    root: u64,
}

/// The collection object: membership root, count, and index metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CollectionObj {
    name: String,
    /// Root of the primary membership B-tree (keyed by object rank).
    members_root: u64,
    count: u64,
    indexes: Vec<IndexMeta>,
}

impl StoredObject for CollectionObj {
    fn type_tag(&self) -> u32 {
        COLLECTION_TAG
    }

    fn pickle(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let put_str = |out: &mut Vec<u8>, s: &str| {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        };
        put_str(&mut out, &self.name);
        out.extend_from_slice(&self.members_root.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&(self.indexes.len() as u32).to_le_bytes());
        for idx in &self.indexes {
            put_str(&mut out, &idx.name);
            put_str(&mut out, &idx.extractor);
            out.push(match idx.kind {
                IndexKind::Sorted => 0,
                IndexKind::Unsorted => 1,
            });
            out.extend_from_slice(&idx.root.to_le_bytes());
        }
        out
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn unpickle_collection(body: &[u8]) -> Result<Arc<dyn StoredObject>> {
    let bad = || ObjectError::BadPickle("collection".into());
    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Result<&[u8]> {
        if *off + n > body.len() {
            return Err(bad());
        }
        let out = &body[*off..*off + n];
        *off += n;
        Ok(out)
    };
    let get_str = |off: &mut usize| -> Result<String> {
        let n = u32::from_le_bytes(take(off, 4)?.try_into().unwrap()) as usize;
        String::from_utf8(take(off, n)?.to_vec()).map_err(|_| bad())
    };
    let name = get_str(&mut off)?;
    let members_root = u64::from_le_bytes(take(&mut off, 8)?.try_into().unwrap());
    let count = u64::from_le_bytes(take(&mut off, 8)?.try_into().unwrap());
    let n_idx = u32::from_le_bytes(take(&mut off, 4)?.try_into().unwrap()) as usize;
    let mut indexes = Vec::with_capacity(n_idx.min(64));
    for _ in 0..n_idx {
        let iname = get_str(&mut off)?;
        let extractor = get_str(&mut off)?;
        let kind = match take(&mut off, 1)?[0] {
            0 => IndexKind::Sorted,
            1 => IndexKind::Unsorted,
            _ => return Err(bad()),
        };
        let root = u64::from_le_bytes(take(&mut off, 8)?.try_into().unwrap());
        indexes.push(IndexMeta {
            name: iname,
            extractor,
            kind,
            root,
        });
    }
    if off != body.len() {
        return Err(bad());
    }
    Ok(Arc::new(CollectionObj {
        name,
        members_root,
        count,
        indexes,
    }))
}

/// Registers the collection store's internal object types (collection,
/// B-tree node, hash directory/bucket) into a type registry. Call this when
/// assembling the application's registry.
pub fn register_builtin_types(registry: &mut TypeRegistry) {
    registry.register(COLLECTION_TAG, unpickle_collection);
    btree::register_types(registry);
    hashindex::register_types(registry);
    catalog::register_types(registry);
}

/// Handle to a collection (the id of its collection object).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CollectionId(pub ObjectId);

/// The collection store: index maintenance over an object store.
///
/// Stateless apart from the extractor registry, so it is `Clone`: every
/// session gets its own handle over the shared object store.
#[derive(Clone)]
pub struct CollectionStore {
    extractors: ExtractorRegistry,
}

impl CollectionStore {
    /// Creates a collection store with the given extractor registry.
    pub fn new(extractors: ExtractorRegistry) -> CollectionStore {
        CollectionStore { extractors }
    }

    fn load(&self, tx: &mut impl Transactional, coll: CollectionId) -> Result<Arc<CollectionObj>> {
        tx.get::<CollectionObj>(coll.0)
    }

    fn save(
        &self,
        tx: &mut impl Transactional,
        coll: CollectionId,
        obj: CollectionObj,
    ) -> Result<()> {
        tx.put(coll.0, Arc::new(obj))
    }

    fn members(&self, partition: PartitionId, obj: &CollectionObj) -> BTree {
        BTree {
            partition,
            root: obj.members_root,
        }
    }

    fn member_key(rank: u64) -> Vec<u8> {
        IndexKey::new().u64(rank).into_bytes()
    }

    /// Creates an empty collection named `name` in `partition`.
    ///
    /// # Errors
    ///
    /// Propagates object-store failures.
    pub fn create_collection(
        &self,
        tx: &mut impl Transactional,
        partition: PartitionId,
        name: &str,
    ) -> Result<CollectionId> {
        let _t = metrics::span(modules::COLLECTION_STORE);
        let members = BTree::create(tx, partition)?;
        let obj = CollectionObj {
            name: name.to_string(),
            members_root: members.root,
            count: 0,
            indexes: Vec::new(),
        };
        Ok(CollectionId(tx.create(partition, Arc::new(obj))?))
    }

    /// The collection's name.
    ///
    /// # Errors
    ///
    /// Fails if the collection does not exist.
    pub fn name(&self, tx: &mut impl Transactional, coll: CollectionId) -> Result<String> {
        Ok(self.load(tx, coll)?.name.clone())
    }

    /// Number of member objects.
    ///
    /// # Errors
    ///
    /// Fails if the collection does not exist.
    pub fn len(&self, tx: &mut impl Transactional, coll: CollectionId) -> Result<u64> {
        Ok(self.load(tx, coll)?.count)
    }

    /// Creates a new object and adds it to the collection, maintaining all
    /// indexes.
    ///
    /// # Errors
    ///
    /// Propagates object-store failures.
    pub fn insert(
        &self,
        tx: &mut impl Transactional,
        coll: CollectionId,
        object: Arc<dyn StoredObject>,
    ) -> Result<ObjectId> {
        let _t = metrics::span(modules::COLLECTION_STORE);
        let id = tx.create(coll.0.partition(), Arc::clone(&object))?;
        self.link(tx, coll, id, object.as_ref())?;
        Ok(id)
    }

    /// Adds an existing object to the collection.
    ///
    /// # Errors
    ///
    /// Fails if the object does not exist.
    pub fn add(&self, tx: &mut impl Transactional, coll: CollectionId, id: ObjectId) -> Result<()> {
        let _t = metrics::span(modules::COLLECTION_STORE);
        let object = tx.get_dyn(id)?;
        self.link(tx, coll, id, object.as_ref())
    }

    fn link(
        &self,
        tx: &mut impl Transactional,
        coll: CollectionId,
        id: ObjectId,
        object: &dyn StoredObject,
    ) -> Result<()> {
        let meta = self.load(tx, coll)?;
        let members = self.members(coll.0.partition(), &meta);
        members.insert(tx, &Self::member_key(id.rank()), id.rank())?;
        for idx in &meta.indexes {
            let extractor = self.extractors.get(&idx.extractor)?;
            if let Some(key) = extractor(object) {
                self.index_insert(tx, coll.0.partition(), idx, &key, id.rank())?;
            }
        }
        let mut updated = (*meta).clone();
        updated.count += 1;
        self.save(tx, coll, updated)
    }

    /// Replaces a member object's state, updating every index whose key
    /// changed ("indexes are maintained automatically as objects are
    /// updated").
    ///
    /// # Errors
    ///
    /// Fails if the object is not a member.
    pub fn update(
        &self,
        tx: &mut impl Transactional,
        coll: CollectionId,
        id: ObjectId,
        new_object: Arc<dyn StoredObject>,
    ) -> Result<()> {
        let _t = metrics::span(modules::COLLECTION_STORE);
        let meta = self.load(tx, coll)?;
        let members = self.members(coll.0.partition(), &meta);
        if members.lookup(tx, &Self::member_key(id.rank()))?.is_empty() {
            return Err(ObjectError::NotFound(id));
        }
        let old_object = tx.get_dyn(id)?;
        for idx in &meta.indexes {
            let extractor = self.extractors.get(&idx.extractor)?;
            let old_key = extractor(old_object.as_ref());
            let new_key = extractor(new_object.as_ref());
            if old_key != new_key {
                if let Some(k) = old_key {
                    self.index_remove(tx, coll.0.partition(), idx, &k, id.rank())?;
                }
                if let Some(k) = new_key {
                    self.index_insert(tx, coll.0.partition(), idx, &k, id.rank())?;
                }
            }
        }
        tx.put(id, new_object)
    }

    /// Removes an object from the collection (and its indexes) and deletes
    /// the object itself.
    ///
    /// # Errors
    ///
    /// Fails if the object is not a member.
    pub fn remove(
        &self,
        tx: &mut impl Transactional,
        coll: CollectionId,
        id: ObjectId,
    ) -> Result<()> {
        let _t = metrics::span(modules::COLLECTION_STORE);
        self.unlink(tx, coll, id)?;
        tx.delete(id)
    }

    /// Removes an object from the collection without deleting the object.
    ///
    /// # Errors
    ///
    /// Fails if the object is not a member.
    pub fn unlink(
        &self,
        tx: &mut impl Transactional,
        coll: CollectionId,
        id: ObjectId,
    ) -> Result<()> {
        let _t = metrics::span(modules::COLLECTION_STORE);
        let meta = self.load(tx, coll)?;
        let members = self.members(coll.0.partition(), &meta);
        if !members.remove(tx, &Self::member_key(id.rank()), id.rank())? {
            return Err(ObjectError::NotFound(id));
        }
        let object = tx.get_dyn(id)?;
        for idx in &meta.indexes {
            let extractor = self.extractors.get(&idx.extractor)?;
            if let Some(key) = extractor(object.as_ref()) {
                self.index_remove(tx, coll.0.partition(), idx, &key, id.rank())?;
            }
        }
        let mut updated = (*meta).clone();
        updated.count -= 1;
        self.save(tx, coll, updated)
    }

    /// Adds an index over the collection, building it over existing
    /// members ("indexes can be dynamically added").
    ///
    /// # Errors
    ///
    /// Fails on a duplicate index name or unknown extractor.
    pub fn add_index(
        &self,
        tx: &mut impl Transactional,
        coll: CollectionId,
        index_name: &str,
        extractor_name: &str,
        kind: IndexKind,
    ) -> Result<()> {
        let _t = metrics::span(modules::COLLECTION_STORE);
        let extractor = self.extractors.get(extractor_name)?;
        let meta = self.load(tx, coll)?;
        if meta.indexes.iter().any(|i| i.name == index_name) {
            return Err(ObjectError::BadPickle(format!(
                "index {index_name} already exists"
            )));
        }
        let partition = coll.0.partition();
        let root = match kind {
            IndexKind::Sorted => BTree::create(tx, partition)?.root,
            IndexKind::Unsorted => HashIndex::create(tx, partition)?.root,
        };
        let idx = IndexMeta {
            name: index_name.to_string(),
            extractor: extractor_name.to_string(),
            kind,
            root,
        };
        // Build over the existing members.
        let members = self.members(partition, &meta);
        for (_, rank) in members.scan(tx)? {
            let object = tx.get_dyn(ObjectId::from_parts(partition, rank))?;
            if let Some(key) = extractor(object.as_ref()) {
                self.index_insert(tx, partition, &idx, &key, rank)?;
            }
        }
        let mut updated = (*meta).clone();
        updated.indexes.push(idx);
        self.save(tx, coll, updated)
    }

    /// Drops an index, deleting its objects.
    ///
    /// # Errors
    ///
    /// Fails if the index does not exist.
    pub fn drop_index(
        &self,
        tx: &mut impl Transactional,
        coll: CollectionId,
        index_name: &str,
    ) -> Result<()> {
        let _t = metrics::span(modules::COLLECTION_STORE);
        let meta = self.load(tx, coll)?;
        let Some(pos) = meta.indexes.iter().position(|i| i.name == index_name) else {
            return Err(ObjectError::BadPickle(format!(
                "no index named {index_name}"
            )));
        };
        let idx = &meta.indexes[pos];
        let partition = coll.0.partition();
        match idx.kind {
            IndexKind::Sorted => BTree {
                partition,
                root: idx.root,
            }
            .destroy(tx)?,
            IndexKind::Unsorted => HashIndex {
                partition,
                root: idx.root,
            }
            .destroy(tx)?,
        }
        let mut updated = (*meta).clone();
        updated.indexes.remove(pos);
        self.save(tx, coll, updated)
    }

    /// Names of the collection's indexes.
    ///
    /// # Errors
    ///
    /// Fails if the collection does not exist.
    pub fn index_names(
        &self,
        tx: &mut impl Transactional,
        coll: CollectionId,
    ) -> Result<Vec<String>> {
        Ok(self
            .load(tx, coll)?
            .indexes
            .iter()
            .map(|i| i.name.clone())
            .collect())
    }

    /// Scan iterator: every member object id, in rank order.
    ///
    /// # Errors
    ///
    /// Fails if the collection does not exist.
    pub fn scan(&self, tx: &mut impl Transactional, coll: CollectionId) -> Result<Vec<ObjectId>> {
        let _t = metrics::span(modules::COLLECTION_STORE);
        let meta = self.load(tx, coll)?;
        let members = self.members(coll.0.partition(), &meta);
        Ok(members
            .scan(tx)?
            .into_iter()
            .map(|(_, rank)| ObjectId::from_parts(coll.0.partition(), rank))
            .collect())
    }

    /// Exact-match iterator over an index.
    ///
    /// # Errors
    ///
    /// Fails on unknown index names.
    pub fn lookup(
        &self,
        tx: &mut impl Transactional,
        coll: CollectionId,
        index_name: &str,
        key: &[u8],
    ) -> Result<Vec<ObjectId>> {
        let _t = metrics::span(modules::COLLECTION_STORE);
        let meta = self.load(tx, coll)?;
        let idx = Self::index_meta(&meta, index_name)?;
        let partition = coll.0.partition();
        let ranks = match idx.kind {
            IndexKind::Sorted => BTree {
                partition,
                root: idx.root,
            }
            .lookup(tx, key)?,
            IndexKind::Unsorted => HashIndex {
                partition,
                root: idx.root,
            }
            .lookup(tx, key)?,
        };
        Ok(ranks
            .into_iter()
            .map(|r| ObjectId::from_parts(partition, r))
            .collect())
    }

    /// Range iterator over a *sorted* index: members with `lo ≤ key < hi`.
    ///
    /// # Errors
    ///
    /// Fails on unknown or unsorted indexes.
    pub fn range(
        &self,
        tx: &mut impl Transactional,
        coll: CollectionId,
        index_name: &str,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
    ) -> Result<Vec<ObjectId>> {
        let _t = metrics::span(modules::COLLECTION_STORE);
        let meta = self.load(tx, coll)?;
        let idx = Self::index_meta(&meta, index_name)?;
        if idx.kind != IndexKind::Sorted {
            return Err(ObjectError::BadPickle(format!(
                "index {index_name} is unsorted; range iterators need a sorted index"
            )));
        }
        let partition = coll.0.partition();
        let tree = BTree {
            partition,
            root: idx.root,
        };
        Ok(tree
            .range(tx, lo, hi)?
            .into_iter()
            .map(|(_, r)| ObjectId::from_parts(partition, r))
            .collect())
    }

    /// Scan iterator over an index: every `(key, member)` entry. Sorted
    /// indexes yield key order; unsorted indexes yield arbitrary order.
    ///
    /// # Errors
    ///
    /// Fails on unknown index names.
    pub fn scan_index(
        &self,
        tx: &mut impl Transactional,
        coll: CollectionId,
        index_name: &str,
    ) -> Result<Vec<(Vec<u8>, ObjectId)>> {
        let _t = metrics::span(modules::COLLECTION_STORE);
        let meta = self.load(tx, coll)?;
        let idx = Self::index_meta(&meta, index_name)?;
        let partition = coll.0.partition();
        let entries = match idx.kind {
            IndexKind::Sorted => BTree {
                partition,
                root: idx.root,
            }
            .scan(tx)?,
            IndexKind::Unsorted => HashIndex {
                partition,
                root: idx.root,
            }
            .scan(tx)?,
        };
        Ok(entries
            .into_iter()
            .map(|(k, r)| (k, ObjectId::from_parts(partition, r)))
            .collect())
    }

    fn index_meta<'m>(meta: &'m CollectionObj, name: &str) -> Result<&'m IndexMeta> {
        meta.indexes
            .iter()
            .find(|i| i.name == name)
            .ok_or_else(|| ObjectError::BadPickle(format!("no index named {name}")))
    }

    fn index_insert(
        &self,
        tx: &mut impl Transactional,
        partition: PartitionId,
        idx: &IndexMeta,
        key: &[u8],
        rank: u64,
    ) -> Result<()> {
        match idx.kind {
            IndexKind::Sorted => BTree {
                partition,
                root: idx.root,
            }
            .insert(tx, key, rank),
            IndexKind::Unsorted => HashIndex {
                partition,
                root: idx.root,
            }
            .insert(tx, key, rank),
        }
    }

    fn index_remove(
        &self,
        tx: &mut impl Transactional,
        partition: PartitionId,
        idx: &IndexMeta,
        key: &[u8],
        rank: u64,
    ) -> Result<()> {
        match idx.kind {
            IndexKind::Sorted => BTree {
                partition,
                root: idx.root,
            }
            .remove(tx, key, rank)
            .map(|_| ()),
            IndexKind::Unsorted => HashIndex {
                partition,
                root: idx.root,
            }
            .remove(tx, key, rank)
            .map(|_| ()),
        }
    }
}

/// Test fixtures shared by this crate's unit tests.
#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use tdb_core::store::{ChunkStore, ChunkStoreConfig, CommitOp, TrustedBackend};
    use tdb_core::CryptoParams;
    use tdb_object::{ObjectStore, ObjectStoreConfig};

    pub(crate) struct Fixture {
        pub store: Arc<ObjectStore>,
        pub partition: PartitionId,
    }

    pub(crate) fn fixture() -> Fixture {
        use std::sync::Arc;
        let chunks = Arc::new(
            ChunkStore::create(
                Arc::new(tdb_storage::MemStore::new()) as tdb_storage::SharedUntrusted,
                TrustedBackend::Counter(Arc::new(tdb_storage::CounterOverTrusted::new(Arc::new(
                    tdb_storage::MemTrustedStore::new(64),
                )))),
                tdb_crypto::SecretKey::random(24),
                ChunkStoreConfig {
                    fanout: 8,
                    segment_size: 32768,
                    ..ChunkStoreConfig::default()
                },
            )
            .unwrap(),
        );
        let partition = chunks.allocate_partition().unwrap();
        chunks
            .commit(vec![CommitOp::CreatePartition {
                id: partition,
                params: CryptoParams::paper_default(),
            }])
            .unwrap();
        let mut registry = TypeRegistry::new();
        register_builtin_types(&mut registry);
        let store = ObjectStore::new(chunks, registry, ObjectStoreConfig::default());
        Fixture { store, partition }
    }
}
