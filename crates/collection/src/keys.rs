//! Order-preserving index key encoding.
//!
//! Sorted indexes compare keys as raw byte strings, so every typed
//! component must encode such that byte order equals logical order — this
//! is what lets TDB "maintain ordered indexes on data" (§1.2) despite the
//! stored chunks being encrypted: keys are extracted from *decrypted*
//! objects (§8).

/// Builds composite, order-preserving index keys.
///
/// Component order matters: keys compare lexicographically component by
/// component.
#[derive(Debug, Default, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct IndexKey {
    bytes: Vec<u8>,
}

impl IndexKey {
    /// An empty key.
    pub fn new() -> IndexKey {
        IndexKey::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Borrows the encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Appends an unsigned integer (big-endian: byte order = numeric order).
    pub fn u64(mut self, v: u64) -> IndexKey {
        self.bytes.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a signed integer (sign bit flipped so negative < positive).
    pub fn i64(mut self, v: i64) -> IndexKey {
        let biased = (v as u64) ^ (1u64 << 63);
        self.bytes.extend_from_slice(&biased.to_be_bytes());
        self
    }

    /// Appends a float (IEEE total-order trick: flip all bits of negatives,
    /// the sign bit of non-negatives).
    pub fn f64(mut self, v: f64) -> IndexKey {
        let bits = v.to_bits();
        let ordered = if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1u64 << 63)
        };
        self.bytes.extend_from_slice(&ordered.to_be_bytes());
        self
    }

    /// Appends a string, escaped so a shorter string sorts before any of
    /// its extensions and component boundaries never bleed: `0x00` becomes
    /// `0x00 0xFF`, and the component ends with `0x00 0x00`.
    pub fn str(mut self, s: &str) -> IndexKey {
        for &b in s.as_bytes() {
            if b == 0 {
                self.bytes.extend_from_slice(&[0x00, 0xFF]);
            } else {
                self.bytes.push(b);
            }
        }
        self.bytes.extend_from_slice(&[0x00, 0x00]);
        self
    }

    /// Appends raw bytes verbatim (caller guarantees ordering semantics).
    pub fn raw(mut self, bytes: &[u8]) -> IndexKey {
        self.bytes.extend_from_slice(bytes);
        self
    }

    /// Appends a boolean (false < true).
    pub fn bool(mut self, v: bool) -> IndexKey {
        self.bytes.push(u8::from(v));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k() -> IndexKey {
        IndexKey::new()
    }

    #[test]
    fn u64_order() {
        assert!(k().u64(1).into_bytes() < k().u64(2).into_bytes());
        assert!(k().u64(255).into_bytes() < k().u64(256).into_bytes());
        assert!(k().u64(0).into_bytes() < k().u64(u64::MAX).into_bytes());
    }

    #[test]
    fn i64_order() {
        let values = [i64::MIN, -1_000_000, -1, 0, 1, 42, i64::MAX];
        for w in values.windows(2) {
            assert!(
                k().i64(w[0]).into_bytes() < k().i64(w[1]).into_bytes(),
                "{} < {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn f64_order() {
        let values = [-1e300, -1.5, -0.0, 0.0, 1e-10, 2.5, 1e300];
        for w in values.windows(2) {
            assert!(
                k().f64(w[0]).into_bytes() <= k().f64(w[1]).into_bytes(),
                "{} <= {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn str_order_and_prefix() {
        assert!(k().str("abc").into_bytes() < k().str("abd").into_bytes());
        assert!(k().str("ab").into_bytes() < k().str("abc").into_bytes());
        assert!(k().str("").into_bytes() < k().str("a").into_bytes());
    }

    #[test]
    fn str_nul_escaping_preserves_boundaries() {
        // ("a\0", "b") must differ from ("a", "\0b") and sort consistently.
        let a = k().str("a\0").str("b").into_bytes();
        let b = k().str("a").str("\0b").into_bytes();
        assert_ne!(a, b);
        // "a" < "a\0" as strings, and the encodings agree.
        assert!(k().str("a").into_bytes() < k().str("a\0").into_bytes());
    }

    #[test]
    fn composite_component_order() {
        let a = k().str("alice").u64(2).into_bytes();
        let b = k().str("alice").u64(10).into_bytes();
        let c = k().str("bob").u64(1).into_bytes();
        assert!(a < b && b < c);
    }

    #[test]
    fn bool_order() {
        assert!(k().bool(false).into_bytes() < k().bool(true).into_bytes());
    }
}
