//! An unsorted (hash) index represented as objects (§8: "indexes may be
//! unsorted or sorted").
//!
//! A fixed directory of bucket objects; each bucket holds `(key, rank)`
//! entries. Exact-match only — range iterators need the sorted
//! [`crate::btree`] index.

use std::any::Any;
use std::sync::Arc;

use tdb_core::PartitionId;
use tdb_object::errors::{ObjectError, Result};
use tdb_object::pickle::{StoredObject, TypeRegistry};
use tdb_object::{ObjectId, Transactional};

/// Reserved type tag for hash-index directory objects.
pub(crate) const HASH_DIR_TAG: u32 = 0xF000_0003;
/// Reserved type tag for hash-bucket objects.
pub(crate) const HASH_BUCKET_TAG: u32 = 0xF000_0004;

/// Buckets per index. Fixed at creation; adequate for the low-thousands of
/// entries a TDB collection index typically carries.
const BUCKETS: usize = 64;

/// The directory object: bucket ranks (0 = bucket not yet materialized).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct HashDir {
    pub buckets: Vec<u64>,
}

impl StoredObject for HashDir {
    fn type_tag(&self) -> u32 {
        HASH_DIR_TAG
    }
    fn pickle(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.buckets.len() * 8);
        out.extend_from_slice(&(self.buckets.len() as u32).to_le_bytes());
        for b in &self.buckets {
            out.extend_from_slice(&b.to_le_bytes());
        }
        out
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn unpickle_dir(body: &[u8]) -> Result<Arc<dyn StoredObject>> {
    let bad = || ObjectError::BadPickle("hash dir".into());
    if body.len() < 4 {
        return Err(bad());
    }
    let n = u32::from_le_bytes(body[..4].try_into().unwrap()) as usize;
    if body.len() != 4 + n * 8 {
        return Err(bad());
    }
    let buckets = body[4..]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    Ok(Arc::new(HashDir { buckets }))
}

/// One bucket object.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct HashBucket {
    pub entries: Vec<(Vec<u8>, u64)>,
}

impl StoredObject for HashBucket {
    fn type_tag(&self) -> u32 {
        HASH_BUCKET_TAG
    }
    fn pickle(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (k, v) in &self.entries {
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(k);
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn unpickle_bucket(body: &[u8]) -> Result<Arc<dyn StoredObject>> {
    let bad = || ObjectError::BadPickle("hash bucket".into());
    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Result<&[u8]> {
        if *off + n > body.len() {
            return Err(bad());
        }
        let out = &body[*off..*off + n];
        *off += n;
        Ok(out)
    };
    let n = u32::from_le_bytes(take(&mut off, 4)?.try_into().unwrap()) as usize;
    let mut entries = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let klen = u32::from_le_bytes(take(&mut off, 4)?.try_into().unwrap()) as usize;
        let k = take(&mut off, klen)?.to_vec();
        let v = u64::from_le_bytes(take(&mut off, 8)?.try_into().unwrap());
        entries.push((k, v));
    }
    if off != body.len() {
        return Err(bad());
    }
    Ok(Arc::new(HashBucket { entries }))
}

/// Registers hash-index object types.
pub fn register_types(registry: &mut TypeRegistry) {
    registry.register(HASH_DIR_TAG, unpickle_dir);
    registry.register(HASH_BUCKET_TAG, unpickle_bucket);
}

/// FNV-1a, adequate for bucket spreading (integrity is the chunk store's
/// job, not the index's).
fn bucket_of(key: &[u8]) -> usize {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        acc ^= u64::from(b);
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (acc % BUCKETS as u64) as usize
}

/// A handle over one persistent hash index.
pub(crate) struct HashIndex {
    pub partition: PartitionId,
    /// Rank of the directory object.
    pub root: u64,
}

impl HashIndex {
    fn oid(&self, rank: u64) -> ObjectId {
        ObjectId::from_parts(self.partition, rank)
    }

    /// Creates an empty index.
    pub fn create(tx: &mut impl Transactional, partition: PartitionId) -> Result<HashIndex> {
        let dir = HashDir {
            buckets: vec![0; BUCKETS],
        };
        let id = tx.create(partition, Arc::new(dir))?;
        Ok(HashIndex {
            partition,
            root: id.rank(),
        })
    }

    /// Inserts `(key, value)` (idempotent on duplicates).
    pub fn insert(&self, tx: &mut impl Transactional, key: &[u8], value: u64) -> Result<()> {
        let dir = tx.get::<HashDir>(self.oid(self.root))?;
        let slot = bucket_of(key);
        let bucket_rank = dir.buckets[slot];
        if bucket_rank == 0 {
            let bucket = HashBucket {
                entries: vec![(key.to_vec(), value)],
            };
            let bucket_id = tx.create(self.partition, Arc::new(bucket))?;
            let mut new_dir = (*dir).clone();
            new_dir.buckets[slot] = bucket_id.rank();
            tx.put(self.oid(self.root), Arc::new(new_dir))?;
            return Ok(());
        }
        let bucket = tx.get::<HashBucket>(self.oid(bucket_rank))?;
        if bucket.entries.iter().any(|(k, v)| k == key && *v == value) {
            return Ok(());
        }
        let mut new_bucket = (*bucket).clone();
        new_bucket.entries.push((key.to_vec(), value));
        tx.put(self.oid(bucket_rank), Arc::new(new_bucket))
    }

    /// Removes `(key, value)`; returns whether it was present.
    pub fn remove(&self, tx: &mut impl Transactional, key: &[u8], value: u64) -> Result<bool> {
        let dir = tx.get::<HashDir>(self.oid(self.root))?;
        let bucket_rank = dir.buckets[bucket_of(key)];
        if bucket_rank == 0 {
            return Ok(false);
        }
        let bucket = tx.get::<HashBucket>(self.oid(bucket_rank))?;
        let Some(pos) = bucket
            .entries
            .iter()
            .position(|(k, v)| k == key && *v == value)
        else {
            return Ok(false);
        };
        let mut new_bucket = (*bucket).clone();
        new_bucket.entries.remove(pos);
        tx.put(self.oid(bucket_rank), Arc::new(new_bucket))?;
        Ok(true)
    }

    /// Every value stored under `key`.
    pub fn lookup(&self, tx: &mut impl Transactional, key: &[u8]) -> Result<Vec<u64>> {
        let dir = tx.get::<HashDir>(self.oid(self.root))?;
        let bucket_rank = dir.buckets[bucket_of(key)];
        if bucket_rank == 0 {
            return Ok(Vec::new());
        }
        let bucket = tx.get::<HashBucket>(self.oid(bucket_rank))?;
        Ok(bucket
            .entries
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .collect())
    }

    /// Every `(key, value)` pair, in no particular order.
    pub fn scan(&self, tx: &mut impl Transactional) -> Result<Vec<(Vec<u8>, u64)>> {
        let dir = tx.get::<HashDir>(self.oid(self.root))?;
        let buckets = dir.buckets.clone();
        let mut out = Vec::new();
        for rank in buckets {
            if rank != 0 {
                let bucket = tx.get::<HashBucket>(self.oid(rank))?;
                out.extend(bucket.entries.iter().cloned());
            }
        }
        Ok(out)
    }

    /// Deletes the directory and every bucket (index drop).
    pub fn destroy(&self, tx: &mut impl Transactional) -> Result<()> {
        let dir = tx.get::<HashDir>(self.oid(self.root))?;
        let buckets = dir.buckets.clone();
        for rank in buckets {
            if rank != 0 {
                tx.delete(self.oid(rank))?;
            }
        }
        tx.delete(self.oid(self.root))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::fixture;

    #[test]
    fn insert_lookup_remove() {
        let fx = fixture();
        let mut tx = fx.store.begin();
        let idx = HashIndex::create(&mut tx, fx.partition).unwrap();
        idx.insert(&mut tx, b"red", 1).unwrap();
        idx.insert(&mut tx, b"red", 2).unwrap();
        idx.insert(&mut tx, b"blue", 3).unwrap();
        idx.insert(&mut tx, b"red", 1).unwrap(); // Idempotent.

        let mut reds = idx.lookup(&mut tx, b"red").unwrap();
        reds.sort_unstable();
        assert_eq!(reds, vec![1, 2]);
        assert_eq!(idx.lookup(&mut tx, b"blue").unwrap(), vec![3]);
        assert!(idx.lookup(&mut tx, b"green").unwrap().is_empty());

        assert!(idx.remove(&mut tx, b"red", 1).unwrap());
        assert!(!idx.remove(&mut tx, b"red", 1).unwrap());
        assert_eq!(idx.lookup(&mut tx, b"red").unwrap(), vec![2]);
        tx.commit().unwrap();
    }

    #[test]
    fn many_keys_spread_and_scan() {
        let fx = fixture();
        let mut tx = fx.store.begin();
        let idx = HashIndex::create(&mut tx, fx.partition).unwrap();
        for i in 0..300u64 {
            idx.insert(&mut tx, format!("key-{i}").as_bytes(), i)
                .unwrap();
        }
        let scan = idx.scan(&mut tx).unwrap();
        assert_eq!(scan.len(), 300);
        for i in (0..300u64).step_by(17) {
            assert_eq!(
                idx.lookup(&mut tx, format!("key-{i}").as_bytes()).unwrap(),
                vec![i]
            );
        }
        tx.commit().unwrap();
    }

    #[test]
    fn persists_across_transactions() {
        let fx = fixture();
        let idx = {
            let mut tx = fx.store.begin();
            let idx = HashIndex::create(&mut tx, fx.partition).unwrap();
            idx.insert(&mut tx, b"durable", 42).unwrap();
            tx.commit().unwrap();
            idx
        };
        let mut tx = fx.store.begin();
        assert_eq!(idx.lookup(&mut tx, b"durable").unwrap(), vec![42]);
        tx.abort();
    }

    #[test]
    fn destroy_removes_objects() {
        let fx = fixture();
        let mut tx = fx.store.begin();
        let idx = HashIndex::create(&mut tx, fx.partition).unwrap();
        idx.insert(&mut tx, b"x", 1).unwrap();
        idx.destroy(&mut tx).unwrap();
        assert!(tx
            .get::<HashDir>(ObjectId::from_parts(fx.partition, idx.root))
            .is_err());
        tx.commit().unwrap();
    }
}
