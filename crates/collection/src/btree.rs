//! A persistent B+-tree whose nodes are objects (§8: "collections and
//! indexes are themselves represented as objects").
//!
//! Sorted indexes back range iterators; entries are `(key bytes, object
//! rank)` pairs, made unique by the rank so non-unique keys work naturally.
//! All node reads and writes go through the caller's transaction, so index
//! maintenance commits atomically with the object update that caused it.
//!
//! The root node keeps a fixed object id for its whole life: splitting the
//! root moves its contents into two fresh children instead of reparenting,
//! so the collection object never needs rewriting on splits.

use std::any::Any;
use std::sync::Arc;

use tdb_core::PartitionId;
use tdb_object::errors::{ObjectError, Result};
use tdb_object::pickle::{StoredObject, TypeRegistry};
use tdb_object::{ObjectId, Transactional};

/// Reserved type tag for B-tree nodes.
pub(crate) const BTREE_NODE_TAG: u32 = 0xF000_0002;

/// Maximum entries per node before splitting. Small enough that tests
/// exercise multi-level trees; large enough to amortize per-node overhead.
const MAX_ENTRIES: usize = 16;

/// One index entry.
pub type Entry = (Vec<u8>, u64);

/// A B+-tree node object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BTreeNode {
    /// Leaf nodes hold data entries; internal nodes hold separators.
    pub leaf: bool,
    /// Sorted by `(key, value)`.
    pub entries: Vec<Entry>,
    /// Internal only: child object ranks, `entries.len() + 1` of them.
    /// Child `i` holds pairs `< entries[i]`; the last child holds the rest.
    pub children: Vec<u64>,
}

impl BTreeNode {
    pub(crate) fn empty_leaf() -> BTreeNode {
        BTreeNode {
            leaf: true,
            entries: Vec::new(),
            children: Vec::new(),
        }
    }
}

impl StoredObject for BTreeNode {
    fn type_tag(&self) -> u32 {
        BTREE_NODE_TAG
    }

    fn pickle(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(u8::from(self.leaf));
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (k, v) in &self.entries {
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(k);
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.children.len() as u32).to_le_bytes());
        for c in &self.children {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Unpickler registered for [`BTREE_NODE_TAG`].
pub(crate) fn unpickle_node(body: &[u8]) -> Result<Arc<dyn StoredObject>> {
    let bad = || ObjectError::BadPickle("btree node".into());
    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Result<&[u8]> {
        if *off + n > body.len() {
            return Err(bad());
        }
        let out = &body[*off..*off + n];
        *off += n;
        Ok(out)
    };
    let leaf = take(&mut off, 1)?[0] != 0;
    let n_entries = u32::from_le_bytes(take(&mut off, 4)?.try_into().unwrap()) as usize;
    let mut entries = Vec::with_capacity(n_entries.min(1024));
    for _ in 0..n_entries {
        let klen = u32::from_le_bytes(take(&mut off, 4)?.try_into().unwrap()) as usize;
        let k = take(&mut off, klen)?.to_vec();
        let v = u64::from_le_bytes(take(&mut off, 8)?.try_into().unwrap());
        entries.push((k, v));
    }
    let n_children = u32::from_le_bytes(take(&mut off, 4)?.try_into().unwrap()) as usize;
    let mut children = Vec::with_capacity(n_children.min(1024));
    for _ in 0..n_children {
        children.push(u64::from_le_bytes(take(&mut off, 8)?.try_into().unwrap()));
    }
    if off != body.len() {
        return Err(bad());
    }
    Ok(Arc::new(BTreeNode {
        leaf,
        entries,
        children,
    }))
}

/// Registers the node type; call once when building the type registry.
pub fn register_types(registry: &mut TypeRegistry) {
    registry.register(BTREE_NODE_TAG, unpickle_node);
}

/// A handle over one persistent B+-tree.
pub(crate) struct BTree {
    /// Partition the nodes live in.
    pub partition: PartitionId,
    /// Fixed rank of the root node object.
    pub root: u64,
}

impl BTree {
    fn node_id(&self, rank: u64) -> ObjectId {
        ObjectId::from_parts(self.partition, rank)
    }

    fn read(&self, tx: &mut impl Transactional, rank: u64) -> Result<Arc<BTreeNode>> {
        tx.get::<BTreeNode>(self.node_id(rank))
    }

    fn write(&self, tx: &mut impl Transactional, rank: u64, node: BTreeNode) -> Result<()> {
        tx.put(self.node_id(rank), Arc::new(node))
    }

    /// Creates a fresh empty tree in `partition`, returning its handle.
    pub fn create(tx: &mut impl Transactional, partition: PartitionId) -> Result<BTree> {
        let id = tx.create(partition, Arc::new(BTreeNode::empty_leaf()))?;
        Ok(BTree {
            partition,
            root: id.rank(),
        })
    }

    /// Inserts `(key, value)`. Duplicate pairs are idempotent.
    pub fn insert(&self, tx: &mut impl Transactional, key: &[u8], value: u64) -> Result<()> {
        if let Some((sep, new_child)) = self.insert_rec(tx, self.root, key, value)? {
            // The root split: move the root's current content into a fresh
            // left sibling; the root becomes internal over [left, right].
            let root = self.read(tx, self.root)?;
            let left = BTreeNode {
                leaf: root.leaf,
                entries: root.entries.clone(),
                children: root.children.clone(),
            };
            let left_id = tx.create(self.partition, Arc::new(left))?;
            let new_root = BTreeNode {
                leaf: false,
                entries: vec![sep],
                children: vec![left_id.rank(), new_child],
            };
            self.write(tx, self.root, new_root)?;
        }
        Ok(())
    }

    /// Recursive insert; returns `Some((separator, new_right_rank))` when
    /// the visited node split.
    fn insert_rec(
        &self,
        tx: &mut impl Transactional,
        rank: u64,
        key: &[u8],
        value: u64,
    ) -> Result<Option<(Entry, u64)>> {
        let node = self.read(tx, rank)?;
        let mut node = (*node).clone();
        if node.leaf {
            let probe = (key.to_vec(), value);
            match node.entries.binary_search(&probe) {
                Ok(_) => return Ok(None), // Idempotent duplicate.
                Err(pos) => node.entries.insert(pos, probe),
            }
        } else {
            let slot = child_slot(&node, key, value);
            let child = node.children[slot];
            if let Some((sep, new_child)) = self.insert_rec(tx, child, key, value)? {
                node.entries.insert(slot, sep);
                node.children.insert(slot + 1, new_child);
            } else {
                return Ok(None);
            }
        }
        if node.entries.len() <= MAX_ENTRIES {
            self.write(tx, rank, node)?;
            return Ok(None);
        }
        // Split.
        let mid = node.entries.len() / 2;
        let (sep, right) = if node.leaf {
            let right_entries = node.entries.split_off(mid);
            let sep = right_entries[0].clone();
            (
                sep,
                BTreeNode {
                    leaf: true,
                    entries: right_entries,
                    children: Vec::new(),
                },
            )
        } else {
            let mut right_entries = node.entries.split_off(mid);
            let sep = right_entries.remove(0);
            let right_children = node.children.split_off(mid + 1);
            (
                sep,
                BTreeNode {
                    leaf: false,
                    entries: right_entries,
                    children: right_children,
                },
            )
        };
        let right_id = tx.create(self.partition, Arc::new(right))?;
        self.write(tx, rank, node)?;
        Ok(Some((sep, right_id.rank())))
    }

    /// Removes `(key, value)`; returns whether it was present.
    pub fn remove(&self, tx: &mut impl Transactional, key: &[u8], value: u64) -> Result<bool> {
        let removed = self.remove_rec(tx, self.root, key, value)?;
        if removed {
            // Collapse a childless-chain root: an internal root with no
            // separators has exactly one child; pull its content up.
            loop {
                let root = self.read(tx, self.root)?;
                if root.leaf || !root.entries.is_empty() {
                    break;
                }
                let only_child = root.children[0];
                let child = self.read(tx, only_child)?;
                let promoted = (*child).clone();
                self.write(tx, self.root, promoted)?;
                tx.delete(self.node_id(only_child))?;
            }
        }
        Ok(removed)
    }

    fn remove_rec(
        &self,
        tx: &mut impl Transactional,
        rank: u64,
        key: &[u8],
        value: u64,
    ) -> Result<bool> {
        let node = self.read(tx, rank)?;
        let mut node = (*node).clone();
        if node.leaf {
            let probe = (key.to_vec(), value);
            match node.entries.binary_search(&probe) {
                Ok(pos) => {
                    node.entries.remove(pos);
                    self.write(tx, rank, node)?;
                    Ok(true)
                }
                Err(_) => Ok(false),
            }
        } else {
            // The entry may sit in the separator position itself (B-tree
            // variant: separators are real entries copied up on leaf
            // splits; the authoritative copy lives in the leaf). Descend.
            let slot = child_slot(&node, key, value);
            let child = node.children[slot];
            let removed = self.remove_rec(tx, child, key, value)?;
            if removed {
                // Prune an empty non-root leaf child to keep scans cheap.
                let child_node = self.read(tx, child)?;
                if child_node.leaf && child_node.entries.is_empty() && node.children.len() > 1 {
                    let sep_at = slot.min(node.entries.len() - 1);
                    node.entries.remove(sep_at);
                    node.children.remove(slot);
                    self.write(tx, rank, node)?;
                    tx.delete(self.node_id(child))?;
                }
            }
            Ok(removed)
        }
    }

    /// All `(key, value)` pairs with `lo ≤ key < hi` (whole-key bounds;
    /// `hi = None` means unbounded), in order.
    pub fn range(
        &self,
        tx: &mut impl Transactional,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
    ) -> Result<Vec<Entry>> {
        let mut out = Vec::new();
        self.range_rec(tx, self.root, lo, hi, &mut out)?;
        Ok(out)
    }

    fn range_rec(
        &self,
        tx: &mut impl Transactional,
        rank: u64,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        out: &mut Vec<Entry>,
    ) -> Result<()> {
        let node = self.read(tx, rank)?;
        if node.leaf {
            for (k, v) in &node.entries {
                if lo.is_some_and(|lo| k.as_slice() < lo) {
                    continue;
                }
                if hi.is_some_and(|hi| k.as_slice() >= hi) {
                    break;
                }
                out.push((k.clone(), *v));
            }
            return Ok(());
        }
        for (i, child) in node.children.iter().enumerate() {
            // Subtree i holds pairs < entries[i] and ≥ entries[i-1].
            let subtree_min = if i == 0 {
                None
            } else {
                Some(&node.entries[i - 1].0)
            };
            let subtree_max = node.entries.get(i).map(|e| &e.0);
            // Prune subtrees wholly outside the range. A subtree whose max
            // key equals `lo` may still contain (lo, v) pairs, so compare
            // strictly.
            if let (Some(hi), Some(min)) = (hi, subtree_min) {
                if min.as_slice() >= hi {
                    break;
                }
            }
            if let (Some(lo), Some(max)) = (lo, subtree_max) {
                if max.as_slice() < lo {
                    continue;
                }
            }
            self.range_rec(tx, *child, lo, hi, out)?;
        }
        Ok(())
    }

    /// All values whose key equals `key` exactly.
    pub fn lookup(&self, tx: &mut impl Transactional, key: &[u8]) -> Result<Vec<u64>> {
        let mut hi = key.to_vec();
        hi.push(0);
        Ok(self
            .range(tx, Some(key), Some(&hi))?
            .into_iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v)
            .collect())
    }

    /// Every entry, in order.
    pub fn scan(&self, tx: &mut impl Transactional) -> Result<Vec<Entry>> {
        self.range(tx, None, None)
    }

    /// Deletes every node object of this tree (index drop).
    pub fn destroy(&self, tx: &mut impl Transactional) -> Result<()> {
        self.destroy_rec(tx, self.root)
    }

    fn destroy_rec(&self, tx: &mut impl Transactional, rank: u64) -> Result<()> {
        let node = self.read(tx, rank)?;
        let children = node.children.clone();
        for c in children {
            self.destroy_rec(tx, c)?;
        }
        tx.delete(self.node_id(rank))?;
        Ok(())
    }
}

/// Index of the child subtree that would contain `(key, value)`.
fn child_slot(node: &BTreeNode, key: &[u8], value: u64) -> usize {
    let probe = (key.to_vec(), value);
    match node.entries.binary_search(&probe) {
        // An exact separator match belongs to the right subtree (entries ≥
        // separator live right of it).
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::fixture;

    #[test]
    fn insert_lookup_small() {
        let fx = fixture();
        let mut tx = fx.store.begin();
        let tree = BTree::create(&mut tx, fx.partition).unwrap();
        tree.insert(&mut tx, b"bob", 2).unwrap();
        tree.insert(&mut tx, b"alice", 1).unwrap();
        tree.insert(&mut tx, b"carol", 3).unwrap();
        assert_eq!(tree.lookup(&mut tx, b"alice").unwrap(), vec![1]);
        assert_eq!(tree.lookup(&mut tx, b"bob").unwrap(), vec![2]);
        assert_eq!(tree.lookup(&mut tx, b"dave").unwrap(), Vec::<u64>::new());
        tx.commit().unwrap();
    }

    #[test]
    fn duplicate_keys_supported() {
        let fx = fixture();
        let mut tx = fx.store.begin();
        let tree = BTree::create(&mut tx, fx.partition).unwrap();
        for v in [5u64, 3, 9] {
            tree.insert(&mut tx, b"same", v).unwrap();
        }
        // Idempotent re-insert.
        tree.insert(&mut tx, b"same", 5).unwrap();
        let mut vals = tree.lookup(&mut tx, b"same").unwrap();
        vals.sort_unstable();
        assert_eq!(vals, vec![3, 5, 9]);
        tx.commit().unwrap();
    }

    #[test]
    fn many_inserts_split_and_stay_sorted() {
        let fx = fixture();
        let mut tx = fx.store.begin();
        let tree = BTree::create(&mut tx, fx.partition).unwrap();
        // Insert in a scrambled order.
        let mut keys: Vec<u64> = (0..500).collect();
        keys.reverse();
        keys.sort_by_key(|k| k.wrapping_mul(2654435761) % 1000);
        for k in &keys {
            let key = crate::keys::IndexKey::new().u64(*k).into_bytes();
            tree.insert(&mut tx, &key, *k).unwrap();
        }
        let scan = tree.scan(&mut tx).unwrap();
        assert_eq!(scan.len(), 500);
        let values: Vec<u64> = scan.iter().map(|(_, v)| *v).collect();
        let expected: Vec<u64> = (0..500).collect();
        assert_eq!(values, expected, "scan returns key order");
        tx.commit().unwrap();
    }

    #[test]
    fn range_queries() {
        let fx = fixture();
        let mut tx = fx.store.begin();
        let tree = BTree::create(&mut tx, fx.partition).unwrap();
        for k in 0..100u64 {
            let key = crate::keys::IndexKey::new().u64(k).into_bytes();
            tree.insert(&mut tx, &key, k).unwrap();
        }
        let lo = crate::keys::IndexKey::new().u64(10).into_bytes();
        let hi = crate::keys::IndexKey::new().u64(20).into_bytes();
        let hits = tree.range(&mut tx, Some(&lo), Some(&hi)).unwrap();
        let values: Vec<u64> = hits.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, (10..20).collect::<Vec<u64>>());

        // Open-ended ranges.
        assert_eq!(tree.range(&mut tx, Some(&hi), None).unwrap().len(), 80);
        assert_eq!(tree.range(&mut tx, None, Some(&lo)).unwrap().len(), 10);
        tx.commit().unwrap();
    }

    #[test]
    fn remove_and_rescan() {
        let fx = fixture();
        let mut tx = fx.store.begin();
        let tree = BTree::create(&mut tx, fx.partition).unwrap();
        for k in 0..200u64 {
            let key = crate::keys::IndexKey::new().u64(k).into_bytes();
            tree.insert(&mut tx, &key, k).unwrap();
        }
        for k in (0..200u64).filter(|k| k % 2 == 0) {
            let key = crate::keys::IndexKey::new().u64(k).into_bytes();
            assert!(tree.remove(&mut tx, &key, k).unwrap(), "remove {k}");
        }
        // Removing again reports absence.
        let key0 = crate::keys::IndexKey::new().u64(0).into_bytes();
        assert!(!tree.remove(&mut tx, &key0, 0).unwrap());
        let scan = tree.scan(&mut tx).unwrap();
        assert_eq!(scan.len(), 100);
        assert!(scan.iter().all(|(_, v)| v % 2 == 1));
        tx.commit().unwrap();
    }

    #[test]
    fn remove_everything_collapses() {
        let fx = fixture();
        let mut tx = fx.store.begin();
        let tree = BTree::create(&mut tx, fx.partition).unwrap();
        for k in 0..100u64 {
            let key = crate::keys::IndexKey::new().u64(k).into_bytes();
            tree.insert(&mut tx, &key, k).unwrap();
        }
        for k in 0..100u64 {
            let key = crate::keys::IndexKey::new().u64(k).into_bytes();
            assert!(tree.remove(&mut tx, &key, k).unwrap());
        }
        assert!(tree.scan(&mut tx).unwrap().is_empty());
        // The tree is still usable after total drain.
        tree.insert(&mut tx, b"again", 1).unwrap();
        assert_eq!(tree.lookup(&mut tx, b"again").unwrap(), vec![1]);
        tx.commit().unwrap();
    }

    #[test]
    fn persists_across_transactions() {
        let fx = fixture();
        let tree = {
            let mut tx = fx.store.begin();
            let tree = BTree::create(&mut tx, fx.partition).unwrap();
            tree.insert(&mut tx, b"k", 7).unwrap();
            tx.commit().unwrap();
            tree
        };
        let mut tx = fx.store.begin();
        assert_eq!(tree.lookup(&mut tx, b"k").unwrap(), vec![7]);
        tx.abort();
    }
}
