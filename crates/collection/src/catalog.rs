//! A catalog object: a durable name → collection directory.
//!
//! The paper's collection store names collections but leaves discovery to
//! the application ("collections and indexes are themselves represented as
//! objects", §8). A catalog is exactly such an object: a small directory
//! mapping names to collection object ranks, so an application can find its
//! collections again after a restart from a single well-known [`ObjectId`].

use std::any::Any;
use std::sync::Arc;

use tdb_object::errors::{ObjectError, Result};
use tdb_object::pickle::{StoredObject, TypeRegistry};
use tdb_object::{ObjectId, Transactional};

use crate::CollectionId;

/// Reserved type tag for catalog objects.
pub const CATALOG_TAG: u32 = 0xF000_0005;

/// The catalog object: sorted (name, collection rank) pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct CatalogObj {
    entries: Vec<(String, u64)>,
}

impl StoredObject for CatalogObj {
    fn type_tag(&self) -> u32 {
        CATALOG_TAG
    }

    fn pickle(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (name, rank) in &self.entries {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&rank.to_le_bytes());
        }
        out
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn unpickle_catalog(body: &[u8]) -> Result<Arc<dyn StoredObject>> {
    let bad = || ObjectError::BadPickle("catalog".into());
    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Result<&[u8]> {
        if *off + n > body.len() {
            return Err(bad());
        }
        let out = &body[*off..*off + n];
        *off += n;
        Ok(out)
    };
    let n = u32::from_le_bytes(take(&mut off, 4)?.try_into().unwrap()) as usize;
    let mut entries = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let len = u32::from_le_bytes(take(&mut off, 4)?.try_into().unwrap()) as usize;
        let name = String::from_utf8(take(&mut off, len)?.to_vec()).map_err(|_| bad())?;
        let rank = u64::from_le_bytes(take(&mut off, 8)?.try_into().unwrap());
        entries.push((name, rank));
    }
    if off != body.len() {
        return Err(bad());
    }
    Ok(Arc::new(CatalogObj { entries }))
}

/// Registers the catalog type (called by
/// [`crate::register_builtin_types`]).
pub(crate) fn register_types(registry: &mut TypeRegistry) {
    registry.register(CATALOG_TAG, unpickle_catalog);
}

/// Handle to a catalog object.
///
/// A catalog resolves names to collections **in its own partition**: the
/// stored entries are bare ranks, reconstructed against
/// `self.0.partition()`. Keep a catalog and the collections it names in
/// the same partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Catalog(pub ObjectId);

impl Catalog {
    /// Creates an empty catalog in `partition`. Store the returned id (or
    /// its rank) in application configuration; it is the root of discovery.
    ///
    /// # Errors
    ///
    /// Propagates object-store failures.
    pub fn create(
        tx: &mut impl Transactional,
        partition: tdb_core::PartitionId,
    ) -> Result<Catalog> {
        Ok(Catalog(
            tx.create(partition, Arc::new(CatalogObj::default()))?,
        ))
    }

    /// Opens an existing catalog by id (checks the type).
    ///
    /// # Errors
    ///
    /// Fails if the object is missing or not a catalog.
    pub fn open(tx: &mut impl Transactional, id: ObjectId) -> Result<Catalog> {
        let _: Arc<CatalogObj> = tx.get(id)?;
        Ok(Catalog(id))
    }

    fn load(&self, tx: &mut impl Transactional) -> Result<Arc<CatalogObj>> {
        tx.get(self.0)
    }

    /// Registers `name` → `collection`, replacing any previous binding.
    ///
    /// # Errors
    ///
    /// Propagates object-store failures.
    pub fn put(
        &self,
        tx: &mut impl Transactional,
        name: &str,
        collection: CollectionId,
    ) -> Result<()> {
        let mut obj = (*self.load(tx)?).clone();
        match obj.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => obj.entries[i].1 = collection.0.rank(),
            Err(i) => obj
                .entries
                .insert(i, (name.to_string(), collection.0.rank())),
        }
        tx.put(self.0, Arc::new(obj))
    }

    /// Looks a collection up by name.
    ///
    /// # Errors
    ///
    /// Propagates object-store failures.
    pub fn get(&self, tx: &mut impl Transactional, name: &str) -> Result<Option<CollectionId>> {
        let obj = self.load(tx)?;
        Ok(obj
            .entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| CollectionId(ObjectId::from_parts(self.0.partition(), obj.entries[i].1))))
    }

    /// Removes a binding; returns whether it existed.
    ///
    /// # Errors
    ///
    /// Propagates object-store failures.
    pub fn remove(&self, tx: &mut impl Transactional, name: &str) -> Result<bool> {
        let mut obj = (*self.load(tx)?).clone();
        match obj.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => {
                obj.entries.remove(i);
                tx.put(self.0, Arc::new(obj))?;
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    /// All bound names, sorted.
    ///
    /// # Errors
    ///
    /// Propagates object-store failures.
    pub fn names(&self, tx: &mut impl Transactional) -> Result<Vec<String>> {
        Ok(self
            .load(tx)?
            .entries
            .iter()
            .map(|(n, _)| n.clone())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::fixture;
    use crate::CollectionStore;

    #[test]
    fn catalog_roundtrip_across_transactions() {
        let fx = fixture();
        let collections = CollectionStore::new(crate::ExtractorRegistry::new());
        let (catalog, coll_a, coll_b) = {
            let mut tx = fx.store.begin();
            let catalog = Catalog::create(&mut tx, fx.partition).unwrap();
            let a = collections
                .create_collection(&mut tx, fx.partition, "alpha")
                .unwrap();
            let b = collections
                .create_collection(&mut tx, fx.partition, "beta")
                .unwrap();
            catalog.put(&mut tx, "alpha", a).unwrap();
            catalog.put(&mut tx, "beta", b).unwrap();
            tx.commit().unwrap();
            (catalog, a, b)
        };
        let mut tx = fx.store.begin();
        let reopened = Catalog::open(&mut tx, catalog.0).unwrap();
        assert_eq!(reopened.get(&mut tx, "alpha").unwrap(), Some(coll_a));
        assert_eq!(reopened.get(&mut tx, "beta").unwrap(), Some(coll_b));
        assert_eq!(reopened.get(&mut tx, "gamma").unwrap(), None);
        assert_eq!(reopened.names(&mut tx).unwrap(), vec!["alpha", "beta"]);
        tx.abort();
    }

    #[test]
    fn rebind_and_remove() {
        let fx = fixture();
        let collections = CollectionStore::new(crate::ExtractorRegistry::new());
        let mut tx = fx.store.begin();
        let catalog = Catalog::create(&mut tx, fx.partition).unwrap();
        let a = collections
            .create_collection(&mut tx, fx.partition, "one")
            .unwrap();
        let b = collections
            .create_collection(&mut tx, fx.partition, "two")
            .unwrap();
        catalog.put(&mut tx, "slot", a).unwrap();
        catalog.put(&mut tx, "slot", b).unwrap(); // Rebind.
        assert_eq!(catalog.get(&mut tx, "slot").unwrap(), Some(b));
        assert!(catalog.remove(&mut tx, "slot").unwrap());
        assert!(!catalog.remove(&mut tx, "slot").unwrap());
        assert_eq!(catalog.get(&mut tx, "slot").unwrap(), None);
        tx.commit().unwrap();
    }

    #[test]
    fn open_rejects_non_catalog() {
        let fx = fixture();
        let collections = CollectionStore::new(crate::ExtractorRegistry::new());
        let mut tx = fx.store.begin();
        let coll = collections
            .create_collection(&mut tx, fx.partition, "not-a-catalog")
            .unwrap();
        assert!(Catalog::open(&mut tx, coll.0).is_err());
        tx.abort();
    }
}
