//! Integration tests for the collection store: functional indexes, scan /
//! exact-match / range iterators, dynamic index add/drop, and automatic
//! maintenance (§8).

use std::any::Any;
use std::sync::Arc;

use tdb_collection::{
    register_builtin_types, CollectionStore, ExtractorRegistry, IndexKey, IndexKind,
};
use tdb_core::store::{ChunkStore, ChunkStoreConfig, CommitOp, TrustedBackend};
use tdb_core::{CryptoParams, PartitionId};
use tdb_crypto::SecretKey;
use tdb_object::pickle::{downcast, StoredObject, TypeRegistry};
use tdb_object::{ObjectStore, ObjectStoreConfig};
use tdb_storage::{CounterOverTrusted, MemStore, MemTrustedStore, SharedUntrusted};

/// A digital good for sale, as in the paper's motivating DRM scenario.
#[derive(Debug, Clone, PartialEq)]
struct Good {
    title: String,
    vendor: String,
    price_cents: i64,
}

const GOOD_TAG: u32 = 100;

impl StoredObject for Good {
    fn type_tag(&self) -> u32 {
        GOOD_TAG
    }
    fn pickle(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for s in [&self.title, &self.vendor] {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        out.extend_from_slice(&self.price_cents.to_le_bytes());
        out
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn unpickle_good(body: &[u8]) -> tdb_object::errors::Result<Arc<dyn StoredObject>> {
    let mut off = 0usize;
    let mut get_str = || {
        let n = u32::from_le_bytes(body[off..off + 4].try_into().unwrap()) as usize;
        let s = String::from_utf8(body[off + 4..off + 4 + n].to_vec()).unwrap();
        off += 4 + n;
        s
    };
    let title = get_str();
    let vendor = get_str();
    let price_cents = i64::from_le_bytes(body[off..off + 8].try_into().unwrap());
    Ok(Arc::new(Good {
        title,
        vendor,
        price_cents,
    }))
}

fn by_title(obj: &dyn StoredObject) -> Option<Vec<u8>> {
    obj.as_any()
        .downcast_ref::<Good>()
        .map(|g| IndexKey::new().str(&g.title).into_bytes())
}

fn by_vendor(obj: &dyn StoredObject) -> Option<Vec<u8>> {
    obj.as_any()
        .downcast_ref::<Good>()
        .map(|g| IndexKey::new().str(&g.vendor).into_bytes())
}

fn by_price(obj: &dyn StoredObject) -> Option<Vec<u8>> {
    obj.as_any()
        .downcast_ref::<Good>()
        .map(|g| IndexKey::new().i64(g.price_cents).into_bytes())
}

/// Only paid goods are indexed: demonstrates extractors returning `None`.
fn by_paid_title(obj: &dyn StoredObject) -> Option<Vec<u8>> {
    let good = obj.as_any().downcast_ref::<Good>()?;
    if good.price_cents > 0 {
        Some(IndexKey::new().str(&good.title).into_bytes())
    } else {
        None
    }
}

struct Fixture {
    objects: Arc<ObjectStore>,
    collections: CollectionStore,
    partition: PartitionId,
}

fn fixture() -> Fixture {
    let chunks = Arc::new(
        ChunkStore::create(
            Arc::new(MemStore::new()) as SharedUntrusted,
            TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(Arc::new(
                MemTrustedStore::new(64),
            )))),
            SecretKey::random(24),
            ChunkStoreConfig::default(),
        )
        .unwrap(),
    );
    let partition = chunks.allocate_partition().unwrap();
    chunks
        .commit(vec![CommitOp::CreatePartition {
            id: partition,
            params: CryptoParams::paper_default(),
        }])
        .unwrap();
    let mut registry = TypeRegistry::new();
    register_builtin_types(&mut registry);
    registry.register(GOOD_TAG, unpickle_good);
    let objects = ObjectStore::new(chunks, registry, ObjectStoreConfig::default());
    let mut extractors = ExtractorRegistry::new();
    extractors.register("by_title", by_title);
    extractors.register("by_vendor", by_vendor);
    extractors.register("by_price", by_price);
    extractors.register("by_paid_title", by_paid_title);
    Fixture {
        objects,
        collections: CollectionStore::new(extractors),
        partition,
    }
}

fn good(title: &str, vendor: &str, price: i64) -> Arc<dyn StoredObject> {
    Arc::new(Good {
        title: title.into(),
        vendor: vendor.into(),
        price_cents: price,
    })
}

#[test]
fn insert_scan_and_count() {
    let fx = fixture();
    let mut tx = fx.objects.begin();
    let coll = fx
        .collections
        .create_collection(&mut tx, fx.partition, "goods")
        .unwrap();
    for i in 0..20 {
        fx.collections
            .insert(
                &mut tx,
                coll,
                good(&format!("song-{i:02}"), "acme", 100 + i),
            )
            .unwrap();
    }
    assert_eq!(fx.collections.len(&mut tx, coll).unwrap(), 20);
    assert_eq!(fx.collections.name(&mut tx, coll).unwrap(), "goods");
    let members = fx.collections.scan(&mut tx, coll).unwrap();
    assert_eq!(members.len(), 20);
    // Every member unpickles as a Good.
    for id in members {
        let obj = tx.get::<Good>(id).unwrap();
        assert_eq!(obj.vendor, "acme");
    }
    tx.commit().unwrap();
}

#[test]
fn exact_match_on_sorted_and_unsorted() {
    let fx = fixture();
    let mut tx = fx.objects.begin();
    let coll = fx
        .collections
        .create_collection(&mut tx, fx.partition, "goods")
        .unwrap();
    fx.collections
        .add_index(&mut tx, coll, "title", "by_title", IndexKind::Sorted)
        .unwrap();
    fx.collections
        .add_index(&mut tx, coll, "vendor", "by_vendor", IndexKind::Unsorted)
        .unwrap();

    let a = fx
        .collections
        .insert(&mut tx, coll, good("aria", "v1", 100))
        .unwrap();
    let b = fx
        .collections
        .insert(&mut tx, coll, good("ballad", "v1", 200))
        .unwrap();
    let c = fx
        .collections
        .insert(&mut tx, coll, good("chorale", "v2", 300))
        .unwrap();

    let key = IndexKey::new().str("ballad").into_bytes();
    assert_eq!(
        fx.collections.lookup(&mut tx, coll, "title", &key).unwrap(),
        vec![b]
    );

    let key = IndexKey::new().str("v1").into_bytes();
    let mut v1 = fx
        .collections
        .lookup(&mut tx, coll, "vendor", &key)
        .unwrap();
    v1.sort();
    let mut expected = vec![a, b];
    expected.sort();
    assert_eq!(v1, expected);

    let key = IndexKey::new().str("v2").into_bytes();
    assert_eq!(
        fx.collections
            .lookup(&mut tx, coll, "vendor", &key)
            .unwrap(),
        vec![c]
    );
    tx.commit().unwrap();
}

#[test]
fn range_queries_on_price() {
    let fx = fixture();
    let mut tx = fx.objects.begin();
    let coll = fx
        .collections
        .create_collection(&mut tx, fx.partition, "goods")
        .unwrap();
    fx.collections
        .add_index(&mut tx, coll, "price", "by_price", IndexKind::Sorted)
        .unwrap();
    for price in [500i64, 100, 300, 200, 400, -50] {
        fx.collections
            .insert(&mut tx, coll, good(&format!("g{price}"), "v", price))
            .unwrap();
    }
    let lo = IndexKey::new().i64(100).into_bytes();
    let hi = IndexKey::new().i64(400).into_bytes();
    let hits = fx
        .collections
        .range(&mut tx, coll, "price", Some(&lo), Some(&hi))
        .unwrap();
    let prices: Vec<i64> = hits
        .iter()
        .map(|id| tx.get::<Good>(*id).unwrap().price_cents)
        .collect();
    assert_eq!(prices, vec![100, 200, 300], "ordered and bounded");

    // Unbounded below picks up the negative price first.
    let all = fx
        .collections
        .range(&mut tx, coll, "price", None, None)
        .unwrap();
    let prices: Vec<i64> = all
        .iter()
        .map(|id| tx.get::<Good>(*id).unwrap().price_cents)
        .collect();
    assert_eq!(prices, vec![-50, 100, 200, 300, 400, 500]);

    // Range on an unsorted index is rejected.
    fx.collections
        .add_index(&mut tx, coll, "vendor", "by_vendor", IndexKind::Unsorted)
        .unwrap();
    assert!(fx
        .collections
        .range(&mut tx, coll, "vendor", None, None)
        .is_err());
    tx.commit().unwrap();
}

#[test]
fn update_maintains_indexes() {
    let fx = fixture();
    let mut tx = fx.objects.begin();
    let coll = fx
        .collections
        .create_collection(&mut tx, fx.partition, "goods")
        .unwrap();
    fx.collections
        .add_index(&mut tx, coll, "title", "by_title", IndexKind::Sorted)
        .unwrap();
    let id = fx
        .collections
        .insert(&mut tx, coll, good("draft", "v", 1))
        .unwrap();

    fx.collections
        .update(&mut tx, coll, id, good("final", "v", 1))
        .unwrap();

    let draft_key = IndexKey::new().str("draft").into_bytes();
    let final_key = IndexKey::new().str("final").into_bytes();
    assert!(fx
        .collections
        .lookup(&mut tx, coll, "title", &draft_key)
        .unwrap()
        .is_empty());
    assert_eq!(
        fx.collections
            .lookup(&mut tx, coll, "title", &final_key)
            .unwrap(),
        vec![id]
    );
    assert_eq!(tx.get::<Good>(id).unwrap().title, "final");
    tx.commit().unwrap();
}

#[test]
fn remove_cleans_indexes_and_object() {
    let fx = fixture();
    let mut tx = fx.objects.begin();
    let coll = fx
        .collections
        .create_collection(&mut tx, fx.partition, "goods")
        .unwrap();
    fx.collections
        .add_index(&mut tx, coll, "title", "by_title", IndexKind::Sorted)
        .unwrap();
    let id = fx
        .collections
        .insert(&mut tx, coll, good("deleteme", "v", 1))
        .unwrap();
    fx.collections.remove(&mut tx, coll, id).unwrap();

    assert_eq!(fx.collections.len(&mut tx, coll).unwrap(), 0);
    let key = IndexKey::new().str("deleteme").into_bytes();
    assert!(fx
        .collections
        .lookup(&mut tx, coll, "title", &key)
        .unwrap()
        .is_empty());
    assert!(tx.get::<Good>(id).is_err());
    // Removing again reports not-found.
    assert!(fx.collections.remove(&mut tx, coll, id).is_err());
    tx.commit().unwrap();
}

#[test]
fn add_index_builds_over_existing_members() {
    let fx = fixture();
    let mut tx = fx.objects.begin();
    let coll = fx
        .collections
        .create_collection(&mut tx, fx.partition, "goods")
        .unwrap();
    for i in 0..30 {
        fx.collections
            .insert(&mut tx, coll, good(&format!("g{i:02}"), "v", i))
            .unwrap();
    }
    // Index added after the fact must cover everything.
    fx.collections
        .add_index(&mut tx, coll, "title", "by_title", IndexKind::Sorted)
        .unwrap();
    let key = IndexKey::new().str("g15").into_bytes();
    assert_eq!(
        fx.collections
            .lookup(&mut tx, coll, "title", &key)
            .unwrap()
            .len(),
        1
    );
    // Duplicate index name rejected.
    assert!(fx
        .collections
        .add_index(&mut tx, coll, "title", "by_title", IndexKind::Sorted)
        .is_err());
    tx.commit().unwrap();
}

#[test]
fn drop_index_then_lookup_fails() {
    let fx = fixture();
    let mut tx = fx.objects.begin();
    let coll = fx
        .collections
        .create_collection(&mut tx, fx.partition, "goods")
        .unwrap();
    fx.collections
        .add_index(&mut tx, coll, "title", "by_title", IndexKind::Sorted)
        .unwrap();
    fx.collections
        .insert(&mut tx, coll, good("x", "v", 1))
        .unwrap();
    assert_eq!(
        fx.collections.index_names(&mut tx, coll).unwrap(),
        vec!["title"]
    );
    fx.collections.drop_index(&mut tx, coll, "title").unwrap();
    assert!(fx
        .collections
        .index_names(&mut tx, coll)
        .unwrap()
        .is_empty());
    let key = IndexKey::new().str("x").into_bytes();
    assert!(fx.collections.lookup(&mut tx, coll, "title", &key).is_err());
    // Members are unaffected.
    assert_eq!(fx.collections.len(&mut tx, coll).unwrap(), 1);
    tx.commit().unwrap();
}

#[test]
fn partial_extractors_skip_objects() {
    let fx = fixture();
    let mut tx = fx.objects.begin();
    let coll = fx
        .collections
        .create_collection(&mut tx, fx.partition, "goods")
        .unwrap();
    fx.collections
        .add_index(&mut tx, coll, "paid", "by_paid_title", IndexKind::Sorted)
        .unwrap();
    let free = fx
        .collections
        .insert(&mut tx, coll, good("freebie", "v", 0))
        .unwrap();
    let paid = fx
        .collections
        .insert(&mut tx, coll, good("premium", "v", 999))
        .unwrap();

    let all = fx
        .collections
        .range(&mut tx, coll, "paid", None, None)
        .unwrap();
    assert_eq!(all, vec![paid], "unpaid goods are not indexed");

    // Updating the free good to paid adds it to the index.
    fx.collections
        .update(&mut tx, coll, free, good("freebie", "v", 100))
        .unwrap();
    let all = fx
        .collections
        .range(&mut tx, coll, "paid", None, None)
        .unwrap();
    assert_eq!(all.len(), 2);
    tx.commit().unwrap();
}

#[test]
fn collections_persist_across_sessions() {
    let fx = fixture();
    let coll = {
        let mut tx = fx.objects.begin();
        let coll = fx
            .collections
            .create_collection(&mut tx, fx.partition, "durable")
            .unwrap();
        fx.collections
            .add_index(&mut tx, coll, "title", "by_title", IndexKind::Sorted)
            .unwrap();
        fx.collections
            .insert(&mut tx, coll, good("persistent", "v", 5))
            .unwrap();
        tx.commit().unwrap();
        coll
    };
    // A fresh object store over the same chunks (cold cache, new session).
    let mut registry = TypeRegistry::new();
    register_builtin_types(&mut registry);
    registry.register(GOOD_TAG, unpickle_good);
    let fresh = ObjectStore::new(
        Arc::clone(fx.objects.chunks()),
        registry,
        ObjectStoreConfig::default(),
    );
    let mut extractors = ExtractorRegistry::new();
    extractors.register("by_title", by_title);
    let collections = CollectionStore::new(extractors);
    let mut tx = fresh.begin();
    assert_eq!(collections.len(&mut tx, coll).unwrap(), 1);
    let key = IndexKey::new().str("persistent").into_bytes();
    let hits = collections.lookup(&mut tx, coll, "title", &key).unwrap();
    assert_eq!(hits.len(), 1);
    let g = downcast::<Good>(tx.get_dyn(hits[0]).unwrap()).unwrap();
    assert_eq!(g.price_cents, 5);
    tx.abort();
}

#[test]
fn thirty_collections_with_indexes() {
    // The paper's benchmark "creates 30 collections for different object
    // types. Each collection has one to four indexes" (§9.5.1).
    let fx = fixture();
    let mut tx = fx.objects.begin();
    let mut colls = Vec::new();
    for i in 0..30 {
        let coll = fx
            .collections
            .create_collection(&mut tx, fx.partition, &format!("type-{i}"))
            .unwrap();
        let n_indexes = 1 + i % 4;
        for j in 0..n_indexes {
            let (name, extractor, kind) = match j {
                0 => ("title", "by_title", IndexKind::Sorted),
                1 => ("vendor", "by_vendor", IndexKind::Unsorted),
                2 => ("price", "by_price", IndexKind::Sorted),
                _ => ("paid", "by_paid_title", IndexKind::Sorted),
            };
            fx.collections
                .add_index(&mut tx, coll, name, extractor, kind)
                .unwrap();
        }
        colls.push(coll);
    }
    tx.commit().unwrap();

    let mut tx = fx.objects.begin();
    for (i, coll) in colls.iter().enumerate() {
        fx.collections
            .insert(&mut tx, *coll, good(&format!("g{i}"), "v", i as i64))
            .unwrap();
        assert_eq!(
            fx.collections.index_names(&mut tx, *coll).unwrap().len(),
            1 + i % 4
        );
    }
    tx.commit().unwrap();
}
