//! A 1999-era disk latency model (substitution for the paper's testbed).
//!
//! The paper's evaluation ran on physical disks whose flush latency (10–40
//! ms) dominated everything: Figure 12 attributes 81% of runtime to
//! untrusted-store writes and only 6% to cryptography. A modern NVMe device
//! (or a RAM-backed CI filesystem) hides that shape entirely, so the
//! benchmark harness wraps its stores in [`SimDiskStore`], which charges
//! each operation the time the paper's hardware would have taken:
//!
//! - untrusted store: 9 ms average seek + 4 ms rotational latency (7200
//!   rpm), ~4 MB/s transfer, and the observed NTFS behaviour that flushing
//!   files larger than 512 bytes costs double because metadata is written
//!   separately (§9.2.1);
//! - tamper-resistant store: 12 ms seek + 6 ms rotational (5200 rpm),
//!   comparable to 5 ms EEPROM writes.
//!
//! The model can either *sleep* (so wall-clock measurements reproduce the
//! paper's shape) or merely *account* virtual time into a [`SimClock`] (so
//! tests stay fast). Raw-mode benches run without the wrapper for honesty;
//! EXPERIMENTS.md reports both.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::stats::StoreStats;
use crate::trusted::TrustedStore;
use crate::untrusted::UntrustedStore;
use crate::Result;

/// Latency parameters for a simulated device.
#[derive(Debug, Clone, Copy)]
pub struct DiskModel {
    /// Average seek time charged per random access.
    pub seek: Duration,
    /// Average rotational latency charged per access.
    pub rotational: Duration,
    /// Sustained transfer bandwidth in bytes per second.
    pub bandwidth: u64,
    /// Latency charged per flush (the dominant cost of a commit).
    pub flush: Duration,
    /// Charge `flush` twice when more than this many bytes were written
    /// since the previous flush (models the paper's observation that NTFS
    /// doubles flush latency past 512 bytes by writing metadata separately).
    pub flush_doubling_threshold: Option<u64>,
}

impl DiskModel {
    /// The untrusted store of §9.1: 9 ms seek, 7200 rpm, ~4 MB/s.
    pub fn untrusted_1999() -> Self {
        DiskModel {
            seek: Duration::from_millis(9),
            rotational: Duration::from_millis(4),
            bandwidth: 4 * 1024 * 1024,
            flush: Duration::from_millis(13),
            flush_doubling_threshold: Some(512),
        }
    }

    /// The tamper-resistant store emulation of §9.1: 12 ms seek, 5200 rpm.
    pub fn trusted_1999() -> Self {
        DiskModel {
            seek: Duration::from_millis(12),
            rotational: Duration::from_millis(6),
            bandwidth: 3 * 1024 * 1024,
            flush: Duration::ZERO,
            flush_doubling_threshold: None,
        }
    }

    /// Time to transfer `bytes` at the modeled bandwidth.
    fn transfer(&self, bytes: usize) -> Duration {
        if self.bandwidth == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((bytes as u64).saturating_mul(1_000_000_000) / self.bandwidth)
    }

    /// Positioning cost (seek + rotational) of one random access.
    fn position(&self) -> Duration {
        self.seek + self.rotational
    }
}

/// Accumulated virtual time for one or more simulated devices.
#[derive(Debug, Default)]
pub struct SimClock {
    virtual_ns: AtomicU64,
    /// When true, the model also sleeps so wall-clock time includes it.
    sleep: std::sync::atomic::AtomicBool,
}

impl SimClock {
    /// Creates a clock; `sleep` selects real-sleep mode.
    pub fn new(sleep: bool) -> Self {
        let c = SimClock::default();
        c.sleep.store(sleep, Ordering::Relaxed);
        c
    }

    /// Charges `d` of device time.
    pub fn charge(&self, d: Duration) {
        self.virtual_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        if self.sleep.load(Ordering::Relaxed) && !d.is_zero() {
            std::thread::sleep(d);
        }
    }

    /// Total virtual time charged so far.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.virtual_ns.load(Ordering::Relaxed))
    }

    /// Resets the accumulated virtual time.
    pub fn reset(&self) {
        self.virtual_ns.store(0, Ordering::Relaxed);
    }
}

/// An [`UntrustedStore`] (and [`TrustedStore`]) wrapper charging modeled
/// device latency for each operation.
pub struct SimDiskStore<S: ?Sized> {
    inner: Arc<S>,
    model: DiskModel,
    clock: Arc<SimClock>,
    /// Device head position after the previous access; sequential accesses
    /// skip the positioning charge (the log-structured write pattern the
    /// paper relies on makes commits mostly sequential).
    head: AtomicU64,
    /// Bytes written since the last flush, for the doubling rule.
    unflushed: AtomicU64,
}

impl<S: ?Sized> SimDiskStore<S> {
    /// Wraps `inner` with latency `model`, charging time to `clock`.
    pub fn new(inner: Arc<S>, model: DiskModel, clock: Arc<SimClock>) -> Self {
        SimDiskStore {
            inner,
            model,
            clock,
            // Start the head "elsewhere" so the very first access pays the
            // positioning cost, as it would on real hardware.
            head: AtomicU64::new(u64::MAX),
            unflushed: AtomicU64::new(0),
        }
    }

    /// The shared clock (for reading accumulated virtual time).
    pub fn clock(&self) -> Arc<SimClock> {
        Arc::clone(&self.clock)
    }

    fn charge_access(&self, offset: u64, bytes: usize) {
        let prev = self.head.swap(offset + bytes as u64, Ordering::Relaxed);
        let mut cost = self.model.transfer(bytes);
        if prev != offset {
            cost += self.model.position();
        }
        self.clock.charge(cost);
    }
}

impl<S: UntrustedStore + ?Sized> UntrustedStore for SimDiskStore<S> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.charge_access(offset, buf.len());
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.charge_access(offset, data.len());
        self.unflushed
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.inner.write_at(offset, data)
    }

    fn flush(&self) -> Result<()> {
        let unflushed = self.unflushed.swap(0, Ordering::Relaxed);
        let mut cost = self.model.flush;
        if let Some(threshold) = self.model.flush_doubling_threshold {
            if unflushed > threshold {
                cost += self.model.flush;
            }
        }
        self.clock.charge(cost);
        self.inner.flush()
    }

    fn len(&self) -> Result<u64> {
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.inner.set_len(len)
    }

    fn stats(&self) -> Arc<StoreStats> {
        self.inner.stats()
    }
}

impl<S: TrustedStore + ?Sized> TrustedStore for SimDiskStore<S> {
    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn read(&self) -> Result<Vec<u8>> {
        self.clock.charge(self.model.position());
        self.inner.read()
    }

    fn write(&self, data: &[u8]) -> Result<()> {
        self.clock
            .charge(self.model.position() + self.model.transfer(data.len()));
        self.inner.write(data)
    }

    fn stats(&self) -> Arc<StoreStats> {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trusted::MemTrustedStore;
    use crate::untrusted::MemStore;

    fn model_10ms() -> DiskModel {
        DiskModel {
            seek: Duration::from_millis(6),
            rotational: Duration::from_millis(4),
            bandwidth: 1024 * 1024,
            flush: Duration::from_millis(20),
            flush_doubling_threshold: Some(512),
        }
    }

    #[test]
    fn charges_positioning_for_random_access_only() {
        let clock = Arc::new(SimClock::new(false));
        let sim = SimDiskStore::new(Arc::new(MemStore::new()), model_10ms(), Arc::clone(&clock));
        sim.write_at(0, &[0u8; 100]).unwrap();
        let after_first = clock.elapsed();
        assert!(after_first >= Duration::from_millis(10), "{after_first:?}");

        // Sequential write: no positioning charge, only transfer.
        clock.reset();
        sim.write_at(100, &[0u8; 100]).unwrap();
        assert!(clock.elapsed() < Duration::from_millis(1));

        // Random write again pays positioning.
        clock.reset();
        sim.write_at(0, &[0u8; 10]).unwrap();
        assert!(clock.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn flush_doubles_past_threshold() {
        let clock = Arc::new(SimClock::new(false));
        let sim = SimDiskStore::new(Arc::new(MemStore::new()), model_10ms(), Arc::clone(&clock));

        sim.write_at(0, &[0u8; 100]).unwrap();
        clock.reset();
        sim.flush().unwrap();
        assert_eq!(clock.elapsed(), Duration::from_millis(20));

        sim.write_at(0, &[0u8; 1000]).unwrap();
        clock.reset();
        sim.flush().unwrap();
        assert_eq!(clock.elapsed(), Duration::from_millis(40));

        // Unflushed counter resets after each flush.
        clock.reset();
        sim.flush().unwrap();
        assert_eq!(clock.elapsed(), Duration::from_millis(20));
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let m = model_10ms();
        assert_eq!(m.transfer(1024 * 1024), Duration::from_secs(1));
        assert_eq!(m.transfer(0), Duration::ZERO);
    }

    #[test]
    fn trusted_store_wrapper_charges_time() {
        let clock = Arc::new(SimClock::new(false));
        let sim = SimDiskStore::new(
            Arc::new(MemTrustedStore::new(16)),
            DiskModel::trusted_1999(),
            Arc::clone(&clock),
        );
        sim.write(b"counter!").unwrap();
        assert!(clock.elapsed() >= Duration::from_millis(18));
        assert_eq!(sim.read().unwrap(), b"counter!");
        assert_eq!(sim.capacity(), 16);
    }

    #[test]
    fn paper_models_have_expected_magnitudes() {
        let u = DiskModel::untrusted_1999();
        assert_eq!(u.position(), Duration::from_millis(13));
        let t = DiskModel::trusted_1999();
        assert_eq!(t.position(), Duration::from_millis(18));
    }

    #[test]
    fn data_still_round_trips_through_wrapper() {
        let clock = Arc::new(SimClock::new(false));
        let sim = SimDiskStore::new(
            Arc::new(MemStore::new()),
            DiskModel::untrusted_1999(),
            clock,
        );
        sim.write_at(5, b"payload").unwrap();
        let mut buf = [0u8; 7];
        sim.read_at(5, &mut buf).unwrap();
        assert_eq!(&buf, b"payload");
        assert_eq!(sim.len().unwrap(), 12);
    }
}
