//! The archival store (§2.1): stream-oriented, untrusted storage used by the
//! backup store to survive failures of the untrusted store.
//!
//! "It need not provide efficient random access to data, only input and
//! output streams. It might be a tape or an ftp server. We assume its
//! failures are independent of the untrusted store."

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{Result, StoreError};

/// A named-stream archival store.
pub trait ArchivalStore: Send + Sync {
    /// Opens an output stream named `name`, replacing any existing object of
    /// that name once the stream is finished.
    fn create(&self, name: &str) -> Result<Box<dyn ArchiveWriter>>;

    /// Opens an input stream over the object named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] for unknown names.
    fn open(&self, name: &str) -> Result<Box<dyn Read + Send>>;

    /// Names of the stored objects, sorted.
    fn list(&self) -> Result<Vec<String>>;

    /// Deletes the object named `name` (no-op if absent).
    fn delete(&self, name: &str) -> Result<()>;
}

/// An archival output stream. The object becomes visible only on
/// [`ArchiveWriter::finish`]; dropping the writer without finishing discards
/// the partial stream (a half-written tape is not a backup).
pub trait ArchiveWriter: Write + Send {
    /// Commits the stream as a complete archival object.
    fn finish(self: Box<Self>) -> Result<()>;
}

/// An in-memory archival store for tests and benchmarks.
#[derive(Default)]
pub struct MemArchive {
    objects: Arc<Mutex<BTreeMap<String, Arc<Vec<u8>>>>>,
}

impl MemArchive {
    /// Creates an empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes across all stored objects (for backup-size experiments).
    pub fn total_size(&self) -> usize {
        self.objects.lock().values().map(|v| v.len()).sum()
    }

    /// Size of one object in bytes.
    pub fn size_of(&self, name: &str) -> Option<usize> {
        self.objects.lock().get(name).map(|v| v.len())
    }

    /// Flips one byte of a stored object — the tamper-injection hook used by
    /// backup-validation tests.
    pub fn tamper(&self, name: &str, offset: usize, mask: u8) -> bool {
        let mut objects = self.objects.lock();
        if let Some(obj) = objects.get_mut(name) {
            let mut data = obj.as_ref().clone();
            if offset < data.len() {
                data[offset] ^= mask;
                *obj = Arc::new(data);
                return true;
            }
        }
        false
    }

    /// Truncates a stored object to `len` bytes (simulating a torn stream).
    pub fn truncate(&self, name: &str, len: usize) -> bool {
        let mut objects = self.objects.lock();
        if let Some(obj) = objects.get_mut(name) {
            let mut data = obj.as_ref().clone();
            data.truncate(len);
            *obj = Arc::new(data);
            return true;
        }
        false
    }
}

struct MemArchiveWriter {
    name: String,
    buf: Vec<u8>,
    objects: Arc<Mutex<BTreeMap<String, Arc<Vec<u8>>>>>,
}

impl Write for MemArchiveWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl ArchiveWriter for MemArchiveWriter {
    fn finish(self: Box<Self>) -> Result<()> {
        self.objects
            .lock()
            .insert(self.name.clone(), Arc::new(self.buf));
        Ok(())
    }
}

impl ArchivalStore for MemArchive {
    fn create(&self, name: &str) -> Result<Box<dyn ArchiveWriter>> {
        Ok(Box::new(MemArchiveWriter {
            name: name.to_string(),
            buf: Vec::new(),
            objects: Arc::clone(&self.objects),
        }))
    }

    fn open(&self, name: &str) -> Result<Box<dyn Read + Send>> {
        let objects = self.objects.lock();
        let data = objects
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(name.to_string()))?;
        Ok(Box::new(ArcReader { data, pos: 0 }))
    }

    fn list(&self) -> Result<Vec<String>> {
        Ok(self.objects.lock().keys().cloned().collect())
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.objects.lock().remove(name);
        Ok(())
    }
}

/// Reads out of a shared immutable buffer.
struct ArcReader {
    data: Arc<Vec<u8>>,
    pos: usize,
}

impl Read for ArcReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = &self.data[self.pos..];
        let n = remaining.len().min(buf.len());
        buf[..n].copy_from_slice(&remaining[..n]);
        self.pos += n;
        Ok(n)
    }
}

/// A directory-of-files archival store.
///
/// Streams are written to a `.partial` temp name and renamed into place on
/// [`ArchiveWriter::finish`], so a crash mid-backup never leaves a
/// plausible-looking truncated archive.
pub struct DirArchive {
    dir: PathBuf,
}

impl DirArchive {
    /// Opens (creating if needed) the directory at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(dir: PathBuf) -> Result<Self> {
        std::fs::create_dir_all(&dir)?;
        Ok(DirArchive { dir })
    }

    fn path_of(&self, name: &str) -> PathBuf {
        // Archive names are backup-set identifiers generated by the backup
        // store; reject path traversal defensively anyway.
        let safe: String = name
            .chars()
            .map(|c| {
                if c.is_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.dir.join(safe)
    }
}

struct DirArchiveWriter {
    writer: BufWriter<File>,
    partial: PathBuf,
    target: PathBuf,
}

impl Write for DirArchiveWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.writer.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }
}

impl ArchiveWriter for DirArchiveWriter {
    fn finish(mut self: Box<Self>) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        std::fs::rename(&self.partial, &self.target)?;
        Ok(())
    }
}

impl ArchivalStore for DirArchive {
    fn create(&self, name: &str) -> Result<Box<dyn ArchiveWriter>> {
        let target = self.path_of(name);
        let mut partial = target.clone().into_os_string();
        partial.push(".partial");
        let partial = PathBuf::from(partial);
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&partial)?;
        Ok(Box::new(DirArchiveWriter {
            writer: BufWriter::new(file),
            partial,
            target,
        }))
    }

    fn open(&self, name: &str) -> Result<Box<dyn Read + Send>> {
        let path = self.path_of(name);
        let file = File::open(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::NotFound(name.to_string())
            } else {
                StoreError::Io(e)
            }
        })?;
        Ok(Box::new(BufReader::new(file)))
    }

    fn list(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.ends_with(".partial") {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    }

    fn delete(&self, name: &str) -> Result<()> {
        let path = self.path_of(name);
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(archive: &dyn ArchivalStore) {
        assert!(archive.list().unwrap().is_empty());

        let mut w = archive.create("backup-1").unwrap();
        w.write_all(b"hello ").unwrap();
        w.write_all(b"archive").unwrap();
        w.finish().unwrap();

        assert_eq!(archive.list().unwrap(), vec!["backup-1".to_string()]);

        let mut r = archive.open("backup-1").unwrap();
        let mut data = String::new();
        r.read_to_string(&mut data).unwrap();
        assert_eq!(data, "hello archive");

        assert!(matches!(
            archive.open("missing"),
            Err(StoreError::NotFound(_))
        ));

        // An unfinished stream must not become visible.
        {
            let mut w = archive.create("backup-2").unwrap();
            w.write_all(b"partial").unwrap();
            // Dropped without finish().
        }
        assert_eq!(archive.list().unwrap(), vec!["backup-1".to_string()]);

        archive.delete("backup-1").unwrap();
        archive.delete("never-existed").unwrap();
        assert!(archive.list().unwrap().is_empty());
    }

    #[test]
    fn mem_archive_semantics() {
        exercise(&MemArchive::new());
    }

    #[test]
    fn dir_archive_semantics() {
        let dir = std::env::temp_dir().join(format!("tdb-archive-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        exercise(&DirArchive::open(dir.clone()).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_archive_tamper_and_truncate() {
        let a = MemArchive::new();
        let mut w = a.create("obj").unwrap();
        w.write_all(&[1, 2, 3, 4]).unwrap();
        w.finish().unwrap();
        assert_eq!(a.size_of("obj"), Some(4));
        assert!(a.tamper("obj", 2, 0xFF));
        assert!(!a.tamper("obj", 99, 0xFF));
        let mut r = a.open("obj").unwrap();
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, vec![1, 2, 3 ^ 0xFF, 4]);
        assert!(a.truncate("obj", 2));
        assert_eq!(a.size_of("obj"), Some(2));
        assert_eq!(a.total_size(), 2);
    }

    #[test]
    fn dir_archive_sanitizes_names() {
        let dir = std::env::temp_dir().join(format!("tdb-archive2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = DirArchive::open(dir.clone()).unwrap();
        let mut w = a.create("../evil").unwrap();
        w.write_all(b"x").unwrap();
        w.finish().unwrap();
        // The object is stored inside the directory, not outside it.
        assert_eq!(a.list().unwrap().len(), 1);
        assert!(!dir.parent().unwrap().join("evil").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
