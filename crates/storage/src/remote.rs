//! Remote untrusted storage and write batching (paper §10).
//!
//! "TDB may be used to protect a database stored at an untrusted server.
//! This application of TDB may benefit from additional optimizations for
//! reducing network round-trips to the untrusted server, such as batching
//! reads and writes."
//!
//! [`RemoteStore`] simulates a network-attached untrusted store: every
//! operation pays a round-trip latency (virtual or real, via [`SimClock`]).
//! [`BatchingStore`] implements the suggested optimization: writes coalesce
//! in a client-side buffer and ship as one round trip at flush (adjacent
//! writes are merged); reads are served from the buffer when possible.
//! The `remote_batching` ablation bench quantifies the win.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::simdisk::SimClock;
use crate::stats::StoreStats;
use crate::untrusted::UntrustedStore;
use crate::{Result, StoreError};

/// A latency wrapper charging one round trip per store operation.
///
/// Transport failures can be injected with [`RemoteStore::drop_connections`]:
/// the next `n` round trips fail with a `ConnectionReset` I/O error, the
/// canonical "network blinked" fault. Such errors classify as transient
/// through [`StoreError::is_transient`] (and therefore as
/// `FaultClass::Transient` through the core crate's `fault_class`), so a
/// surrounding [`crate::RetryStore`] re-drives the operation instead of
/// surfacing a permanent failure for a transfer hiccup.
pub struct RemoteStore {
    inner: Arc<dyn UntrustedStore>,
    round_trip: Duration,
    clock: Arc<SimClock>,
    /// Round trips remaining that fail with a connection reset.
    drop_next: AtomicU64,
}

impl RemoteStore {
    /// Wraps `inner` behind a `round_trip` network latency, charged to
    /// `clock` (which may sleep or merely account).
    pub fn new(
        inner: Arc<dyn UntrustedStore>,
        round_trip: Duration,
        clock: Arc<SimClock>,
    ) -> RemoteStore {
        RemoteStore {
            inner,
            round_trip,
            clock,
            drop_next: AtomicU64::new(0),
        }
    }

    /// Makes the next `n` round trips fail with a `ConnectionReset` error
    /// (fault-injection hook; the latency is still charged, as a real
    /// client only learns of the reset after the round trip).
    pub fn drop_connections(&self, n: u64) {
        self.drop_next.store(n, Ordering::SeqCst);
    }

    /// Charges the round trip and injects a pending connection reset.
    fn round_trip(&self) -> Result<()> {
        self.clock.charge(self.round_trip);
        let mut remaining = self.drop_next.load(Ordering::SeqCst);
        while remaining > 0 {
            match self.drop_next.compare_exchange(
                remaining,
                remaining - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    return Err(StoreError::Io(std::io::Error::new(
                        std::io::ErrorKind::ConnectionReset,
                        "remote store connection reset",
                    )))
                }
                Err(actual) => remaining = actual,
            }
        }
        Ok(())
    }
}

impl UntrustedStore for RemoteStore {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.round_trip()?;
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.round_trip()?;
        self.inner.write_at(offset, data)
    }

    fn flush(&self) -> Result<()> {
        self.round_trip()?;
        self.inner.flush()
    }

    fn len(&self) -> Result<u64> {
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.round_trip()?;
        self.inner.set_len(len)
    }

    fn stats(&self) -> Arc<StoreStats> {
        self.inner.stats()
    }
}

/// Client-side write batching over a (remote) untrusted store.
///
/// Writes buffer locally and coalesce; [`UntrustedStore::flush`] ships the
/// batch as few round trips as possible (adjacent/overlapping extents are
/// merged) and then flushes the remote end. Reads check the buffer first,
/// so the log-structured append pattern of the chunk store — write, then
/// occasionally read back — stays correct.
pub struct BatchingStore {
    inner: Arc<dyn UntrustedStore>,
    /// Buffered extents keyed by offset; invariant: non-overlapping.
    pending: Mutex<BTreeMap<u64, Vec<u8>>>,
}

impl BatchingStore {
    /// Wraps `inner`.
    pub fn new(inner: Arc<dyn UntrustedStore>) -> BatchingStore {
        BatchingStore {
            inner,
            pending: Mutex::new(BTreeMap::new()),
        }
    }

    /// Number of buffered extents awaiting the next flush.
    pub fn pending_extents(&self) -> usize {
        self.pending.lock().len()
    }

    /// Merges `data` at `offset` into the pending extent map, keeping
    /// extents disjoint and coalescing adjacency.
    fn buffer_write(&self, offset: u64, data: &[u8]) {
        let mut pending = self.pending.lock();
        let mut start = offset;
        let mut bytes = data.to_vec();
        // Absorb any extent that overlaps or touches [start, end].
        loop {
            let end = start + bytes.len() as u64;
            // Candidate: the greatest extent starting at or before `end`.
            let candidate = pending
                .range(..=end)
                .next_back()
                .map(|(k, v)| (*k, v.len() as u64));
            match candidate {
                Some((k, klen)) if k + klen >= start => {
                    let existing = pending.remove(&k).expect("present");
                    let new_start = start.min(k);
                    let new_end = end.max(k + klen);
                    let mut merged = vec![0u8; (new_end - new_start) as usize];
                    merged[(k - new_start) as usize..(k - new_start) as usize + existing.len()]
                        .copy_from_slice(&existing);
                    // The new write wins where they overlap.
                    merged
                        [(start - new_start) as usize..(start - new_start) as usize + bytes.len()]
                        .copy_from_slice(&bytes);
                    start = new_start;
                    bytes = merged;
                }
                _ => break,
            }
        }
        pending.insert(start, bytes);
    }
}

impl UntrustedStore for BatchingStore {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        // Serve from the buffer where possible; fall back per-byte-range to
        // the remote store for anything not buffered.
        let pending = self.pending.lock();
        // Fast path: fully contained in one extent.
        if let Some((k, v)) = pending.range(..=offset).next_back() {
            let rel = (offset - k) as usize;
            if rel + buf.len() <= v.len() {
                buf.copy_from_slice(&v[rel..rel + buf.len()]);
                return Ok(());
            }
        }
        // Slow path: read the remote base, then overlay buffered extents.
        let overlays: Vec<(u64, Vec<u8>)> = pending
            .range(..offset + buf.len() as u64)
            .filter(|(k, v)| *k + v.len() as u64 > offset)
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        drop(pending);
        // The remote may be shorter than the requested range if the tail
        // only exists in the buffer; read what exists and zero-fill.
        let remote_len = self.inner.len()?;
        let end = (offset + buf.len() as u64).min(remote_len);
        buf.fill(0);
        if end > offset {
            self.inner
                .read_at(offset, &mut buf[..(end - offset) as usize])?;
        }
        for (k, v) in overlays {
            let from = k.max(offset);
            let to = (k + v.len() as u64).min(offset + buf.len() as u64);
            if from < to {
                buf[(from - offset) as usize..(to - offset) as usize]
                    .copy_from_slice(&v[(from - k) as usize..(to - k) as usize]);
            }
        }
        Ok(())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.buffer_write(offset, data);
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        let extents: Vec<(u64, Vec<u8>)> = {
            let mut pending = self.pending.lock();
            std::mem::take(&mut *pending).into_iter().collect()
        };
        for (offset, data) in extents {
            self.inner.write_at(offset, &data)?;
        }
        self.inner.flush()
    }

    fn len(&self) -> Result<u64> {
        let buffered_end = self
            .pending
            .lock()
            .iter()
            .next_back()
            .map(|(k, v)| k + v.len() as u64)
            .unwrap_or(0);
        Ok(self.inner.len()?.max(buffered_end))
    }

    fn set_len(&self, len: u64) -> Result<()> {
        let mut pending = self.pending.lock();
        pending.retain(|k, _| *k < len);
        // An extent straddling the new end must be truncated, or a later
        // flush would silently re-extend the store.
        if let Some((k, v)) = pending.iter_mut().next_back() {
            if k + v.len() as u64 > len {
                v.truncate((len - k) as usize);
            }
        }
        drop(pending);
        self.inner.set_len(len)
    }

    fn stats(&self) -> Arc<StoreStats> {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::untrusted::MemStore;

    #[test]
    fn remote_charges_round_trips() {
        let clock = Arc::new(SimClock::new(false));
        let remote = RemoteStore::new(
            Arc::new(MemStore::new()),
            Duration::from_millis(5),
            Arc::clone(&clock),
        );
        remote.write_at(0, b"x").unwrap();
        remote.write_at(1, b"y").unwrap();
        remote.flush().unwrap();
        assert_eq!(clock.elapsed(), Duration::from_millis(15));
    }

    #[test]
    fn transport_faults_classify_as_transient() {
        let clock = Arc::new(SimClock::new(false));
        let remote = RemoteStore::new(
            Arc::new(MemStore::new()),
            Duration::from_millis(1),
            Arc::clone(&clock),
        );
        remote.drop_connections(1);
        let err = remote.write_at(0, b"x").unwrap_err();
        assert!(
            err.is_transient(),
            "connection reset must be retryable: {err}"
        );
        // The fault is consumed; the retry succeeds.
        remote.write_at(0, b"x").unwrap();
    }

    #[test]
    fn retry_store_rides_through_transport_faults() {
        use crate::retry::{IoPolicy, NoDelay, RetryStore};
        let clock = Arc::new(SimClock::new(false));
        let mem = Arc::new(MemStore::new());
        let remote = Arc::new(RemoteStore::new(
            Arc::clone(&mem) as Arc<dyn UntrustedStore>,
            Duration::from_millis(1),
            Arc::clone(&clock),
        ));
        remote.drop_connections(2);
        let retries = Arc::new(AtomicU64::new(0));
        let observed = Arc::clone(&retries);
        let store = RetryStore::new(
            Arc::clone(&remote) as Arc<dyn UntrustedStore>,
            IoPolicy::retries(3).with_clock(Arc::new(NoDelay)),
        )
        .with_observer(Box::new(move |_attempt| {
            observed.fetch_add(1, Ordering::SeqCst);
        }));
        // Two resets, then success — all inside one logical write.
        store.write_at(0, b"payload").unwrap();
        assert_eq!(retries.load(Ordering::SeqCst), 2);
        let mut buf = [0u8; 7];
        mem.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"payload");
    }

    #[test]
    fn batching_coalesces_adjacent_writes() {
        let clock = Arc::new(SimClock::new(false));
        let mem = Arc::new(MemStore::new());
        let remote = Arc::new(RemoteStore::new(
            Arc::clone(&mem) as Arc<dyn UntrustedStore>,
            Duration::from_millis(5),
            Arc::clone(&clock),
        ));
        let batching = BatchingStore::new(remote);
        // 10 adjacent writes coalesce into one extent → 1 write RT + 1
        // flush RT instead of 11.
        for i in 0..10u64 {
            batching.write_at(i * 4, &[i as u8; 4]).unwrap();
        }
        assert_eq!(batching.pending_extents(), 1);
        batching.flush().unwrap();
        assert_eq!(clock.elapsed(), Duration::from_millis(10));
        let mut buf = [0u8; 40];
        mem.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf[36..], &[9, 9, 9, 9]);
    }

    #[test]
    fn batching_read_your_writes() {
        let batching = BatchingStore::new(Arc::new(MemStore::new()));
        batching.write_at(100, b"buffered tail").unwrap();
        let mut buf = [0u8; 13];
        batching.read_at(100, &mut buf).unwrap();
        assert_eq!(&buf, b"buffered tail");
        assert_eq!(batching.len().unwrap(), 113);
        // Partially buffered read overlays correctly.
        let mut wide = [0xFFu8; 20];
        batching.read_at(95, &mut wide).unwrap();
        assert_eq!(&wide[..5], &[0u8; 5]);
        assert_eq!(&wide[5..18], b"buffered tail");
    }

    #[test]
    fn batching_overlapping_writes_last_wins() {
        let mem = Arc::new(MemStore::new());
        let batching = BatchingStore::new(Arc::clone(&mem) as Arc<dyn UntrustedStore>);
        batching.write_at(0, &[1u8; 8]).unwrap();
        batching.write_at(4, &[2u8; 8]).unwrap();
        batching.write_at(2, &[3u8; 2]).unwrap();
        batching.flush().unwrap();
        let mut buf = [0u8; 12];
        mem.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [1, 1, 3, 3, 2, 2, 2, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn chunk_store_works_over_batching_remote() {
        // Exercises the store contract; the full end-to-end test lives in
        // tests/remote_batching.rs at the workspace root.
        let clock = Arc::new(SimClock::new(false));
        let mem = Arc::new(MemStore::new());
        let remote = Arc::new(RemoteStore::new(
            Arc::clone(&mem) as Arc<dyn UntrustedStore>,
            Duration::from_millis(1),
            Arc::clone(&clock),
        ));
        let _ = clock;
        let batching = Arc::new(BatchingStore::new(remote));
        batching.write_at(0, b"segment").unwrap();
        batching.flush().unwrap();
        let mut buf = [0u8; 7];
        batching.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"segment");
    }
}
