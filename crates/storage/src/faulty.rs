//! Fault-injection wrappers over the untrusted store.
//!
//! TDB's whole point is surviving an adversarial or failing untrusted store:
//! crashes must be recoverable (§4.8) and any tampering must be *detected*
//! (§4.1). These wrappers let tests simulate both without real hardware:
//!
//! - [`CrashStore`] buffers unflushed writes like a volatile disk cache. A
//!   simulated crash discards (all or a torn prefix of) the unflushed
//!   writes, producing the on-disk image a fail-stop power loss would leave.
//! - [`TamperStore`] passes everything through but exposes byte-level
//!   mutation hooks, playing the role of the paper's hostile host.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::stats::StoreStats;
use crate::untrusted::UntrustedStore;
use crate::{Result, StoreError};

/// One buffered (not yet durable) write.
#[derive(Clone)]
struct PendingWrite {
    offset: u64,
    data: Vec<u8>,
}

/// A write-back cache simulation for crash testing.
///
/// Writes are applied to the inner store immediately (so reads see them) but
/// are *also* journaled; [`CrashStore::crash`] reconstructs the image that
/// would exist had the machine lost power: everything up to the last flush,
/// plus an arbitrary prefix of the writes after it.
pub struct CrashStore {
    inner: Arc<dyn UntrustedStore>,
    /// Image as of the last flush.
    flushed_image: Mutex<Vec<u8>>,
    /// Writes since the last flush, in order.
    pending: Mutex<Vec<PendingWrite>>,
    /// When set, all operations fail — the "machine" is down.
    halted: AtomicBool,
    /// Total writes observed (used by tests to pick crash points).
    write_count: AtomicU64,
}

impl CrashStore {
    /// Wraps `inner`, capturing its current contents as the flushed image.
    pub fn new(inner: Arc<dyn UntrustedStore>) -> Result<Self> {
        let len = inner.len()?;
        let mut image = vec![0u8; len as usize];
        if len > 0 {
            inner.read_at(0, &mut image)?;
        }
        Ok(CrashStore {
            inner,
            flushed_image: Mutex::new(image),
            pending: Mutex::new(Vec::new()),
            halted: AtomicBool::new(false),
            write_count: AtomicU64::new(0),
        })
    }

    /// Number of `write_at` calls so far.
    pub fn write_count(&self) -> u64 {
        self.write_count.load(Ordering::Relaxed)
    }

    /// Simulates a fail-stop crash, keeping only the first
    /// `surviving_pending` of the unflushed writes (a torn tail). Returns
    /// the post-crash disk image; the store halts and rejects further use.
    pub fn crash(&self, surviving_pending: usize) -> Vec<u8> {
        self.halted.store(true, Ordering::SeqCst);
        let mut image = self.flushed_image.lock().clone();
        let pending = self.pending.lock();
        for w in pending.iter().take(surviving_pending) {
            let end = w.offset as usize + w.data.len();
            if end > image.len() {
                image.resize(end, 0);
            }
            image[w.offset as usize..end].copy_from_slice(&w.data);
        }
        image
    }

    /// Simulates a crash where every unflushed write is lost.
    pub fn crash_lose_all(&self) -> Vec<u8> {
        self.crash(0)
    }

    /// Simulates a crash where every pending write survived (the crash
    /// happened after the device wrote its cache but before an explicit
    /// flush returned).
    pub fn crash_keep_all(&self) -> Vec<u8> {
        self.crash(usize::MAX)
    }

    /// Number of writes currently pending (not yet flushed).
    pub fn pending_writes(&self) -> usize {
        self.pending.lock().len()
    }

    fn check_halted(&self) -> Result<()> {
        if self.halted.load(Ordering::SeqCst) {
            Err(StoreError::InjectedFault("store crashed"))
        } else {
            Ok(())
        }
    }
}

impl UntrustedStore for CrashStore {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_halted()?;
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.check_halted()?;
        self.write_count.fetch_add(1, Ordering::Relaxed);
        self.pending.lock().push(PendingWrite {
            offset,
            data: data.to_vec(),
        });
        self.inner.write_at(offset, data)
    }

    fn flush(&self) -> Result<()> {
        self.check_halted()?;
        self.inner.flush()?;
        // Promote the live image to "durable".
        let len = self.inner.len()?;
        let mut image = vec![0u8; len as usize];
        if len > 0 {
            self.inner.read_at(0, &mut image)?;
        }
        *self.flushed_image.lock() = image;
        self.pending.lock().clear();
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        self.check_halted()?;
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.check_halted()?;
        self.inner.set_len(len)
    }

    fn stats(&self) -> Arc<StoreStats> {
        self.inner.stats()
    }
}

/// A store that starts failing with I/O errors after a programmed number
/// of writes — the transient-fault injector used to verify that a
/// mid-commit storage failure poisons the engine instead of corrupting it.
pub struct ErrorStore {
    inner: Arc<dyn UntrustedStore>,
    /// Writes remaining before failures begin (u64::MAX = never).
    writes_until_failure: AtomicU64,
    /// When set, failures stop again (for recovery-after-transient tests).
    healed: AtomicBool,
}

impl ErrorStore {
    /// Wraps `inner`; healthy until [`ErrorStore::fail_after_writes`].
    pub fn new(inner: Arc<dyn UntrustedStore>) -> ErrorStore {
        ErrorStore {
            inner,
            writes_until_failure: AtomicU64::new(u64::MAX),
            healed: AtomicBool::new(false),
        }
    }

    /// Arms the injector: the next `n` writes succeed, then all writes and
    /// flushes fail until [`ErrorStore::heal`].
    pub fn fail_after_writes(&self, n: u64) {
        self.healed.store(false, Ordering::SeqCst);
        self.writes_until_failure.store(n, Ordering::SeqCst);
    }

    /// Stops injecting failures.
    pub fn heal(&self) {
        self.healed.store(true, Ordering::SeqCst);
    }

    fn check_write(&self) -> Result<()> {
        if self.healed.load(Ordering::SeqCst) {
            return Ok(());
        }
        let remaining = self.writes_until_failure.load(Ordering::SeqCst);
        if remaining == 0 {
            return Err(StoreError::InjectedFault("write failure"));
        }
        if remaining != u64::MAX {
            self.writes_until_failure.fetch_sub(1, Ordering::SeqCst);
        }
        Ok(())
    }
}

impl UntrustedStore for ErrorStore {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.check_write()?;
        self.inner.write_at(offset, data)
    }

    fn flush(&self) -> Result<()> {
        self.check_write()?;
        self.inner.flush()
    }

    fn len(&self) -> Result<u64> {
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.inner.set_len(len)
    }

    fn stats(&self) -> Arc<StoreStats> {
        self.inner.stats()
    }
}

/// A pass-through store with explicit tampering hooks, playing the paper's
/// untrusted host that "has the opportunity to alter its state for
/// unauthorized benefits" (§1).
pub struct TamperStore {
    inner: Arc<dyn UntrustedStore>,
    tamper_count: AtomicU64,
}

impl TamperStore {
    /// Wraps `inner`.
    pub fn new(inner: Arc<dyn UntrustedStore>) -> Self {
        TamperStore {
            inner,
            tamper_count: AtomicU64::new(0),
        }
    }

    /// XORs `mask` over the byte at `offset` (bypassing the trusted program,
    /// as an attacker with raw device access would).
    pub fn flip_byte(&self, offset: u64, mask: u8) -> Result<()> {
        let mut b = [0u8; 1];
        self.inner.read_at(offset, &mut b)?;
        b[0] ^= mask;
        self.inner.write_at(offset, &b)?;
        self.tamper_count.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Overwrites `len` bytes at `offset` with a copy of the bytes at
    /// `src_offset` — a splicing/replay primitive.
    pub fn splice(&self, src_offset: u64, offset: u64, len: usize) -> Result<()> {
        let mut buf = vec![0u8; len];
        self.inner.read_at(src_offset, &mut buf)?;
        self.inner.write_at(offset, &buf)?;
        self.tamper_count.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Reads raw bytes without any validation (the attacker's view).
    pub fn peek(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.inner.read_at(offset, &mut buf)?;
        Ok(buf)
    }

    /// Number of tampering actions performed.
    pub fn tamper_count(&self) -> u64 {
        self.tamper_count.load(Ordering::Relaxed)
    }
}

impl UntrustedStore for TamperStore {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.inner.write_at(offset, data)
    }

    fn flush(&self) -> Result<()> {
        self.inner.flush()
    }

    fn len(&self) -> Result<u64> {
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.inner.set_len(len)
    }

    fn stats(&self) -> Arc<StoreStats> {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::untrusted::MemStore;

    #[test]
    fn crash_loses_unflushed_writes() {
        let mem = Arc::new(MemStore::new());
        let cs = CrashStore::new(mem).unwrap();
        cs.write_at(0, b"durable").unwrap();
        cs.flush().unwrap();
        cs.write_at(0, b"ephemer").unwrap();
        assert_eq!(cs.pending_writes(), 1);

        // Reads see the latest write before the crash.
        let mut buf = [0u8; 7];
        cs.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"ephemer");

        let image = cs.crash_lose_all();
        assert_eq!(&image[..7], b"durable");

        // The store is halted after a crash.
        assert!(matches!(
            cs.read_at(0, &mut buf),
            Err(StoreError::InjectedFault(_))
        ));
    }

    #[test]
    fn torn_crash_keeps_prefix_of_pending() {
        let mem = Arc::new(MemStore::new());
        let cs = CrashStore::new(mem).unwrap();
        cs.write_at(0, b"AAAA").unwrap();
        cs.flush().unwrap();
        cs.write_at(0, b"BBBB").unwrap();
        cs.write_at(4, b"CCCC").unwrap();
        let image = cs.crash(1);
        assert_eq!(&image, b"BBBB");
    }

    #[test]
    fn crash_keep_all_includes_every_pending_write() {
        let mem = Arc::new(MemStore::new());
        let cs = CrashStore::new(mem).unwrap();
        cs.write_at(0, b"XX").unwrap();
        cs.write_at(2, b"YY").unwrap();
        let image = cs.crash_keep_all();
        assert_eq!(&image, b"XXYY");
    }

    #[test]
    fn crash_store_captures_preexisting_content() {
        let mem = Arc::new(MemStore::new());
        mem.write_at(0, b"old").unwrap();
        let cs = CrashStore::new(Arc::clone(&mem) as Arc<dyn UntrustedStore>).unwrap();
        cs.write_at(0, b"new").unwrap();
        assert_eq!(cs.crash_lose_all(), b"old");
    }

    #[test]
    fn tamper_store_flip_and_splice() {
        let mem = Arc::new(MemStore::new());
        let ts = TamperStore::new(mem);
        ts.write_at(0, &[1, 2, 3, 4, 5, 6]).unwrap();
        ts.flip_byte(1, 0xF0).unwrap();
        assert_eq!(ts.peek(0, 6).unwrap(), vec![1, 2 ^ 0xF0, 3, 4, 5, 6]);
        ts.splice(0, 4, 2).unwrap();
        assert_eq!(ts.peek(4, 2).unwrap(), vec![1, 2 ^ 0xF0]);
        assert_eq!(ts.tamper_count(), 2);
    }
}
