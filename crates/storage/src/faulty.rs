//! Fault-injection wrappers over the untrusted store.
//!
//! TDB's whole point is surviving an adversarial or failing untrusted store:
//! crashes must be recoverable (§4.8) and any tampering must be *detected*
//! (§4.1). These wrappers let tests simulate both without real hardware:
//!
//! - [`CrashStore`] buffers unflushed writes like a volatile disk cache. A
//!   simulated crash discards (all or a torn prefix of) the unflushed
//!   writes, producing the on-disk image a fail-stop power loss would leave.
//! - [`ErrorStore`] starts failing reads or writes after a programmed
//!   count — the simplest transient-fault injector.
//! - [`PlannedFaultStore`] injects a seeded [`FaultPlan`]: read errors,
//!   write errors, torn sub-writes, dropped flushes, and transient windows
//!   at exact operation indices, so torture tests can sweep every fault
//!   point deterministically.
//! - [`FaultyTrustedStore`] injects write failures into the
//!   tamper-resistant register, exercising the §4.6 requirement that a
//!   commit whose counter bump failed is never acknowledged.
//! - [`TamperStore`] passes everything through but exposes byte-level
//!   mutation hooks, playing the role of the paper's hostile host.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::stats::StoreStats;
use crate::trusted::TrustedStore;
use crate::untrusted::UntrustedStore;
use crate::{Result, StoreError};

/// One buffered (not yet durable) write.
#[derive(Clone)]
struct PendingWrite {
    offset: u64,
    data: Vec<u8>,
}

/// A write-back cache simulation for crash testing.
///
/// Writes are applied to the inner store immediately (so reads see them) but
/// are *also* journaled; [`CrashStore::crash`] reconstructs the image that
/// would exist had the machine lost power: everything up to the last flush,
/// plus an arbitrary prefix of the writes after it.
pub struct CrashStore {
    inner: Arc<dyn UntrustedStore>,
    /// Image as of the last flush.
    flushed_image: Mutex<Vec<u8>>,
    /// Writes since the last flush, in order.
    pending: Mutex<Vec<PendingWrite>>,
    /// When set, all operations fail — the "machine" is down.
    halted: AtomicBool,
    /// Total writes observed (used by tests to pick crash points).
    write_count: AtomicU64,
}

impl CrashStore {
    /// Wraps `inner`, capturing its current contents as the flushed image.
    pub fn new(inner: Arc<dyn UntrustedStore>) -> Result<Self> {
        let len = inner.len()?;
        let mut image = vec![0u8; len as usize];
        if len > 0 {
            inner.read_at(0, &mut image)?;
        }
        Ok(CrashStore {
            inner,
            flushed_image: Mutex::new(image),
            pending: Mutex::new(Vec::new()),
            halted: AtomicBool::new(false),
            write_count: AtomicU64::new(0),
        })
    }

    /// Number of `write_at` calls so far.
    pub fn write_count(&self) -> u64 {
        self.write_count.load(Ordering::Relaxed)
    }

    /// Simulates a fail-stop crash, keeping only the first
    /// `surviving_pending` of the unflushed writes (a torn tail). Returns
    /// the post-crash disk image; the store halts and rejects further use.
    pub fn crash(&self, surviving_pending: usize) -> Vec<u8> {
        self.halted.store(true, Ordering::SeqCst);
        let mut image = self.flushed_image.lock().clone();
        let pending = self.pending.lock();
        for w in pending.iter().take(surviving_pending) {
            let end = w.offset as usize + w.data.len();
            if end > image.len() {
                image.resize(end, 0);
            }
            image[w.offset as usize..end].copy_from_slice(&w.data);
        }
        image
    }

    /// Simulates a crash where every unflushed write is lost.
    pub fn crash_lose_all(&self) -> Vec<u8> {
        self.crash(0)
    }

    /// Simulates a crash that tears *within* a single pending write: the
    /// first `complete` unflushed writes survive whole, then only the first
    /// `split_byte` bytes of the next one reach the platter (disks do not
    /// promise multi-sector atomicity). Returns the post-crash image; the
    /// store halts.
    pub fn crash_torn(&self, complete: usize, split_byte: usize) -> Vec<u8> {
        let mut image = self.crash(complete);
        let pending = self.pending.lock();
        if let Some(w) = pending.get(complete) {
            let keep = split_byte.min(w.data.len());
            let end = w.offset as usize + keep;
            if end > image.len() {
                image.resize(end, 0);
            }
            image[w.offset as usize..end].copy_from_slice(&w.data[..keep]);
        }
        image
    }

    /// Simulates a crash where every pending write survived (the crash
    /// happened after the device wrote its cache but before an explicit
    /// flush returned).
    pub fn crash_keep_all(&self) -> Vec<u8> {
        self.crash(usize::MAX)
    }

    /// Number of writes currently pending (not yet flushed).
    pub fn pending_writes(&self) -> usize {
        self.pending.lock().len()
    }

    fn check_halted(&self) -> Result<()> {
        if self.halted.load(Ordering::SeqCst) {
            Err(StoreError::InjectedFault("store crashed"))
        } else {
            Ok(())
        }
    }
}

impl UntrustedStore for CrashStore {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_halted()?;
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.check_halted()?;
        self.write_count.fetch_add(1, Ordering::Relaxed);
        self.pending.lock().push(PendingWrite {
            offset,
            data: data.to_vec(),
        });
        self.inner.write_at(offset, data)
    }

    fn flush(&self) -> Result<()> {
        self.check_halted()?;
        self.inner.flush()?;
        // Promote the live image to "durable".
        let len = self.inner.len()?;
        let mut image = vec![0u8; len as usize];
        if len > 0 {
            self.inner.read_at(0, &mut image)?;
        }
        *self.flushed_image.lock() = image;
        self.pending.lock().clear();
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        self.check_halted()?;
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.check_halted()?;
        self.inner.set_len(len)
    }

    fn stats(&self) -> Arc<StoreStats> {
        self.inner.stats()
    }
}

/// A store that starts failing with I/O errors after a programmed number
/// of reads or writes — the simplest injector for verifying that a
/// mid-commit storage failure degrades the engine instead of corrupting it.
pub struct ErrorStore {
    inner: Arc<dyn UntrustedStore>,
    /// Writes remaining before failures begin (u64::MAX = never).
    writes_until_failure: AtomicU64,
    /// Reads remaining before failures begin (u64::MAX = never).
    reads_until_failure: AtomicU64,
    /// When set, failures stop again (for recovery-after-transient tests).
    healed: AtomicBool,
}

impl ErrorStore {
    /// Wraps `inner`; healthy until [`ErrorStore::fail_after_writes`] or
    /// [`ErrorStore::fail_after_reads`].
    pub fn new(inner: Arc<dyn UntrustedStore>) -> ErrorStore {
        ErrorStore {
            inner,
            writes_until_failure: AtomicU64::new(u64::MAX),
            reads_until_failure: AtomicU64::new(u64::MAX),
            healed: AtomicBool::new(false),
        }
    }

    /// Arms the injector: the next `n` writes succeed, then all writes and
    /// flushes fail until [`ErrorStore::heal`].
    pub fn fail_after_writes(&self, n: u64) {
        self.healed.store(false, Ordering::SeqCst);
        self.writes_until_failure.store(n, Ordering::SeqCst);
    }

    /// Arms the read-path injector: the next `n` reads succeed, then all
    /// reads fail until [`ErrorStore::heal`].
    pub fn fail_after_reads(&self, n: u64) {
        self.healed.store(false, Ordering::SeqCst);
        self.reads_until_failure.store(n, Ordering::SeqCst);
    }

    /// Stops injecting failures.
    pub fn heal(&self) {
        self.healed.store(true, Ordering::SeqCst);
    }

    fn check_write(&self) -> Result<()> {
        if self.healed.load(Ordering::SeqCst) {
            return Ok(());
        }
        if countdown(&self.writes_until_failure) {
            return Err(StoreError::InjectedFault("write failure"));
        }
        Ok(())
    }

    fn check_read(&self) -> Result<()> {
        if self.healed.load(Ordering::SeqCst) {
            return Ok(());
        }
        if countdown(&self.reads_until_failure) {
            return Err(StoreError::InjectedFault("read failure"));
        }
        Ok(())
    }
}

/// Atomically steps a fault countdown; returns `true` when the counter
/// has expired and the operation must fail. `u64::MAX` means "never
/// fail". A single `fetch_update` (rather than load-check-decrement)
/// keeps the countdown exact when many threads hit the store at once —
/// two threads seeing `1` must not both decrement and wrap past zero.
fn countdown(counter: &AtomicU64) -> bool {
    counter
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| match n {
            0 | u64::MAX => None,
            n => Some(n - 1),
        })
        .is_err_and(|n| n == 0)
}

impl UntrustedStore for ErrorStore {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_read()?;
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.check_write()?;
        self.inner.write_at(offset, data)
    }

    fn flush(&self) -> Result<()> {
        self.check_write()?;
        self.inner.flush()
    }

    fn len(&self) -> Result<u64> {
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.inner.set_len(len)
    }

    fn stats(&self) -> Arc<StoreStats> {
        self.inner.stats()
    }
}

/// A pass-through store with explicit tampering hooks, playing the paper's
/// untrusted host that "has the opportunity to alter its state for
/// unauthorized benefits" (§1).
pub struct TamperStore {
    inner: Arc<dyn UntrustedStore>,
    tamper_count: AtomicU64,
}

impl TamperStore {
    /// Wraps `inner`.
    pub fn new(inner: Arc<dyn UntrustedStore>) -> Self {
        TamperStore {
            inner,
            tamper_count: AtomicU64::new(0),
        }
    }

    /// XORs `mask` over the byte at `offset` (bypassing the trusted program,
    /// as an attacker with raw device access would).
    pub fn flip_byte(&self, offset: u64, mask: u8) -> Result<()> {
        let mut b = [0u8; 1];
        self.inner.read_at(offset, &mut b)?;
        b[0] ^= mask;
        self.inner.write_at(offset, &b)?;
        self.tamper_count.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Overwrites `len` bytes at `offset` with a copy of the bytes at
    /// `src_offset` — a splicing/replay primitive.
    pub fn splice(&self, src_offset: u64, offset: u64, len: usize) -> Result<()> {
        let mut buf = vec![0u8; len];
        self.inner.read_at(src_offset, &mut buf)?;
        self.inner.write_at(offset, &buf)?;
        self.tamper_count.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Reads raw bytes without any validation (the attacker's view).
    pub fn peek(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.inner.read_at(offset, &mut buf)?;
        Ok(buf)
    }

    /// Number of tampering actions performed.
    pub fn tamper_count(&self) -> u64 {
        self.tamper_count.load(Ordering::Relaxed)
    }
}

impl UntrustedStore for TamperStore {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.inner.write_at(offset, data)
    }

    fn flush(&self) -> Result<()> {
        self.inner.flush()
    }

    fn len(&self) -> Result<u64> {
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.inner.set_len(len)
    }

    fn stats(&self) -> Arc<StoreStats> {
        self.inner.stats()
    }
}

/// One kind of injectable fault, scheduled by a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The read fails; no bytes are returned.
    ReadError,
    /// The write fails; no bytes reach the device.
    WriteError,
    /// The write tears: only the first `keep` bytes reach the device, then
    /// the operation fails (disks do not promise multi-sector atomicity).
    TornWrite {
        /// Bytes of the write that survive.
        keep: u32,
    },
    /// The flush does not happen; the operation fails (the device never
    /// lies by acknowledging a durability point it did not reach).
    DroppedFlush,
    /// Every operation in the next `len` global operations fails with a
    /// transient error, then the store heals itself — a passing condition
    /// such as a bus glitch or a briefly unreachable remote store.
    TransientWindow {
        /// Length of the window in operations.
        len: u64,
    },
}

/// A deterministic schedule of faults, keyed by per-class operation index.
///
/// Read/write/torn faults are keyed by the index of that *class* of
/// operation (the 0th read, the 3rd write, …); dropped flushes by flush
/// index; transient windows by the global operation index (reads, writes,
/// and flushes all advance it). Keying by class keeps sweeps simple: a
/// torture loop that arms `write_error_at(k)` for every `k` visits every
/// write the workload performs, regardless of how many reads interleave.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    read_errors: BTreeSet<u64>,
    write_errors: BTreeSet<u64>,
    torn_writes: BTreeMap<u64, u32>,
    dropped_flushes: BTreeSet<u64>,
    /// Half-open `[start, end)` ranges of global operation indices.
    windows: Vec<(u64, u64)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Fails the `idx`-th read.
    pub fn read_error_at(mut self, idx: u64) -> FaultPlan {
        self.read_errors.insert(idx);
        self
    }

    /// Fails the `idx`-th write with nothing reaching the device.
    pub fn write_error_at(mut self, idx: u64) -> FaultPlan {
        self.write_errors.insert(idx);
        self
    }

    /// Tears the `idx`-th write after `keep` bytes.
    pub fn torn_write_at(mut self, idx: u64, keep: u32) -> FaultPlan {
        self.torn_writes.insert(idx, keep);
        self
    }

    /// Drops the `idx`-th flush (and fails it).
    pub fn dropped_flush_at(mut self, idx: u64) -> FaultPlan {
        self.dropped_flushes.insert(idx);
        self
    }

    /// Fails every operation in global-index range `[start, start + len)`
    /// with a transient error.
    pub fn transient_window(mut self, start: u64, len: u64) -> FaultPlan {
        self.windows.push((start, start.saturating_add(len)));
        self
    }

    /// Schedules `kind` at per-class (or, for windows, global) index `idx`.
    pub fn at(self, idx: u64, kind: FaultKind) -> FaultPlan {
        match kind {
            FaultKind::ReadError => self.read_error_at(idx),
            FaultKind::WriteError => self.write_error_at(idx),
            FaultKind::TornWrite { keep } => self.torn_write_at(idx, keep),
            FaultKind::DroppedFlush => self.dropped_flush_at(idx),
            FaultKind::TransientWindow { len } => self.transient_window(idx, len),
        }
    }

    /// A deterministic pseudo-random plan: `count` faults of mixed kinds,
    /// each scheduled below the per-class index `horizon`. Equal seeds give
    /// equal plans, so a failing torture run names its seed and reproduces.
    pub fn seeded(seed: u64, horizon: u64, count: usize) -> FaultPlan {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut plan = FaultPlan::new();
        let horizon = horizon.max(1);
        for _ in 0..count {
            let idx = splitmix64(&mut state) % horizon;
            let kind = match splitmix64(&mut state) % 4 {
                0 => FaultKind::ReadError,
                1 => FaultKind::WriteError,
                2 => FaultKind::TornWrite {
                    keep: (splitmix64(&mut state) % 512) as u32,
                },
                _ => FaultKind::TransientWindow {
                    len: 1 + splitmix64(&mut state) % 4,
                },
            };
            plan = plan.at(idx, kind);
        }
        plan
    }

    /// Number of scheduled faults (windows count once each).
    pub fn len(&self) -> usize {
        self.read_errors.len()
            + self.write_errors.len()
            + self.torn_writes.len()
            + self.dropped_flushes.len()
            + self.windows.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn in_window(&self, global_idx: u64) -> bool {
        self.windows
            .iter()
            .any(|&(start, end)| global_idx >= start && global_idx < end)
    }
}

/// SplitMix64: the standard 64-bit seed-sequence mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An [`UntrustedStore`] that executes a [`FaultPlan`].
///
/// `len`/`set_len` pass through unfaulted: the engine only calls them
/// during open, and faulting them adds nothing the read/write faults do
/// not already cover.
pub struct PlannedFaultStore {
    inner: Arc<dyn UntrustedStore>,
    plan: Mutex<FaultPlan>,
    global_ops: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    flushes: AtomicU64,
    injected: AtomicU64,
}

impl PlannedFaultStore {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: Arc<dyn UntrustedStore>, plan: FaultPlan) -> PlannedFaultStore {
        PlannedFaultStore {
            inner,
            plan: Mutex::new(plan),
            global_ops: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Replaces the plan (op counters keep running).
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock() = plan;
    }

    /// Number of faults injected so far.
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Write operations observed so far (used by sweeps to size the next
    /// plan's horizon).
    pub fn write_ops(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }

    /// Flush operations observed so far.
    pub fn flush_ops(&self) -> u64 {
        self.flushes.load(Ordering::SeqCst)
    }

    /// All operations (reads + writes + flushes) observed so far.
    pub fn total_ops(&self) -> u64 {
        self.global_ops.load(Ordering::SeqCst)
    }

    fn inject(&self, what: &'static str) -> StoreError {
        self.injected.fetch_add(1, Ordering::SeqCst);
        StoreError::InjectedFault(what)
    }

    /// Advances the global counter; returns a transient error inside a
    /// window.
    fn check_window(&self) -> Result<()> {
        let g = self.global_ops.fetch_add(1, Ordering::SeqCst);
        if self.plan.lock().in_window(g) {
            return Err(self.inject("transient fault window"));
        }
        Ok(())
    }
}

impl UntrustedStore for PlannedFaultStore {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_window()?;
        let r = self.reads.fetch_add(1, Ordering::SeqCst);
        if self.plan.lock().read_errors.contains(&r) {
            return Err(self.inject("planned read error"));
        }
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.check_window()?;
        let w = self.writes.fetch_add(1, Ordering::SeqCst);
        let torn = {
            let plan = self.plan.lock();
            if plan.write_errors.contains(&w) {
                return Err(self.inject("planned write error"));
            }
            plan.torn_writes.get(&w).copied()
        };
        if let Some(keep) = torn {
            let keep = (keep as usize).min(data.len());
            if keep > 0 {
                self.inner.write_at(offset, &data[..keep])?;
            }
            return Err(self.inject("planned torn write"));
        }
        self.inner.write_at(offset, data)
    }

    fn flush(&self) -> Result<()> {
        self.check_window()?;
        let f = self.flushes.fetch_add(1, Ordering::SeqCst);
        if self.plan.lock().dropped_flushes.contains(&f) {
            // The flush is silently skipped on the device, but the caller
            // is told the truth: durability was not reached.
            return Err(self.inject("planned dropped flush"));
        }
        self.inner.flush()
    }

    fn len(&self) -> Result<u64> {
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.inner.set_len(len)
    }

    fn stats(&self) -> Arc<StoreStats> {
        self.inner.stats()
    }
}

/// A [`TrustedStore`] wrapper with programmable write failures.
///
/// The register/counter is the root of trust, so its failure mode matters
/// most at commit time: §4.6 requires that a commit is acknowledged only
/// after the count is safely in the trusted store. Tests wrap the engine's
/// register in this and verify a failed counter bump is never acknowledged.
pub struct FaultyTrustedStore {
    inner: Arc<dyn TrustedStore>,
    /// Writes remaining before failures begin (u64::MAX = never).
    writes_until_failure: AtomicU64,
    /// When set, failures stop again.
    healed: AtomicBool,
    /// Number of injected failures.
    failures: AtomicU64,
}

impl FaultyTrustedStore {
    /// Wraps `inner`; healthy until [`FaultyTrustedStore::fail_after_writes`].
    pub fn new(inner: Arc<dyn TrustedStore>) -> FaultyTrustedStore {
        FaultyTrustedStore {
            inner,
            writes_until_failure: AtomicU64::new(u64::MAX),
            healed: AtomicBool::new(false),
            failures: AtomicU64::new(0),
        }
    }

    /// Arms the injector: the next `n` register writes succeed, then all
    /// writes fail (before touching the register — the paper's §2.1
    /// atomic-update assumption means a failed write leaves the old value)
    /// until [`FaultyTrustedStore::heal`].
    pub fn fail_after_writes(&self, n: u64) {
        self.healed.store(false, Ordering::SeqCst);
        self.writes_until_failure.store(n, Ordering::SeqCst);
    }

    /// Stops injecting failures.
    pub fn heal(&self) {
        self.healed.store(true, Ordering::SeqCst);
    }

    /// Number of injected write failures so far.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::SeqCst)
    }
}

impl TrustedStore for FaultyTrustedStore {
    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn read(&self) -> Result<Vec<u8>> {
        self.inner.read()
    }

    fn write(&self, data: &[u8]) -> Result<()> {
        if !self.healed.load(Ordering::SeqCst) && countdown(&self.writes_until_failure) {
            self.failures.fetch_add(1, Ordering::SeqCst);
            return Err(StoreError::InjectedFault("trusted store write failure"));
        }
        self.inner.write(data)
    }

    fn stats(&self) -> Arc<StoreStats> {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::untrusted::MemStore;

    #[test]
    fn crash_loses_unflushed_writes() {
        let mem = Arc::new(MemStore::new());
        let cs = CrashStore::new(mem).unwrap();
        cs.write_at(0, b"durable").unwrap();
        cs.flush().unwrap();
        cs.write_at(0, b"ephemer").unwrap();
        assert_eq!(cs.pending_writes(), 1);

        // Reads see the latest write before the crash.
        let mut buf = [0u8; 7];
        cs.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"ephemer");

        let image = cs.crash_lose_all();
        assert_eq!(&image[..7], b"durable");

        // The store is halted after a crash.
        assert!(matches!(
            cs.read_at(0, &mut buf),
            Err(StoreError::InjectedFault(_))
        ));
    }

    #[test]
    fn torn_crash_keeps_prefix_of_pending() {
        let mem = Arc::new(MemStore::new());
        let cs = CrashStore::new(mem).unwrap();
        cs.write_at(0, b"AAAA").unwrap();
        cs.flush().unwrap();
        cs.write_at(0, b"BBBB").unwrap();
        cs.write_at(4, b"CCCC").unwrap();
        let image = cs.crash(1);
        assert_eq!(&image, b"BBBB");
    }

    #[test]
    fn crash_keep_all_includes_every_pending_write() {
        let mem = Arc::new(MemStore::new());
        let cs = CrashStore::new(mem).unwrap();
        cs.write_at(0, b"XX").unwrap();
        cs.write_at(2, b"YY").unwrap();
        let image = cs.crash_keep_all();
        assert_eq!(&image, b"XXYY");
    }

    #[test]
    fn crash_store_captures_preexisting_content() {
        let mem = Arc::new(MemStore::new());
        mem.write_at(0, b"old").unwrap();
        let cs = CrashStore::new(Arc::clone(&mem) as Arc<dyn UntrustedStore>).unwrap();
        cs.write_at(0, b"new").unwrap();
        assert_eq!(cs.crash_lose_all(), b"old");
    }

    #[test]
    fn torn_crash_splits_within_one_write() {
        let mem = Arc::new(MemStore::new());
        let cs = CrashStore::new(mem).unwrap();
        cs.write_at(0, b"AAAA").unwrap();
        cs.flush().unwrap();
        cs.write_at(0, b"BBBB").unwrap();
        cs.write_at(4, b"CCCC").unwrap();
        // First pending write survives whole, second is cut after 2 bytes.
        let image = cs.crash_torn(1, 2);
        assert_eq!(&image, b"BBBBCC");
    }

    #[test]
    fn error_store_fails_reads_after_arming() {
        let mem = Arc::new(MemStore::new());
        let es = ErrorStore::new(mem);
        es.write_at(0, b"abcd").unwrap();
        let mut buf = [0u8; 4];
        es.read_at(0, &mut buf).unwrap();
        es.fail_after_reads(1);
        es.read_at(0, &mut buf).unwrap();
        assert!(matches!(
            es.read_at(0, &mut buf),
            Err(StoreError::InjectedFault("read failure"))
        ));
        es.heal();
        es.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abcd");
    }

    #[test]
    fn planned_write_error_fires_at_exact_index() {
        let mem = Arc::new(MemStore::new());
        let pf = PlannedFaultStore::new(mem, FaultPlan::new().write_error_at(1));
        pf.write_at(0, b"ok").unwrap();
        assert!(pf.write_at(2, b"no").is_err());
        pf.write_at(4, b"ok").unwrap();
        assert_eq!(pf.injected_faults(), 1);
        let mut buf = [0u8; 2];
        pf.read_at(2, &mut buf).unwrap();
        // The faulted write never reached the device.
        assert_eq!(&buf, &[0, 0]);
    }

    #[test]
    fn planned_torn_write_keeps_prefix() {
        let mem = Arc::new(MemStore::new());
        let pf = PlannedFaultStore::new(mem, FaultPlan::new().torn_write_at(0, 3));
        assert!(pf.write_at(0, b"ABCDEF").is_err());
        // Only the kept prefix reached the device.
        assert_eq!(pf.len().unwrap(), 3);
        let mut buf = [0u8; 3];
        pf.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"ABC");
    }

    #[test]
    fn planned_dropped_flush_fails_without_flushing() {
        let mem = Arc::new(MemStore::new());
        let stats = mem.stats();
        let pf = PlannedFaultStore::new(mem, FaultPlan::new().dropped_flush_at(0));
        pf.write_at(0, b"x").unwrap();
        assert!(pf.flush().is_err());
        assert_eq!(stats.snapshot().flushes, 0);
        pf.flush().unwrap();
        assert_eq!(stats.snapshot().flushes, 1);
    }

    #[test]
    fn transient_window_heals_itself() {
        let mem = Arc::new(MemStore::new());
        let pf = PlannedFaultStore::new(mem, FaultPlan::new().transient_window(1, 2));
        let mut buf = [0u8; 1];
        pf.write_at(0, b"x").unwrap(); // op 0
        let e = pf.read_at(0, &mut buf).unwrap_err(); // op 1: in window
        assert!(e.is_transient());
        assert!(pf.write_at(0, b"y").is_err()); // op 2: in window
        pf.read_at(0, &mut buf).unwrap(); // op 3: healed
        assert_eq!(&buf, b"x");
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 100, 5);
        let b = FaultPlan::seeded(42, 100, 5);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(!a.is_empty());
        let c = FaultPlan::seeded(43, 100, 5);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn faulty_trusted_store_fails_then_heals() {
        use crate::trusted::MemTrustedStore;
        let reg = Arc::new(MemTrustedStore::new(64));
        let ft = FaultyTrustedStore::new(reg);
        ft.write(b"one").unwrap();
        ft.fail_after_writes(0);
        assert!(ft.write(b"two").is_err());
        assert_eq!(ft.failures(), 1);
        // §2.1 atomicity: the failed write left the old value intact.
        assert_eq!(ft.read().unwrap(), b"one");
        ft.heal();
        ft.write(b"two").unwrap();
        assert_eq!(ft.read().unwrap(), b"two");
    }

    #[test]
    fn fault_injectors_are_sync() {
        // The concurrency stress suites share one injector across reader
        // and mutator threads; these bounds are load-bearing, not vacuous.
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<ErrorStore>();
        assert_sync::<PlannedFaultStore>();
        assert_sync::<FaultyTrustedStore>();
        assert_sync::<FaultPlan>();
    }

    #[test]
    fn error_store_countdown_is_exact_under_contention() {
        // With the load-check-decrement race, two threads both observing
        // `remaining == 1` would double-decrement and wrap the counter to
        // u64::MAX ("never fail"); the armed fault would silently vanish.
        // Hammer the countdown from many threads and demand exactly
        // `armed` successes before the permanent failure state.
        let mem = Arc::new(MemStore::new());
        let es = Arc::new(ErrorStore::new(mem));
        let armed = 64u64;
        es.fail_after_writes(armed);
        let successes = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let es = Arc::clone(&es);
                let successes = Arc::clone(&successes);
                s.spawn(move || {
                    for i in 0..64u64 {
                        if es.write_at(i * 8, b"payload!").is_ok() {
                            successes.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(successes.load(Ordering::SeqCst), armed);
        // Still failing: the counter pinned at zero rather than wrapping.
        assert!(es.write_at(0, b"x").is_err());
    }

    #[test]
    fn tamper_store_flip_and_splice() {
        let mem = Arc::new(MemStore::new());
        let ts = TamperStore::new(mem);
        ts.write_at(0, &[1, 2, 3, 4, 5, 6]).unwrap();
        ts.flip_byte(1, 0xF0).unwrap();
        assert_eq!(ts.peek(0, 6).unwrap(), vec![1, 2 ^ 0xF0, 3, 4, 5, 6]);
        ts.splice(0, 4, 2).unwrap();
        assert_eq!(ts.peek(4, 2).unwrap(), vec![1, 2 ^ 0xF0]);
        assert_eq!(ts.tamper_count(), 2);
    }
}
