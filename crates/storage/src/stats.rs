//! I/O accounting shared by store implementations.
//!
//! The paper's Figure 12 breaks TDB's runtime down by module, with
//! "untrusted store read/write" and "tamper-resistant store" as the largest
//! rows. Every store implementation in this crate records its operation
//! counts and wall time into a [`StoreStats`] so the benchmark harness can
//! regenerate that breakdown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Atomic counters describing traffic to one store.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Number of read operations.
    pub reads: AtomicU64,
    /// Number of write operations.
    pub writes: AtomicU64,
    /// Number of flush (durability) operations.
    pub flushes: AtomicU64,
    /// Total bytes read.
    pub bytes_read: AtomicU64,
    /// Total bytes written.
    pub bytes_written: AtomicU64,
    /// Nanoseconds spent in read operations.
    pub read_ns: AtomicU64,
    /// Nanoseconds spent in write operations.
    pub write_ns: AtomicU64,
    /// Nanoseconds spent in flush operations.
    pub flush_ns: AtomicU64,
    /// Number of operations retried after a transient fault (recorded by
    /// [`crate::retry::RetryStore`]).
    pub retries: AtomicU64,
}

impl StoreStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one read of `bytes` taking `elapsed`.
    pub fn record_read(&self, bytes: usize, elapsed: Duration) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
        self.read_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records one write of `bytes` taking `elapsed`.
    pub fn record_write(&self, bytes: usize, elapsed: Duration) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.write_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records one flush taking `elapsed`.
    pub fn record_flush(&self, elapsed: Duration) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
        self.flush_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records one retry of a transiently failed operation.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for c in [
            &self.reads,
            &self.writes,
            &self.flushes,
            &self.bytes_read,
            &self.bytes_written,
            &self.read_ns,
            &self.write_ns,
            &self.flush_ns,
            &self.retries,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            read_ns: self.read_ns.load(Ordering::Relaxed),
            write_ns: self.write_ns.load(Ordering::Relaxed),
            flush_ns: self.flush_ns.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value copy of [`StoreStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Read operations.
    pub reads: u64,
    /// Write operations.
    pub writes: u64,
    /// Flush operations.
    pub flushes: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Nanoseconds in reads.
    pub read_ns: u64,
    /// Nanoseconds in writes.
    pub write_ns: u64,
    /// Nanoseconds in flushes.
    pub flush_ns: u64,
    /// Retries after transient faults.
    pub retries: u64,
}

impl StatsSnapshot {
    /// Difference of two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            flushes: self.flushes - earlier.flushes,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            read_ns: self.read_ns - earlier.read_ns,
            write_ns: self.write_ns - earlier.write_ns,
            flush_ns: self.flush_ns - earlier.flush_ns,
            retries: self.retries - earlier.retries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = StoreStats::new();
        s.record_read(10, Duration::from_nanos(100));
        s.record_write(20, Duration::from_nanos(200));
        s.record_write(5, Duration::from_nanos(50));
        s.record_flush(Duration::from_nanos(1000));
        let snap = s.snapshot();
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.bytes_read, 10);
        assert_eq!(snap.bytes_written, 25);
        assert_eq!(snap.write_ns, 250);
    }

    #[test]
    fn since_subtracts() {
        let s = StoreStats::new();
        s.record_read(10, Duration::from_nanos(100));
        let a = s.snapshot();
        s.record_read(30, Duration::from_nanos(300));
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.reads, 1);
        assert_eq!(d.bytes_read, 30);
    }

    #[test]
    fn reset_zeroes() {
        let s = StoreStats::new();
        s.record_flush(Duration::from_nanos(1));
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
