//! The untrusted bulk store (§2.1): persistent, random access, readable and
//! writable by any program.
//!
//! TDB never trusts anything read from here; the chunk store decrypts and
//! validates every byte against the hash-link chain rooted in the trusted
//! store. These implementations therefore make no integrity guarantees —
//! they are plain byte arrays with durability.

use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

use crate::stats::StoreStats;
use crate::{Result, StoreError};

/// Random-access persistent storage with explicit durability points.
///
/// Implementations use interior mutability so a shared handle
/// (`Arc<dyn UntrustedStore>`) can be used concurrently.
pub trait UntrustedStore: Send + Sync {
    /// Reads exactly `buf.len()` bytes starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::OutOfBounds`] when the range extends past the
    /// end of the store.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Writes `data` at `offset`, extending the store if needed. The write
    /// is durable only after a subsequent [`UntrustedStore::flush`].
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()>;

    /// Makes all preceding writes durable.
    fn flush(&self) -> Result<()>;

    /// Current store length in bytes.
    fn len(&self) -> Result<u64>;

    /// True when the store holds no bytes.
    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Truncates or extends (zero-filled) the store to `len` bytes.
    fn set_len(&self, len: u64) -> Result<()>;

    /// I/O accounting for this store.
    fn stats(&self) -> Arc<StoreStats>;
}

/// An in-memory untrusted store for tests and benchmarks.
pub struct MemStore {
    data: RwLock<Vec<u8>>,
    stats: Arc<StoreStats>,
}

impl Default for MemStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MemStore {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        MemStore {
            data: RwLock::new(Vec::new()),
            stats: Arc::new(StoreStats::new()),
        }
    }

    /// Creates a store pre-filled with `data` (used to reopen "disk images"
    /// captured by the crash-injection tests).
    pub fn from_bytes(data: Vec<u8>) -> Self {
        MemStore {
            data: RwLock::new(data),
            stats: Arc::new(StoreStats::new()),
        }
    }

    /// A copy of the current contents (a simulated disk image).
    pub fn image(&self) -> Vec<u8> {
        self.data.read().clone()
    }

    /// Flips the bits selected by `mask` at `offset` — the test hook used to
    /// simulate an attacker writing to the untrusted store.
    pub fn tamper(&self, offset: u64, mask: u8) {
        let mut data = self.data.write();
        let i = offset as usize;
        if i < data.len() {
            data[i] ^= mask;
        }
    }
}

impl UntrustedStore for MemStore {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let start = Instant::now();
        let data = self.data.read();
        let end = offset as usize + buf.len();
        if end > data.len() {
            return Err(StoreError::OutOfBounds {
                offset,
                len: buf.len(),
                store_len: data.len() as u64,
            });
        }
        buf.copy_from_slice(&data[offset as usize..end]);
        drop(data);
        self.stats.record_read(buf.len(), start.elapsed());
        Ok(())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let start = Instant::now();
        let mut store = self.data.write();
        let end = offset as usize + data.len();
        if end > store.len() {
            store.resize(end, 0);
        }
        store[offset as usize..end].copy_from_slice(data);
        drop(store);
        self.stats.record_write(data.len(), start.elapsed());
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        let start = Instant::now();
        self.stats.record_flush(start.elapsed());
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.data.read().len() as u64)
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.data.write().resize(len as usize, 0);
        Ok(())
    }

    fn stats(&self) -> Arc<StoreStats> {
        Arc::clone(&self.stats)
    }
}

/// A file-backed untrusted store (the paper used an NTFS file, §9.1).
pub struct FileStore {
    file: File,
    stats: Arc<StoreStats>,
}

impl FileStore {
    /// Opens (or creates) the backing file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FileStore {
            file,
            stats: Arc::new(StoreStats::new()),
        })
    }
}

impl UntrustedStore for FileStore {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        let start = Instant::now();
        let store_len = self.file.metadata()?.len();
        if offset + buf.len() as u64 > store_len {
            return Err(StoreError::OutOfBounds {
                offset,
                len: buf.len(),
                store_len,
            });
        }
        self.file.read_exact_at(buf, offset)?;
        self.stats.record_read(buf.len(), start.elapsed());
        Ok(())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        let start = Instant::now();
        self.file.write_all_at(data, offset)?;
        self.stats.record_write(data.len(), start.elapsed());
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        let start = Instant::now();
        self.file.sync_data()?;
        self.stats.record_flush(start.elapsed());
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.file.set_len(len)?;
        Ok(())
    }

    fn stats(&self) -> Arc<StoreStats> {
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn UntrustedStore) {
        assert_eq!(store.len().unwrap(), 0);
        assert!(store.is_empty().unwrap());
        store.write_at(0, b"hello").unwrap();
        store.write_at(10, b"world").unwrap();
        assert_eq!(store.len().unwrap(), 15);

        let mut buf = [0u8; 5];
        store.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        store.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf, b"world");

        // The gap is zero-filled.
        let mut gap = [9u8; 5];
        store.read_at(5, &mut gap).unwrap();
        assert_eq!(gap, [0u8; 5]);

        // Out-of-bounds read is rejected.
        let mut big = [0u8; 16];
        assert!(matches!(
            store.read_at(0, &mut big),
            Err(StoreError::OutOfBounds { .. })
        ));

        store.flush().unwrap();
        store.set_len(5).unwrap();
        assert_eq!(store.len().unwrap(), 5);

        let snap = store.stats().snapshot();
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.bytes_written, 10);
        assert!(snap.reads >= 3);
        assert_eq!(snap.flushes, 1);
    }

    #[test]
    fn mem_store_semantics() {
        exercise(&MemStore::new());
    }

    #[test]
    fn file_store_semantics() {
        let dir = std::env::temp_dir().join(format!("tdb-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("untrusted.img");
        let _ = std::fs::remove_file(&path);
        exercise(&FileStore::open(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_store_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("tdb-store-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("persist.img");
        let _ = std::fs::remove_file(&path);
        {
            let s = FileStore::open(&path).unwrap();
            s.write_at(0, b"durable").unwrap();
            s.flush().unwrap();
        }
        let s = FileStore::open(&path).unwrap();
        let mut buf = [0u8; 7];
        s.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"durable");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mem_store_image_and_tamper() {
        let s = MemStore::new();
        s.write_at(0, &[1, 2, 3]).unwrap();
        assert_eq!(s.image(), vec![1, 2, 3]);
        s.tamper(1, 0xFF);
        assert_eq!(s.image(), vec![1, 2 ^ 0xFF, 3]);
        let reopened = MemStore::from_bytes(s.image());
        assert_eq!(reopened.len().unwrap(), 3);
    }
}
