//! Bounded retry of transient faults over an [`UntrustedStore`].
//!
//! The chunk store validates everything it reads, so a transient I/O fault
//! (a bus glitch, a briefly unreachable remote store) is never a safety
//! problem — only an availability one. [`RetryStore`] wraps any untrusted
//! store and retries operations whose error is
//! [`transient`](crate::StoreError::is_transient) under a deterministic
//! [`IoPolicy`]: a bounded retry budget and an injectable backoff clock, so
//! tests can sweep fault plans without wall-clock sleeps and deployments
//! can use real exponential backoff.
//!
//! Retries are counted in the wrapped store's [`StoreStats::retries`] and
//! reported to an optional observer callback, which the engine layers use
//! to surface retry totals in their own metrics.

use std::sync::Arc;
use std::time::Duration;

use crate::stats::StoreStats;
use crate::untrusted::UntrustedStore;
use crate::Result;

/// Source of delay between retry attempts.
///
/// Injectable so tests stay deterministic: the default [`NoDelay`] clock
/// makes a retried operation sequence a pure function of the fault plan.
pub trait RetryClock: Send + Sync {
    /// Called before retry number `attempt` (1-based).
    fn backoff(&self, attempt: u32);
}

/// A clock that never sleeps; retries happen immediately.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoDelay;

impl RetryClock for NoDelay {
    fn backoff(&self, _attempt: u32) {}
}

/// Exponential backoff over real wall-clock sleeps: `base << (attempt - 1)`,
/// capped at `cap`.
#[derive(Debug, Clone, Copy)]
pub struct SleepBackoff {
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
}

impl SleepBackoff {
    /// A backoff starting at `base` and doubling up to `cap`.
    pub fn new(base: Duration, cap: Duration) -> SleepBackoff {
        SleepBackoff { base, cap }
    }
}

impl RetryClock for SleepBackoff {
    fn backoff(&self, attempt: u32) {
        let shift = attempt.saturating_sub(1).min(16);
        let delay = self
            .base
            .checked_mul(1 << shift)
            .map_or(self.cap, |d| d.min(self.cap));
        std::thread::sleep(delay);
    }
}

/// Retry policy: how many times to retry a transient fault, and how long to
/// wait between attempts.
#[derive(Clone)]
pub struct IoPolicy {
    /// Maximum retries per operation (0 = fail on first error).
    pub max_retries: u32,
    /// Delay source consulted between attempts.
    pub clock: Arc<dyn RetryClock>,
}

impl IoPolicy {
    /// No retries: every error propagates immediately.
    pub fn no_retry() -> IoPolicy {
        IoPolicy::retries(0)
    }

    /// Up to `max_retries` immediate retries (deterministic, no sleeping).
    pub fn retries(max_retries: u32) -> IoPolicy {
        IoPolicy {
            max_retries,
            clock: Arc::new(NoDelay),
        }
    }

    /// Replaces the backoff clock.
    pub fn with_clock(mut self, clock: Arc<dyn RetryClock>) -> IoPolicy {
        self.clock = clock;
        self
    }
}

impl Default for IoPolicy {
    fn default() -> IoPolicy {
        IoPolicy::retries(2)
    }
}

impl std::fmt::Debug for IoPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoPolicy")
            .field("max_retries", &self.max_retries)
            .finish_non_exhaustive()
    }
}

/// Observer invoked on every retry with the 1-based attempt number.
pub type RetryObserver = Box<dyn Fn(u32) + Send + Sync>;

/// An [`UntrustedStore`] wrapper that retries transient faults.
///
/// Write retries are safe because every operation in the chunk store's
/// protocol is idempotent at this layer: a retried `write_at` rewrites the
/// same bytes at the same offset, so a torn first attempt is simply
/// overwritten.
pub struct RetryStore {
    inner: Arc<dyn UntrustedStore>,
    policy: IoPolicy,
    on_retry: Option<RetryObserver>,
}

impl RetryStore {
    /// Wraps `inner` with retry `policy`.
    pub fn new(inner: Arc<dyn UntrustedStore>, policy: IoPolicy) -> RetryStore {
        RetryStore {
            inner,
            policy,
            on_retry: None,
        }
    }

    /// Registers a callback invoked on every retry (attempt number is
    /// 1-based). Used to bridge retry counts into engine-level metrics.
    pub fn with_observer(mut self, observer: RetryObserver) -> RetryStore {
        self.on_retry = Some(observer);
        self
    }

    /// The wrapped store.
    pub fn inner(&self) -> &Arc<dyn UntrustedStore> {
        &self.inner
    }

    fn run<T>(&self, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < self.policy.max_retries => {
                    attempt += 1;
                    self.inner.stats().record_retry();
                    if let Some(observer) = &self.on_retry {
                        observer(attempt);
                    }
                    self.policy.clock.backoff(attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl UntrustedStore for RetryStore {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.run(|| self.inner.read_at(offset, buf))
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        self.run(|| self.inner.write_at(offset, data))
    }

    fn flush(&self) -> Result<()> {
        self.run(|| self.inner.flush())
    }

    fn len(&self) -> Result<u64> {
        self.run(|| self.inner.len())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.run(|| self.inner.set_len(len))
    }

    fn stats(&self) -> Arc<StoreStats> {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faulty::{FaultPlan, PlannedFaultStore};
    use crate::untrusted::MemStore;
    use crate::StoreError;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn mem() -> Arc<dyn UntrustedStore> {
        Arc::new(MemStore::new())
    }

    #[test]
    fn passes_through_on_success() {
        let store = RetryStore::new(mem(), IoPolicy::no_retry());
        store.write_at(0, b"hello").unwrap();
        let mut buf = [0u8; 5];
        store.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(store.stats().snapshot().retries, 0);
    }

    #[test]
    fn retries_transient_window_and_counts() {
        // Ops 1..4 (the first write and its first two retries) fail
        // transiently; the third retry lands after the window.
        let plan = FaultPlan::new().transient_window(0, 3);
        let faulty = Arc::new(PlannedFaultStore::new(mem(), plan));
        let store = RetryStore::new(faulty.clone(), IoPolicy::retries(5));
        store.write_at(0, b"x").unwrap();
        assert_eq!(store.stats().snapshot().retries, 3);
        assert_eq!(faulty.injected_faults(), 3);
    }

    #[test]
    fn gives_up_after_budget() {
        let plan = FaultPlan::new().transient_window(0, 10);
        let faulty = Arc::new(PlannedFaultStore::new(mem(), plan));
        let store = RetryStore::new(faulty, IoPolicy::retries(2));
        let err = store.write_at(0, b"x").unwrap_err();
        assert!(err.is_transient());
        assert_eq!(store.stats().snapshot().retries, 2);
    }

    #[test]
    fn permanent_errors_not_retried() {
        let plan = FaultPlan::new().write_error_at(0);
        let faulty = Arc::new(PlannedFaultStore::new(mem(), plan));
        let store = RetryStore::new(faulty, IoPolicy::retries(5));
        let err = store.write_at(0, b"x").unwrap_err();
        assert!(matches!(err, StoreError::InjectedFault(_)));
        assert_eq!(store.stats().snapshot().retries, 0);
    }

    #[test]
    fn observer_sees_each_attempt() {
        let plan = FaultPlan::new().transient_window(0, 2);
        let faulty = Arc::new(PlannedFaultStore::new(mem(), plan));
        let seen = Arc::new(AtomicU32::new(0));
        let seen2 = Arc::clone(&seen);
        let store =
            RetryStore::new(faulty, IoPolicy::retries(4)).with_observer(Box::new(move |_| {
                seen2.fetch_add(1, Ordering::SeqCst);
            }));
        store.write_at(0, b"x").unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), 2);
    }
}
