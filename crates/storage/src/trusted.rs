//! The tamper-resistant store and monotonic counter (§2.1, §4.8.2).
//!
//! The paper requires "a small amount (e.g., 16 bytes) of writable
//! persistent storage that can be written only by a trusted program …
//! updated atomically with respect to crashes", or alternatively a counter
//! that cannot be decremented. Direct hash validation stores the chained
//! residual-log hash (plus the log-tail location) here; counter-based
//! validation stores only the commit count.
//!
//! On a real platform this is battery-backed SRAM inside a secure
//! coprocessor or an EEPROM counter in a smartcard chip. Here it is modeled
//! by [`MemTrustedStore`] (tests) and [`FileTrustedStore`] (a two-slot,
//! sequence-numbered, checksummed file that survives crashes mid-write —
//! the paper emulated it with a file on a second disk, §9.1).

use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::stats::StoreStats;
use crate::{Result, StoreError};

/// A tiny, atomically updatable, tamper-resistant register.
pub trait TrustedStore: Send + Sync {
    /// Maximum number of bytes one record may hold.
    fn capacity(&self) -> usize;

    /// Reads the last atomically written record (empty if never written).
    fn read(&self) -> Result<Vec<u8>>;

    /// Atomically replaces the record with `data`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::CapacityExceeded`] when `data` is larger than
    /// [`TrustedStore::capacity`].
    fn write(&self, data: &[u8]) -> Result<()>;

    /// I/O accounting for this store.
    fn stats(&self) -> Arc<StoreStats>;
}

/// Default register capacity: enough for a 32-byte hash plus a 8-byte tail
/// location plus framing. The paper's "e.g., 16 bytes" assumed SHA-1
/// truncation; we keep full digests.
pub const DEFAULT_TRUSTED_CAPACITY: usize = 64;

/// An in-memory trusted store.
pub struct MemTrustedStore {
    capacity: usize,
    value: Mutex<Vec<u8>>,
    stats: Arc<StoreStats>,
}

impl MemTrustedStore {
    /// Creates an empty register of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        MemTrustedStore {
            capacity,
            value: Mutex::new(Vec::new()),
            stats: Arc::new(StoreStats::new()),
        }
    }

    /// Creates a register with the default capacity.
    pub fn default_capacity() -> Self {
        Self::new(DEFAULT_TRUSTED_CAPACITY)
    }

    /// Copies the current value out (for crash-simulation snapshots).
    pub fn image(&self) -> Vec<u8> {
        self.value.lock().clone()
    }

    /// Restores a previously captured value (crash-simulation).
    pub fn restore(&self, image: Vec<u8>) {
        *self.value.lock() = image;
    }
}

impl TrustedStore for MemTrustedStore {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn read(&self) -> Result<Vec<u8>> {
        let start = Instant::now();
        let v = self.value.lock().clone();
        self.stats.record_read(v.len(), start.elapsed());
        Ok(v)
    }

    fn write(&self, data: &[u8]) -> Result<()> {
        if data.len() > self.capacity {
            return Err(StoreError::CapacityExceeded {
                capacity: self.capacity,
                got: data.len(),
            });
        }
        let start = Instant::now();
        *self.value.lock() = data.to_vec();
        self.stats.record_write(data.len(), start.elapsed());
        self.stats.record_flush(std::time::Duration::ZERO);
        Ok(())
    }

    fn stats(&self) -> Arc<StoreStats> {
        Arc::clone(&self.stats)
    }
}

/// Magic marker for trusted-store slots.
const SLOT_MAGIC: u32 = 0x7D81_AA01;

/// A crash-atomic file-backed trusted store.
///
/// The file holds two fixed-size slots. A write goes to the slot *not*
/// holding the current record, with a sequence number and checksum, then the
/// file is synced. A crash mid-write leaves the previous slot intact;
/// [`TrustedStore::read`] picks the valid slot with the highest sequence
/// number. This realizes the paper's assumption that "the tamper-resistant
/// store can be updated atomically with respect to crashes" (§2.1).
pub struct FileTrustedStore {
    inner: Mutex<FileTrustedInner>,
    capacity: usize,
    stats: Arc<StoreStats>,
}

struct FileTrustedInner {
    file: File,
    seq: u64,
}

impl FileTrustedStore {
    /// Opens (or creates) the two-slot register at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(path: &Path, capacity: usize) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let slot_size = Self::slot_size(capacity);
        file.set_len(2 * slot_size as u64)?;
        let store = FileTrustedStore {
            inner: Mutex::new(FileTrustedInner { file, seq: 0 }),
            capacity,
            stats: Arc::new(StoreStats::new()),
        };
        // Prime the sequence number from whatever is on disk.
        let (_, seq) = store.read_slots()?;
        store.inner.lock().seq = seq;
        Ok(store)
    }

    fn slot_size(capacity: usize) -> usize {
        // magic (4) + seq (8) + len (4) + data (capacity) + crc-ish sum (8).
        4 + 8 + 4 + capacity + 8
    }

    /// A weak integrity sum for torn-write detection only. Tamper detection
    /// is not this layer's job: the register is *assumed* tamper-resistant.
    fn sum(bytes: &[u8]) -> u64 {
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            acc ^= u64::from(b);
            acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
        }
        acc
    }

    fn encode_slot(&self, seq: u64, data: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(Self::slot_size(self.capacity));
        buf.extend_from_slice(&SLOT_MAGIC.to_le_bytes());
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.extend_from_slice(&(data.len() as u32).to_le_bytes());
        buf.extend_from_slice(data);
        buf.resize(4 + 8 + 4 + self.capacity, 0);
        let sum = Self::sum(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    fn decode_slot(&self, buf: &[u8]) -> Option<(u64, Vec<u8>)> {
        let body_len = 4 + 8 + 4 + self.capacity;
        if buf.len() != body_len + 8 {
            return None;
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().ok()?);
        if magic != SLOT_MAGIC {
            return None;
        }
        let stored_sum = u64::from_le_bytes(buf[body_len..].try_into().ok()?);
        if Self::sum(&buf[..body_len]) != stored_sum {
            return None;
        }
        let seq = u64::from_le_bytes(buf[4..12].try_into().ok()?);
        let len = u32::from_le_bytes(buf[12..16].try_into().ok()?) as usize;
        if len > self.capacity {
            return None;
        }
        Some((seq, buf[16..16 + len].to_vec()))
    }

    /// Reads both slots, returning the newest valid record and its sequence.
    fn read_slots(&self) -> Result<(Vec<u8>, u64)> {
        use std::os::unix::fs::FileExt;
        let slot_size = Self::slot_size(self.capacity);
        let inner = self.inner.lock();
        let mut best: Option<(u64, Vec<u8>)> = None;
        for i in 0..2u64 {
            let mut buf = vec![0u8; slot_size];
            if inner
                .file
                .read_exact_at(&mut buf, i * slot_size as u64)
                .is_err()
            {
                continue;
            }
            if let Some((seq, data)) = self.decode_slot(&buf) {
                if best.as_ref().is_none_or(|(s, _)| seq > *s) {
                    best = Some((seq, data));
                }
            }
        }
        match best {
            Some((seq, data)) => Ok((data, seq)),
            None => Ok((Vec::new(), 0)),
        }
    }
}

impl TrustedStore for FileTrustedStore {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn read(&self) -> Result<Vec<u8>> {
        let start = Instant::now();
        let (data, _) = self.read_slots()?;
        self.stats.record_read(data.len(), start.elapsed());
        Ok(data)
    }

    fn write(&self, data: &[u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        if data.len() > self.capacity {
            return Err(StoreError::CapacityExceeded {
                capacity: self.capacity,
                got: data.len(),
            });
        }
        let start = Instant::now();
        let mut inner = self.inner.lock();
        let seq = inner.seq + 1;
        let slot = self.encode_slot(seq, data);
        // Alternate slots so the previous record survives a torn write.
        let offset = (seq % 2) * Self::slot_size(self.capacity) as u64;
        inner.file.write_all_at(&slot, offset)?;
        inner.file.sync_data()?;
        inner.seq = seq;
        drop(inner);
        self.stats.record_write(data.len(), start.elapsed());
        self.stats.record_flush(std::time::Duration::ZERO);
        Ok(())
    }

    fn stats(&self) -> Arc<StoreStats> {
        Arc::clone(&self.stats)
    }
}

/// A persistent counter that can never move backwards (§4.8.2.2).
///
/// "Provided the counter cannot be decremented by *any* program, it does not
/// need additional protection against untrusted programs."
pub trait MonotonicCounter: Send + Sync {
    /// Current counter value (0 if never set).
    fn get(&self) -> Result<u64>;

    /// Advances the counter to `value`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotMonotonic`] if `value` is less than the
    /// current value. Equal values are idempotent no-ops.
    fn advance_to(&self, value: u64) -> Result<()>;

    /// I/O accounting.
    fn stats(&self) -> Arc<StoreStats>;
}

/// A [`MonotonicCounter`] layered over any [`TrustedStore`] register.
pub struct CounterOverTrusted {
    store: Arc<dyn TrustedStore>,
    /// Cache of the last known value, to enforce monotonicity cheaply.
    cached: Mutex<Option<u64>>,
}

impl CounterOverTrusted {
    /// Wraps a trusted register as a counter.
    pub fn new(store: Arc<dyn TrustedStore>) -> Self {
        CounterOverTrusted {
            store,
            cached: Mutex::new(None),
        }
    }

    fn load(&self) -> Result<u64> {
        let bytes = self.store.read()?;
        if bytes.is_empty() {
            return Ok(0);
        }
        let arr: [u8; 8] = bytes
            .as_slice()
            .try_into()
            .map_err(|_| StoreError::Corrupt("counter record is not 8 bytes".into()))?;
        Ok(u64::from_le_bytes(arr))
    }
}

impl MonotonicCounter for CounterOverTrusted {
    fn get(&self) -> Result<u64> {
        let mut cached = self.cached.lock();
        if let Some(v) = *cached {
            return Ok(v);
        }
        let v = self.load()?;
        *cached = Some(v);
        Ok(v)
    }

    fn advance_to(&self, value: u64) -> Result<()> {
        let mut cached = self.cached.lock();
        let current = match *cached {
            Some(v) => v,
            None => self.load()?,
        };
        if value < current {
            return Err(StoreError::NotMonotonic {
                current,
                attempted: value,
            });
        }
        if value > current {
            self.store.write(&value.to_le_bytes())?;
        }
        *cached = Some(value);
        Ok(())
    }

    fn stats(&self) -> Arc<StoreStats> {
        self.store.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_trusted_roundtrip_and_capacity() {
        let s = MemTrustedStore::new(16);
        assert_eq!(s.read().unwrap(), Vec::<u8>::new());
        s.write(b"0123456789abcdef").unwrap();
        assert_eq!(s.read().unwrap(), b"0123456789abcdef");
        assert!(matches!(
            s.write(b"0123456789abcdefX"),
            Err(StoreError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn file_trusted_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("tdb-trusted-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reg.bin");
        let _ = std::fs::remove_file(&path);
        {
            let s = FileTrustedStore::open(&path, 32).unwrap();
            assert!(s.read().unwrap().is_empty());
            s.write(b"first").unwrap();
            s.write(b"second").unwrap();
            assert_eq!(s.read().unwrap(), b"second");
        }
        let s = FileTrustedStore::open(&path, 32).unwrap();
        assert_eq!(s.read().unwrap(), b"second");
        // Sequence numbers keep rising across reopen: a new write is newest.
        s.write(b"third").unwrap();
        assert_eq!(s.read().unwrap(), b"third");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_trusted_survives_torn_slot() {
        let dir = std::env::temp_dir().join(format!("tdb-trusted2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.bin");
        let _ = std::fs::remove_file(&path);
        let s = FileTrustedStore::open(&path, 16).unwrap();
        s.write(b"stable").unwrap();
        // Corrupt the *other* slot (where the next write would land),
        // simulating a torn write of a subsequent update.
        {
            use std::os::unix::fs::FileExt;
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            let slot = FileTrustedStore::slot_size(16) as u64;
            f.write_all_at(&[0xFFu8; 8], slot * ((s.inner.lock().seq + 1) % 2))
                .unwrap();
        }
        drop(s);
        let s = FileTrustedStore::open(&path, 16).unwrap();
        assert_eq!(s.read().unwrap(), b"stable");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn counter_monotonicity() {
        let c = CounterOverTrusted::new(Arc::new(MemTrustedStore::new(8)));
        assert_eq!(c.get().unwrap(), 0);
        c.advance_to(5).unwrap();
        assert_eq!(c.get().unwrap(), 5);
        c.advance_to(5).unwrap(); // Idempotent.
        assert!(matches!(
            c.advance_to(4),
            Err(StoreError::NotMonotonic {
                current: 5,
                attempted: 4
            })
        ));
        c.advance_to(100).unwrap();
        assert_eq!(c.get().unwrap(), 100);
    }

    #[test]
    fn counter_persists_through_backing_store() {
        let reg = Arc::new(MemTrustedStore::new(8));
        {
            let c = CounterOverTrusted::new(Arc::clone(&reg) as Arc<dyn TrustedStore>);
            c.advance_to(42).unwrap();
        }
        let c = CounterOverTrusted::new(reg as Arc<dyn TrustedStore>);
        assert_eq!(c.get().unwrap(), 42);
    }

    #[test]
    fn mem_trusted_image_restore() {
        let s = MemTrustedStore::new(8);
        s.write(b"before").unwrap();
        let img = s.image();
        s.write(b"after").unwrap();
        s.restore(img);
        assert_eq!(s.read().unwrap(), b"before");
    }
}
