#![warn(missing_docs)]

//! Platform storage substrates for TDB.
//!
//! The TDB paper (§2.1) assumes a trusted platform offering four kinds of
//! storage, all modeled here as traits with multiple implementations:
//!
//! - [`UntrustedStore`] — bulk, persistent, random-access storage that *any*
//!   program can read and write (a disk, flash, or remote store). TDB's
//!   chunk store keeps its log here. Implementations: [`FileStore`],
//!   [`MemStore`], plus the [`faulty`] wrappers (crash and tamper injection)
//!   and [`simdisk::SimDiskStore`] (a 1999-era disk latency model used to
//!   reproduce the paper's I/O-dominated cost shape).
//! - [`TrustedStore`] — a *small* (e.g. 16-byte) tamper-resistant register
//!   writable only by the trusted program and updated atomically with
//!   respect to crashes. Holds the database hash (direct validation) or the
//!   commit count (counter-based validation).
//! - [`MonotonicCounter`] — the weaker alternative the paper prefers
//!   (§4.8.2.2): a counter that no program can decrement.
//! - [`ArchivalStore`] — stream-oriented, untrusted archival storage (tape,
//!   ftp server) used by the backup store (§6).
//!
//! The *secret store* of the paper (a small read-only key) has no I/O
//! behaviour and is represented by `tdb_crypto::SecretKey` values held in
//! memory by the trusted program.

pub mod archival;
pub mod faulty;
pub mod remote;
pub mod retry;
pub mod simdisk;
pub mod stats;
pub mod trusted;
pub mod untrusted;

pub use archival::{ArchivalStore, DirArchive, MemArchive};
pub use faulty::{
    CrashStore, ErrorStore, FaultKind, FaultPlan, FaultyTrustedStore, PlannedFaultStore,
    TamperStore,
};
pub use remote::{BatchingStore, RemoteStore};
pub use retry::{IoPolicy, NoDelay, RetryClock, RetryObserver, RetryStore, SleepBackoff};
pub use simdisk::{DiskModel, SimClock, SimDiskStore};
pub use stats::{StatsSnapshot, StoreStats};
pub use trusted::{
    CounterOverTrusted, FileTrustedStore, MemTrustedStore, MonotonicCounter, TrustedStore,
};
pub use untrusted::{FileStore, MemStore, UntrustedStore};

use std::fmt;
use std::sync::Arc;

/// Errors produced by storage substrates.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A read past the end of the store.
    OutOfBounds {
        /// Requested start offset.
        offset: u64,
        /// Requested length.
        len: usize,
        /// Actual store length.
        store_len: u64,
    },
    /// Stored data failed an internal consistency check (e.g. both slots of
    /// a [`FileTrustedStore`] are corrupt).
    Corrupt(String),
    /// A value exceeding the trusted store's capacity was written.
    CapacityExceeded {
        /// Register capacity in bytes.
        capacity: usize,
        /// Attempted record size.
        got: usize,
    },
    /// An attempt to move a monotonic counter backwards.
    NotMonotonic {
        /// Current counter value.
        current: u64,
        /// Rejected smaller value.
        attempted: u64,
    },
    /// A named archival object does not exist.
    NotFound(String),
    /// An injected fault fired (only from the [`faulty`] wrappers).
    InjectedFault(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::OutOfBounds {
                offset,
                len,
                store_len,
            } => write!(
                f,
                "out-of-bounds access: offset {offset} + len {len} > store length {store_len}"
            ),
            StoreError::Corrupt(msg) => write!(f, "store corrupt: {msg}"),
            StoreError::CapacityExceeded { capacity, got } => {
                write!(
                    f,
                    "trusted store capacity {capacity} exceeded by {got}-byte write"
                )
            }
            StoreError::NotMonotonic { current, attempted } => write!(
                f,
                "monotonic counter cannot move from {current} back to {attempted}"
            ),
            StoreError::NotFound(name) => write!(f, "archival object not found: {name}"),
            StoreError::InjectedFault(what) => write!(f, "injected fault: {what}"),
        }
    }
}

impl StoreError {
    /// True when the operation may succeed if simply retried.
    ///
    /// Transient by convention: interrupted/timed-out I/O, dropped network
    /// connections (a [`remote::RemoteStore`] transport hiccup — the
    /// connection can be re-established, so `RetryStore` should retry
    /// rather than surface a Permanent fault), and injected faults whose
    /// message starts with `"transient"` (the [`faulty`] wrappers use that
    /// prefix for faults that model passing conditions such as a bus glitch
    /// or a briefly unreachable remote store).
    pub fn is_transient(&self) -> bool {
        match self {
            StoreError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::NotConnected
                    | std::io::ErrorKind::BrokenPipe
            ),
            StoreError::InjectedFault(what) => what.starts_with("transient"),
            _ => false,
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Convenience alias used throughout the storage layer.
pub type Result<T> = std::result::Result<T, StoreError>;

/// A shared, dynamically dispatched untrusted store handle.
pub type SharedUntrusted = Arc<dyn UntrustedStore>;

/// A shared, dynamically dispatched trusted store handle.
pub type SharedTrusted = Arc<dyn TrustedStore>;
