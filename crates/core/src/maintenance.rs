//! The background maintenance runtime: sliced cleaning, threshold
//! checkpoints, and commit admission control.
//!
//! The paper runs the cleaner and checkpointer synchronously inside the
//! engine mutex, so log maintenance stalls every commit. With
//! `background_maintenance` enabled, a [`MaintenanceService`] thread owned
//! by the store takes that work off the foreground path:
//!
//! - **Sliced cleaning.** The cleaner runs in bounded slices of at most
//!   `clean_slice_segments` segments per engine-lock hold
//!   ([`crate::engine::maintenance`]), releasing the mutex and yielding to
//!   queued group-commit members between slices. Cleaning starts when the
//!   free-segment count of a bounded log falls below `clean_high_water`
//!   and stops once it is back at or above it.
//! - **Threshold checkpoints.** When the dirty-map count reaches
//!   `checkpoint_threshold`, the maintenance thread checkpoints instead of
//!   the committing caller (`Inner::maybe_checkpoint` defers to it), so no
//!   commit pays a full checkpoint inline.
//! - **Admission control.** When free segments fall below
//!   `clean_low_water`, committers wait (bounded) for the cleaner to make
//!   room before proceeding; if the log is still full they surface the
//!   existing [`crate::errors::CoreError::OutOfSpace`] from the append
//!   path rather than failing abruptly under transient pressure.
//!
//! Lock order is unchanged: the maintenance thread takes the engine mutex
//! exactly like a foreground caller and touches read shards only while
//! holding it. The wake/space condvars below are leaf locks — never held
//! across an engine-lock acquisition in a way that could invert.
//!
//! With `background_maintenance = false` (the default) none of this runs:
//! cleaning happens only via explicit [`crate::store::ChunkStore::clean`]
//! calls and checkpoints trigger inside commits, reproducing the paper's
//! caller-driven behavior exactly — which deterministic fault-injection
//! and crash suites rely on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::errors::Result;
use crate::metrics::{self, counters};
use crate::store::{ChunkStoreConfig, Inner, StoreCore};

/// How long the maintenance thread sleeps between polls when nothing
/// kicks it awake earlier.
const IDLE_TICK: Duration = Duration::from_millis(20);

/// Longest a throttled committer waits for the cleaner to free space
/// before proceeding to the log's natural out-of-space error.
const THROTTLE_WAIT: Duration = Duration::from_millis(400);

/// State shared between the store facade, the engine, and the maintenance
/// thread. Mirrors of engine state (free segments, dirty maps) are updated
/// under the engine lock and read lock-free by the gate and the thread.
pub(crate) struct MaintenanceShared {
    /// Background maintenance on/off (from the config).
    pub(crate) enabled: bool,
    /// Segments per cleaning slice (engine-lock hold).
    slice_segments: usize,
    /// Free-segment low-water mark: below it committers throttle.
    low_water: u32,
    /// Free-segment high-water mark: background cleaning runs below it.
    high_water: u32,
    /// True when the log is bounded (`max_segments != 0`); segment
    /// pressure is meaningless on an unbounded log.
    bounded: bool,
    /// Dirty-map count that triggers a background checkpoint.
    checkpoint_threshold: usize,
    /// Wake latch for the maintenance thread.
    wake: Mutex<bool>,
    wake_cv: Condvar,
    /// Parked throttled committers wait here for freed space.
    space: Mutex<()>,
    space_cv: Condvar,
    /// Set once, on drop; the thread exits at its next wakeup.
    shutdown: AtomicBool,
    /// Mirror of the bounded log's free-segment count (headroom to
    /// `max_segments` plus the free list), updated under the engine lock.
    free_segments: AtomicU64,
    /// Mirror of the map cache's dirty-chunk count.
    dirty_maps: AtomicU64,
    /// Times the maintenance thread woke and ran a pass.
    pub(crate) wakeups: AtomicU64,
    /// Commits that hit the low-water admission gate and waited.
    pub(crate) throttle_waits: AtomicU64,
}

impl MaintenanceShared {
    pub(crate) fn new(config: &ChunkStoreConfig) -> MaintenanceShared {
        MaintenanceShared {
            enabled: config.background_maintenance,
            slice_segments: config.clean_slice_segments.max(1),
            low_water: config.clean_low_water,
            high_water: config.clean_high_water.max(config.clean_low_water),
            bounded: config.max_segments != 0,
            checkpoint_threshold: config.checkpoint_threshold,
            wake: Mutex::new(false),
            wake_cv: Condvar::new(),
            space: Mutex::new(()),
            space_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            free_segments: AtomicU64::new(u64::MAX),
            dirty_maps: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            throttle_waits: AtomicU64::new(0),
        }
    }

    /// Wakes the maintenance thread (no-op without one running).
    pub(crate) fn kick(&self) {
        let mut flag = self.wake.lock();
        *flag = true;
        self.wake_cv.notify_one();
    }

    fn free_estimate(&self) -> u64 {
        self.free_segments.load(Ordering::Relaxed)
    }

    /// The free-segment estimate, or `None` on an unbounded log where
    /// segment pressure is meaningless.
    pub(crate) fn free_segments_if_bounded(&self) -> Option<u64> {
        self.bounded.then(|| self.free_estimate())
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }
}

impl StoreCore {
    /// Refreshes the lock-free mirrors of engine state the maintenance
    /// runtime steers by, wakes throttled committers when space appeared,
    /// and kicks the maintenance thread when there is work. Call with the
    /// engine lock held, after any mutation.
    pub(crate) fn note_engine_state(&self, inner: &Inner) {
        let m = &self.maint;
        let dirty = inner.map_cache.dirty_count() as u64;
        m.dirty_maps.store(dirty, Ordering::Relaxed);
        let mut pressured = false;
        if m.bounded {
            let log = &inner.sys_leader.log;
            let headroom = u64::from(inner.config.max_segments.saturating_sub(log.num_segments));
            let free = headroom + log.free_segments.len() as u64;
            m.free_segments.store(free, Ordering::Relaxed);
            if free >= u64::from(m.low_water) {
                let _guard = m.space.lock();
                m.space_cv.notify_all();
            }
            pressured = free < u64::from(m.high_water);
        }
        if m.enabled && (dirty >= m.checkpoint_threshold as u64 || pressured) {
            m.kick();
        }
    }

    /// Admission control: with background maintenance on a bounded log,
    /// a committer that finds free segments below the low-water mark waits
    /// (bounded) for the cleaner instead of running the log into the wall.
    /// After the wait the commit proceeds regardless; a still-full log
    /// fails with the append path's usual out-of-space error.
    pub(crate) fn admission_gate(&self) {
        let m = &self.maint;
        if !m.enabled || !m.bounded || m.low_water == 0 || m.shutting_down() {
            return;
        }
        if m.free_estimate() >= u64::from(m.low_water) {
            return;
        }
        m.throttle_waits.fetch_add(1, Ordering::Relaxed);
        metrics::count(counters::COMMIT_THROTTLE_WAITS);
        m.kick();
        let deadline = Instant::now() + THROTTLE_WAIT;
        let mut guard = m.space.lock();
        while m.free_estimate() < u64::from(m.low_water) && !m.shutting_down() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            m.space_cv
                .wait_for(&mut guard, (deadline - now).min(Duration::from_millis(50)));
        }
    }

    /// One engine-locked cleaning pass over up to `max_segments` segments,
    /// shared by the public `clean()` facade and the background slices.
    /// Invalidates exactly the relocated ids on success so hot readers
    /// keep their fast path; an error clears the shards wholesale (the
    /// rollback may have left published descriptors stale).
    pub(crate) fn clean_locked(&self, max_segments: usize, slice: bool) -> Result<usize> {
        let mut inner = self.inner.lock();
        inner.check_writable()?;
        let result = inner.clean(max_segments);
        match &result {
            Ok(outcome) => {
                if slice {
                    inner.stats.clean_slices += 1;
                    metrics::count(counters::CLEAN_SLICES);
                }
                for id in &outcome.relocated {
                    self.reads.invalidate(*id);
                }
            }
            Err(_) => self.reads.clear_shards(),
        }
        self.reads.set_health(&inner.health);
        self.note_engine_state(&inner);
        result.map(|o| o.reclaimed)
    }

    /// One maintenance pass: a threshold checkpoint if due, then cleaning
    /// slices while the bounded log is under segment pressure. Each slice
    /// is its own engine-lock hold; queued group-commit members get the
    /// core between slices.
    fn maintenance_pass(&self) {
        let m = &self.maint;
        if m.dirty_maps.load(Ordering::Relaxed) >= m.checkpoint_threshold as u64 {
            let mut inner = self.inner.lock();
            if inner.check_writable().is_ok()
                && inner.map_cache.dirty_count() >= m.checkpoint_threshold
            {
                // Failure handling (rollback, degrade, poison) lives in the
                // checkpoint path itself; the error needs no surfacing here.
                let _ = inner.checkpoint();
            }
            self.reads.set_health(&inner.health);
            self.note_engine_state(&inner);
        }
        if !m.bounded {
            return;
        }
        let mut checkpointed_on_stall = false;
        while !m.shutting_down() && m.free_estimate() < u64::from(m.high_water) {
            if let Some(batcher) = &self.batcher {
                if batcher.queued() > 0 {
                    // Committers are parked on the engine: give them the
                    // core before taking the lock for another slice.
                    std::thread::yield_now();
                }
            }
            match self.clean_locked(m.slice_segments, true) {
                Ok(0) if !checkpointed_on_stall => {
                    // Nothing cleanable, usually because everything since
                    // the last checkpoint is residual and the cleaner must
                    // not touch it. Checkpoint to roll the residual
                    // forward, then retry; a second stall means there is
                    // genuinely nothing to reclaim yet.
                    checkpointed_on_stall = true;
                    let mut inner = self.inner.lock();
                    if inner.check_writable().is_err() {
                        break;
                    }
                    let _ = inner.checkpoint();
                    self.reads.set_health(&inner.health);
                    self.note_engine_state(&inner);
                }
                Ok(0) => break, // Nothing cleanable; wait for more traffic.
                Ok(_) => {
                    checkpointed_on_stall = false;
                    continue;
                }
                Err(_) => break, // Unhealthy store; reads saw the health.
            }
        }
    }
}

/// The background maintenance thread, owned by a
/// [`crate::store::ChunkStore`] when `background_maintenance` is enabled.
/// Dropping the service (with the store) signals shutdown and joins.
pub(crate) struct MaintenanceService {
    core: Arc<StoreCore>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MaintenanceService {
    pub(crate) fn spawn(core: Arc<StoreCore>) -> MaintenanceService {
        let worker = Arc::clone(&core);
        let handle = std::thread::Builder::new()
            .name("tdb-maintenance".into())
            .spawn(move || run(&worker))
            .expect("spawn maintenance thread");
        MaintenanceService {
            core,
            handle: Some(handle),
        }
    }
}

impl Drop for MaintenanceService {
    fn drop(&mut self) {
        self.core.maint.shutdown.store(true, Ordering::SeqCst);
        self.core.maint.kick();
        // Unblock any committer still parked on the admission gate.
        {
            let _guard = self.core.maint.space.lock();
            self.core.maint.space_cv.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn run(core: &StoreCore) {
    let m = &core.maint;
    loop {
        {
            let mut flag = m.wake.lock();
            if !*flag {
                m.wake_cv.wait_for(&mut flag, IDLE_TICK);
            }
            *flag = false;
        }
        if m.shutdown.load(Ordering::SeqCst) {
            return;
        }
        m.wakeups.fetch_add(1, Ordering::Relaxed);
        metrics::count(counters::MAINTENANCE_WAKEUPS);
        core.maintenance_pass();
    }
}
