//! Per-partition cryptographic parameters (§2.2, §5.2).
//!
//! Each partition protects its chunks with its own secret key, cipher, and
//! collision-resistant hash function, so applications can trade protection
//! for speed per data type, and "using different secret keys reduces the
//! loss from the disclosure of a single key". The system partition uses a
//! fixed, conservative pair (the paper: 3DES + SHA-1) keyed from the secret
//! store, forming the root of the *cipher links* from the secret store to
//! every chunk.

use tdb_crypto::cbc::Cbc;
use tdb_crypto::hmac::HmacKey;
use tdb_crypto::{CipherKind, HashKind, HashValue, SecretKey};

use crate::codec::{Dec, Enc};
use crate::errors::{CoreError, Result, TamperKind};

/// The cryptographic parameters of one partition.
#[derive(Clone)]
pub struct CryptoParams {
    /// Cipher protecting chunk bodies.
    pub cipher: CipherKind,
    /// Collision-resistant hash over chunk state.
    pub hash: HashKind,
    /// The partition's secret key. For the system partition this is the key
    /// in the platform's secret store; for others it is stored inside the
    /// (system-encrypted) partition leader.
    pub key: SecretKey,
}

impl CryptoParams {
    /// Parameters with a freshly generated random key.
    pub fn generate(cipher: CipherKind, hash: HashKind) -> CryptoParams {
        CryptoParams {
            cipher,
            hash,
            key: SecretKey::random(cipher.key_len()),
        }
    }

    /// The paper's defaults for user partitions: DES + SHA-1 (§9.2.1).
    pub fn paper_default() -> CryptoParams {
        Self::generate(CipherKind::Des, HashKind::Sha1)
    }

    /// The paper's system-partition parameters: 3DES + SHA-1 (§5.2), with
    /// the given secret-store key.
    pub fn paper_system(key: SecretKey) -> CryptoParams {
        CryptoParams {
            cipher: CipherKind::TripleDes,
            hash: HashKind::Sha1,
            key,
        }
    }

    /// Serializes the parameters (key included — callers must only embed
    /// this inside data that is itself encrypted, i.e. partition leaders).
    pub fn encode(&self, e: &mut Enc) {
        e.u8(self.cipher.tag());
        e.u8(self.hash.tag());
        e.bytes(self.key.as_bytes());
    }

    /// Inverse of [`CryptoParams::encode`].
    ///
    /// # Errors
    ///
    /// Fails on unknown tags or a key of the wrong length.
    pub fn decode(d: &mut Dec<'_>) -> Result<CryptoParams> {
        let cipher = CipherKind::from_tag(d.u8()?)
            .ok_or_else(|| CoreError::Corrupt("unknown cipher tag".into()))?;
        let hash = HashKind::from_tag(d.u8()?)
            .ok_or_else(|| CoreError::Corrupt("unknown hash tag".into()))?;
        let key_bytes = d.bytes()?;
        if key_bytes.len() != cipher.key_len() {
            return Err(CoreError::Corrupt(format!(
                "key length {} does not match cipher {:?}",
                key_bytes.len(),
                cipher
            )));
        }
        Ok(CryptoParams {
            cipher,
            hash,
            key: SecretKey::new(key_bytes.to_vec()),
        })
    }

    /// Builds the runtime cipher/hash handle.
    ///
    /// # Errors
    ///
    /// Fails if the key does not match the cipher's key length.
    pub fn runtime(&self) -> Result<PartitionCrypto> {
        let cbc = Cbc::new(self.cipher.new_cipher(self.key.as_bytes())?);
        // The null hash falls back to SHA-256 so a signature always exists
        // (§4.8.2.2); the pad midstates are derived once here, not per MAC.
        let sign_kind = if self.hash == HashKind::Null {
            HashKind::Sha256
        } else {
            self.hash
        };
        Ok(PartitionCrypto {
            cipher: self.cipher,
            hash: self.hash,
            mac_key: HmacKey::new(sign_kind, self.key.as_bytes()),
            cbc,
        })
    }
}

impl std::fmt::Debug for CryptoParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Key material is never printed.
        write!(f, "CryptoParams({:?}, {:?})", self.cipher, self.hash)
    }
}

/// Runtime encrypt/decrypt/hash/sign operations for one partition.
pub struct PartitionCrypto {
    cipher: CipherKind,
    hash: HashKind,
    /// Cached HMAC pad midstates under the partition key (the signing
    /// analogue of the cipher's cached key schedule).
    mac_key: HmacKey,
    cbc: Cbc,
}

impl PartitionCrypto {
    /// The partition's hash function.
    pub fn hash_kind(&self) -> HashKind {
        self.hash
    }

    /// The partition's cipher.
    pub fn cipher_kind(&self) -> CipherKind {
        self.cipher
    }

    /// Encrypts `plain`, returning `IV ‖ ciphertext` under a fresh IV.
    pub fn encrypt(&self, plain: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.encrypt_append(plain, &mut out);
        out
    }

    /// Appends `IV ‖ ciphertext` under a fresh IV to `out`, ciphering in
    /// place (a single buffer, no intermediate IV or ciphertext vectors).
    pub fn encrypt_append(&self, plain: &[u8], out: &mut Vec<u8>) {
        let bs = self.cbc.block_size();
        let mut iv = [0u8; 16];
        let iv = &mut iv[..bs];
        self.cbc.fill_iv(iv);
        out.reserve(bs + self.cbc.ciphertext_len(plain.len()));
        out.extend_from_slice(iv);
        self.cbc
            .encrypt_append(iv, plain, out)
            .expect("fresh IV always has the right length");
    }

    /// Decrypts `IV ‖ ciphertext` produced by [`PartitionCrypto::encrypt`].
    ///
    /// # Errors
    ///
    /// Returns a tamper-detection error at `location` when the ciphertext
    /// does not decrypt (wrong length or corrupt padding).
    pub fn decrypt(&self, data: &[u8], location: u64) -> Result<Vec<u8>> {
        let bs = self.cbc.block_size();
        if data.len() < bs {
            return Err(CoreError::TamperDetected(TamperKind::UndecryptableChunk {
                location,
            }));
        }
        let (iv, ct) = data.split_at(bs);
        self.cbc
            .decrypt(iv, ct)
            .map_err(|_| CoreError::TamperDetected(TamperKind::UndecryptableChunk { location }))
    }

    /// Ciphertext length (including the IV) for a plaintext of `len` bytes.
    pub fn sealed_len(&self, len: usize) -> usize {
        self.cbc.block_size() + self.cbc.ciphertext_len(len)
    }

    /// Hash of `data` with the partition's hash function.
    pub fn hash(&self, data: &[u8]) -> HashValue {
        self.hash.hash(data)
    }

    /// Hash over several segments.
    pub fn hash_parts(&self, parts: &[&[u8]]) -> HashValue {
        self.hash.hash_parts(parts)
    }

    /// Symmetric signature (HMAC under the partition key) over `parts`.
    ///
    /// Used for commit chunks and backup signatures; "the signature need not
    /// be publicly verifiable, so it may be based on symmetric-key
    /// encryption" (§4.8.2.2). The null hash falls back to SHA-256 so a
    /// signature always exists (the fallback is chosen at keying time).
    pub fn sign(&self, parts: &[&[u8]]) -> HashValue {
        self.mac_key.mac_parts(parts)
    }

    /// Verifies a signature produced by [`PartitionCrypto::sign`].
    pub fn verify(&self, parts: &[&[u8]], tag: &HashValue) -> bool {
        self.sign(parts).ct_eq(tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let p = CryptoParams::generate(CipherKind::Aes256, HashKind::Sha256);
        let mut e = Enc::new();
        p.encode(&mut e);
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        let q = CryptoParams::decode(&mut d).unwrap();
        assert!(d.is_done());
        assert_eq!(q.cipher, CipherKind::Aes256);
        assert_eq!(q.hash, HashKind::Sha256);
        assert_eq!(q.key.as_bytes(), p.key.as_bytes());
    }

    #[test]
    fn decode_rejects_mismatched_key() {
        let mut e = Enc::new();
        e.u8(CipherKind::Des.tag());
        e.u8(HashKind::Sha1.tag());
        e.bytes(&[0u8; 5]); // DES needs 8 bytes.
        let buf = e.finish();
        assert!(matches!(
            CryptoParams::decode(&mut Dec::new(&buf)),
            Err(CoreError::Corrupt(_))
        ));
    }

    #[test]
    fn seal_unseal_roundtrip() {
        for (cipher, hash) in [
            (CipherKind::TripleDes, HashKind::Sha1),
            (CipherKind::Aes128, HashKind::Sha256),
            (CipherKind::Null, HashKind::Null),
        ] {
            let rt = CryptoParams::generate(cipher, hash).runtime().unwrap();
            for len in [0usize, 1, 100, 4096] {
                let plain: Vec<u8> = (0..len).map(|i| i as u8).collect();
                let sealed = rt.encrypt(&plain);
                assert_eq!(sealed.len(), rt.sealed_len(len), "{cipher:?} {len}");
                assert_eq!(rt.decrypt(&sealed, 0).unwrap(), plain);
            }
        }
    }

    #[test]
    fn decrypt_corruption_is_tamper() {
        let rt = CryptoParams::generate(CipherKind::Aes128, HashKind::Sha1)
            .runtime()
            .unwrap();
        let sealed = rt.encrypt(b"secret chunk body");
        // Truncated to a non-block length.
        let err = rt.decrypt(&sealed[..sealed.len() - 3], 99).unwrap_err();
        assert!(err.is_tamper());
        // Too short to even hold an IV.
        assert!(rt.decrypt(&sealed[..4], 99).unwrap_err().is_tamper());
    }

    #[test]
    fn sign_verify() {
        let rt = CryptoParams::generate(CipherKind::TripleDes, HashKind::Sha1)
            .runtime()
            .unwrap();
        let tag = rt.sign(&[b"commit", b"set"]);
        assert!(rt.verify(&[b"commit", b"set"], &tag));
        assert!(!rt.verify(&[b"commit", b"forged"], &tag));
    }

    #[test]
    fn null_hash_partitions_still_sign() {
        let rt = CryptoParams::generate(CipherKind::Des, HashKind::Null)
            .runtime()
            .unwrap();
        let tag = rt.sign(&[b"x"]);
        assert!(!tag.is_empty());
        assert!(rt.verify(&[b"x"], &tag));
    }

    #[test]
    fn different_partitions_produce_unrelated_ciphertexts() {
        let a = CryptoParams::generate(CipherKind::Aes128, HashKind::Sha1)
            .runtime()
            .unwrap();
        let b = CryptoParams::generate(CipherKind::Aes128, HashKind::Sha1)
            .runtime()
            .unwrap();
        let sealed = a.encrypt(b"cross-partition read attempt");
        assert!(
            b.decrypt(&sealed, 0).is_err()
                || b.decrypt(&sealed, 0).unwrap() != b"cross-partition read attempt"
        );
    }
}
