//! Error types for the chunk and backup stores.
//!
//! Every error carries a **stable numeric code** ([`CoreError::code`],
//! [`TamperKind::code`]) and a lossless wire form
//! ([`CoreError::encode_wire`] / [`CoreError::decode_wire`]), so a fault
//! raised inside a TDB server crosses the network as the same typed error —
//! same variant, same `Display` — instead of a stringified debug dump. The
//! codes are part of the wire protocol: never renumber an existing variant.

use std::fmt;

use crate::codec::{Dec, Enc};
use crate::ids::{ChunkId, PartitionId, Position};

/// Why validation of untrusted bytes failed.
///
/// Any of these conditions means the untrusted store does not match the
/// state protected by the hash links rooted in the tamper-resistant store —
/// i.e. tampering, replay, or corruption was *detected* (§4.1: operations
/// "may signal tamper detection if the untrusted store is tampered with").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TamperKind {
    /// A chunk body's hash did not match the descriptor in the chunk map.
    ChunkHashMismatch(ChunkId),
    /// A chunk's ciphertext would not decrypt (corrupt padding/length).
    UndecryptableChunk {
        /// Log offset of the offending version.
        location: u64,
    },
    /// A chunk header names a different chunk than the map said lives there.
    MisdirectedChunk {
        /// The chunk the map pointed at.
        expected: ChunkId,
        /// Log offset read.
        location: u64,
    },
    /// The residual-log chained hash did not match the tamper-resistant
    /// store (direct hash validation, §4.8.2.1).
    LogHashMismatch,
    /// A commit chunk's signature (HMAC) was invalid (§4.8.2.2).
    BadCommitSignature {
        /// Log offset of the commit chunk.
        location: u64,
    },
    /// A commit chunk's hash of its commit set did not match the log.
    CommitSetHashMismatch {
        /// Log offset of the commit chunk.
        location: u64,
    },
    /// Commit counts in the residual log are not sequential (deleted or
    /// replayed commit sets).
    NonSequentialCommitCount {
        /// The count that should have come next.
        expected: u64,
        /// The count found.
        got: u64,
    },
    /// The final commit count in the log is outside the window allowed
    /// around the tamper-resistant counter (replay of an old database image
    /// or deletion of log tail beyond Δut/Δtu).
    CounterWindowViolated {
        /// Counter in the tamper-resistant store.
        trusted: u64,
        /// Last count found in the log.
        log: u64,
    },
    /// The chunk at the recorded leader location is not a leader (§4.9.2:
    /// "the recovery procedure checks that the chunk at the stored location
    /// is the leader").
    NotALeader {
        /// The recorded location.
        location: u64,
    },
    /// No valid leader could be found from the superblock.
    NoValidLeader,
    /// A backup stream failed signature or structure validation (§6.2).
    BadBackup(String),
    /// The shard manager's routing journal failed signature or sequence
    /// validation: the record framing was intact (so this is not a torn
    /// write) but the contents are not what the trusted platform wrote.
    BadManifest(String),
}

impl fmt::Display for TamperKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TamperKind::ChunkHashMismatch(id) => write!(f, "chunk {id} hash mismatch"),
            TamperKind::UndecryptableChunk { location } => {
                write!(f, "chunk at {location} failed decryption")
            }
            TamperKind::MisdirectedChunk { expected, location } => {
                write!(f, "chunk at {location} does not identify as {expected}")
            }
            TamperKind::LogHashMismatch => write!(f, "residual log hash mismatch"),
            TamperKind::BadCommitSignature { location } => {
                write!(f, "invalid commit-chunk signature at {location}")
            }
            TamperKind::CommitSetHashMismatch { location } => {
                write!(f, "commit-set hash mismatch at commit chunk {location}")
            }
            TamperKind::NonSequentialCommitCount { expected, got } => {
                write!(
                    f,
                    "commit counts not sequential: expected {expected}, got {got}"
                )
            }
            TamperKind::CounterWindowViolated { trusted, log } => write!(
                f,
                "commit count window violated: trusted store {trusted}, log {log}"
            ),
            TamperKind::NotALeader { location } => {
                write!(
                    f,
                    "chunk at recorded leader location {location} is not the leader"
                )
            }
            TamperKind::NoValidLeader => write!(f, "no valid leader found"),
            TamperKind::BadBackup(msg) => write!(f, "backup validation failed: {msg}"),
            TamperKind::BadManifest(msg) => {
                write!(f, "routing journal validation failed: {msg}")
            }
        }
    }
}

/// Errors produced by the chunk and backup stores.
#[derive(Debug)]
pub enum CoreError {
    /// Tampering with untrusted storage was detected. The caller should
    /// treat the database as hostile (§2.1: "suitable steps are taken when
    /// tampering is detected").
    TamperDetected(TamperKind),
    /// The underlying storage failed.
    Store(tdb_storage::StoreError),
    /// A cryptographic parameter error (bad key length etc.).
    Crypto(tdb_crypto::CryptoError),
    /// Operation on a chunk id that is not allocated (§4.1 signals).
    NotAllocated(ChunkId),
    /// Read of a chunk that was allocated but never written (§4.1 signals).
    NotWritten(ChunkId),
    /// Operation on a partition id that is not written.
    NoSuchPartition(PartitionId),
    /// The partition id is already in use.
    PartitionExists(PartitionId),
    /// A chunk exceeds the maximum size storable in one segment.
    ChunkTooLarge {
        /// Offending chunk size.
        size: usize,
        /// Maximum storable size.
        max: usize,
    },
    /// The store ran out of space and cleaning could not free any.
    OutOfSpace,
    /// Data on disk could not be parsed (corruption that is not provably
    /// tampering, e.g. a torn tail in counter mode is *expected*; this is
    /// for structurally impossible states).
    Corrupt(String),
    /// A backup restore violated chain or set-completeness constraints (§6.3).
    RestoreConstraint(String),
    /// The restore policy (a trusted program) denied the restore (§6.3).
    RestoreDenied(String),
    /// The commit rode in a group-commit batch that was aborted before its
    /// shared durability point: a batch-mate hit a storage or integrity
    /// failure after bytes had reached the device. This commit itself was
    /// rolled back cleanly and was never acknowledged durable.
    BatchAborted(String),
    /// The store is serving validated reads only: a storage failure
    /// interrupted a mutation after bytes had reached the log, so further
    /// mutations are rejected until `ChunkStore::try_heal` or a reopen.
    DegradedMode(String),
    /// The store detected an integrity violation during a mutation and has
    /// failed closed; it must be reopened (revalidating from the trusted
    /// store) before any further use.
    Poisoned(String),
    /// The resource is briefly unavailable — e.g. a partition whose writes
    /// are paused for a migration cutover. Transient by construction: the
    /// pause lasts one delta-drain, so retrying is the correct response.
    Busy(String),
}

/// Coarse classification of a failure, used by retry and degradation policy.
///
/// The distinction matters because the three classes demand different
/// responses: transient faults are worth retrying ([`crate::store`] keeps
/// serving), permanent faults end the operation but leave the protected
/// state trustworthy, and integrity faults mean the untrusted store no
/// longer matches the state protected by the tamper-resistant store — the
/// engine must fail closed (§2.1: "suitable steps are taken when tampering
/// is detected").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// The operation may succeed if retried: an I/O hiccup or an injected
    /// transient-window fault. Nothing about the protected state is suspect.
    Transient,
    /// Retrying will not help (bad arguments, out of space, structural
    /// corruption), but validation has not failed: reads remain trustworthy.
    Permanent,
    /// Validation failed: the untrusted store does not match the protected
    /// state. The engine must not serve or accept data on this path.
    Integrity,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::TamperDetected(kind) => write!(f, "TAMPER DETECTED: {kind}"),
            CoreError::Store(e) => write!(f, "storage error: {e}"),
            CoreError::Crypto(e) => write!(f, "crypto error: {e}"),
            CoreError::NotAllocated(id) => write!(f, "chunk {id} is not allocated"),
            CoreError::NotWritten(id) => write!(f, "chunk {id} is not written"),
            CoreError::NoSuchPartition(p) => write!(f, "no such partition: {p}"),
            CoreError::PartitionExists(p) => write!(f, "partition already exists: {p}"),
            CoreError::ChunkTooLarge { size, max } => {
                write!(f, "chunk of {size} bytes exceeds maximum {max}")
            }
            CoreError::OutOfSpace => write!(f, "untrusted store is out of space"),
            CoreError::Corrupt(msg) => write!(f, "store corrupt: {msg}"),
            CoreError::RestoreConstraint(msg) => {
                write!(f, "restore constraint violated: {msg}")
            }
            CoreError::RestoreDenied(msg) => write!(f, "restore denied by policy: {msg}"),
            CoreError::BatchAborted(msg) => {
                write!(f, "group-commit batch aborted: {msg}")
            }
            CoreError::DegradedMode(msg) => {
                write!(f, "store degraded to read-only: {msg}")
            }
            CoreError::Poisoned(msg) => write!(f, "store poisoned: {msg}"),
            CoreError::Busy(msg) => write!(f, "resource busy: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Store(e) => Some(e),
            CoreError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tdb_storage::StoreError> for CoreError {
    fn from(e: tdb_storage::StoreError) -> Self {
        CoreError::Store(e)
    }
}

impl From<tdb_crypto::CryptoError> for CoreError {
    fn from(e: tdb_crypto::CryptoError) -> Self {
        CoreError::Crypto(e)
    }
}

impl CoreError {
    /// True when this error indicates detected tampering.
    pub fn is_tamper(&self) -> bool {
        matches!(self, CoreError::TamperDetected(_))
    }

    /// Classifies this error for retry and degradation policy.
    pub fn fault_class(&self) -> FaultClass {
        match self {
            CoreError::TamperDetected(_) | CoreError::Poisoned(_) => FaultClass::Integrity,
            CoreError::Store(e) if e.is_transient() => FaultClass::Transient,
            CoreError::Busy(_) => FaultClass::Transient,
            _ => FaultClass::Permanent,
        }
    }

    /// True when the operation may succeed if simply retried.
    pub fn is_transient(&self) -> bool {
        self.fault_class() == FaultClass::Transient
    }
}

/// Convenience alias used throughout the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;

// ---------------------------------------------------------------------------
// Stable numeric codes and the wire form.
// ---------------------------------------------------------------------------

/// Injected-fault labels the `tdb-storage` fault wrappers use. The wire
/// decoder interns against this table so a `StoreError::InjectedFault`
/// survives a round trip with its `&'static str` intact.
const INJECTED_LABELS: [&str; 9] = [
    "store crashed",
    "write failure",
    "read failure",
    "trusted store write failure",
    "transient fault window",
    "planned read error",
    "planned write error",
    "planned torn write",
    "planned dropped flush",
];

fn enc_chunk_id(e: &mut Enc, id: &ChunkId) {
    e.u32(id.partition.0);
    e.u8(id.pos.height);
    e.u64(id.pos.rank);
}

fn dec_chunk_id(d: &mut Dec) -> Result<ChunkId> {
    let partition = PartitionId(d.u32()?);
    let height = d.u8()?;
    let rank = d.u64()?;
    Ok(ChunkId::new(partition, Position { height, rank }))
}

impl TamperKind {
    /// The stable numeric code of this tamper kind (offset into the
    /// `CoreError::TamperDetected` code range, 100–199).
    pub fn code(&self) -> u16 {
        match self {
            TamperKind::ChunkHashMismatch(_) => 100,
            TamperKind::UndecryptableChunk { .. } => 101,
            TamperKind::MisdirectedChunk { .. } => 102,
            TamperKind::LogHashMismatch => 103,
            TamperKind::BadCommitSignature { .. } => 104,
            TamperKind::CommitSetHashMismatch { .. } => 105,
            TamperKind::NonSequentialCommitCount { .. } => 106,
            TamperKind::CounterWindowViolated { .. } => 107,
            TamperKind::NotALeader { .. } => 108,
            TamperKind::NoValidLeader => 109,
            TamperKind::BadBackup(_) => 110,
            TamperKind::BadManifest(_) => 111,
        }
    }

    fn encode_body(&self, e: &mut Enc) {
        match self {
            TamperKind::ChunkHashMismatch(id) => enc_chunk_id(e, id),
            TamperKind::UndecryptableChunk { location } => {
                e.u64(*location);
            }
            TamperKind::MisdirectedChunk { expected, location } => {
                enc_chunk_id(e, expected);
                e.u64(*location);
            }
            TamperKind::LogHashMismatch | TamperKind::NoValidLeader => {}
            TamperKind::BadCommitSignature { location }
            | TamperKind::CommitSetHashMismatch { location }
            | TamperKind::NotALeader { location } => {
                e.u64(*location);
            }
            TamperKind::NonSequentialCommitCount { expected, got } => {
                e.u64(*expected);
                e.u64(*got);
            }
            TamperKind::CounterWindowViolated { trusted, log } => {
                e.u64(*trusted);
                e.u64(*log);
            }
            TamperKind::BadBackup(msg) | TamperKind::BadManifest(msg) => {
                e.str(msg);
            }
        }
    }

    fn decode_body(code: u16, d: &mut Dec) -> Result<TamperKind> {
        Ok(match code {
            100 => TamperKind::ChunkHashMismatch(dec_chunk_id(d)?),
            101 => TamperKind::UndecryptableChunk { location: d.u64()? },
            102 => TamperKind::MisdirectedChunk {
                expected: dec_chunk_id(d)?,
                location: d.u64()?,
            },
            103 => TamperKind::LogHashMismatch,
            104 => TamperKind::BadCommitSignature { location: d.u64()? },
            105 => TamperKind::CommitSetHashMismatch { location: d.u64()? },
            106 => TamperKind::NonSequentialCommitCount {
                expected: d.u64()?,
                got: d.u64()?,
            },
            107 => TamperKind::CounterWindowViolated {
                trusted: d.u64()?,
                log: d.u64()?,
            },
            108 => TamperKind::NotALeader { location: d.u64()? },
            109 => TamperKind::NoValidLeader,
            110 => TamperKind::BadBackup(d.str()?),
            111 => TamperKind::BadManifest(d.str()?),
            code => {
                return Err(CoreError::Corrupt(format!(
                    "unknown tamper-kind wire code {code}"
                )))
            }
        })
    }
}

/// `std::io::ErrorKind`s that survive the wire (the transient set that
/// [`tdb_storage::StoreError::is_transient`] keys on, plus `Other`).
fn io_kind_tag(kind: std::io::ErrorKind) -> u8 {
    use std::io::ErrorKind as K;
    match kind {
        K::Interrupted => 1,
        K::TimedOut => 2,
        K::WouldBlock => 3,
        K::ConnectionReset => 4,
        K::ConnectionAborted => 5,
        K::NotConnected => 6,
        K::BrokenPipe => 7,
        K::NotFound => 8,
        K::PermissionDenied => 9,
        K::UnexpectedEof => 10,
        _ => 0,
    }
}

fn io_kind_from_tag(tag: u8) -> std::io::ErrorKind {
    use std::io::ErrorKind as K;
    match tag {
        1 => K::Interrupted,
        2 => K::TimedOut,
        3 => K::WouldBlock,
        4 => K::ConnectionReset,
        5 => K::ConnectionAborted,
        6 => K::NotConnected,
        7 => K::BrokenPipe,
        8 => K::NotFound,
        9 => K::PermissionDenied,
        10 => K::UnexpectedEof,
        _ => K::Other,
    }
}

fn encode_store_error(e: &mut Enc, err: &tdb_storage::StoreError) {
    use tdb_storage::StoreError as S;
    match err {
        S::Io(io) => {
            e.u8(0);
            e.u8(io_kind_tag(io.kind()));
            e.str(&io.to_string());
        }
        S::OutOfBounds {
            offset,
            len,
            store_len,
        } => {
            e.u8(1);
            e.u64(*offset);
            e.u64(*len as u64);
            e.u64(*store_len);
        }
        S::Corrupt(msg) => {
            e.u8(2);
            e.str(msg);
        }
        S::CapacityExceeded { capacity, got } => {
            e.u8(3);
            e.u64(*capacity as u64);
            e.u64(*got as u64);
        }
        S::NotMonotonic { current, attempted } => {
            e.u8(4);
            e.u64(*current);
            e.u64(*attempted);
        }
        S::NotFound(name) => {
            e.u8(5);
            e.str(name);
        }
        S::InjectedFault(what) => {
            e.u8(6);
            e.str(what);
        }
    }
}

fn decode_store_error(d: &mut Dec) -> Result<tdb_storage::StoreError> {
    use tdb_storage::StoreError as S;
    Ok(match d.u8()? {
        0 => {
            let kind = io_kind_from_tag(d.u8()?);
            S::Io(std::io::Error::new(kind, d.str()?))
        }
        1 => S::OutOfBounds {
            offset: d.u64()?,
            len: d.u64()? as usize,
            store_len: d.u64()?,
        },
        2 => S::Corrupt(d.str()?),
        3 => S::CapacityExceeded {
            capacity: d.u64()? as usize,
            got: d.u64()? as usize,
        },
        4 => S::NotMonotonic {
            current: d.u64()?,
            attempted: d.u64()?,
        },
        5 => S::NotFound(d.str()?),
        6 => {
            let label = d.str()?;
            match INJECTED_LABELS.iter().find(|l| **l == label) {
                Some(interned) => S::InjectedFault(interned),
                // An unknown label cannot be interned to 'static; surface
                // it as corruption with the label preserved in the message.
                None => S::Corrupt(format!("injected fault: {label}")),
            }
        }
        tag => {
            return Err(CoreError::Corrupt(format!(
                "unknown store-error wire tag {tag}"
            )))
        }
    })
}

fn encode_crypto_error(e: &mut Enc, err: &tdb_crypto::CryptoError) {
    use tdb_crypto::CryptoError as C;
    match err {
        C::BadKeyLength { expected, got } => {
            e.u8(0);
            e.u64(*expected as u64);
            e.u64(*got as u64);
        }
        C::BadCiphertextLength { block, got } => {
            e.u8(1);
            e.u64(*block as u64);
            e.u64(*got as u64);
        }
        C::BadPadding => {
            e.u8(2);
        }
        C::BadIvLength { expected, got } => {
            e.u8(3);
            e.u64(*expected as u64);
            e.u64(*got as u64);
        }
    }
}

fn decode_crypto_error(d: &mut Dec) -> Result<tdb_crypto::CryptoError> {
    use tdb_crypto::CryptoError as C;
    Ok(match d.u8()? {
        0 => C::BadKeyLength {
            expected: d.u64()? as usize,
            got: d.u64()? as usize,
        },
        1 => C::BadCiphertextLength {
            block: d.u64()? as usize,
            got: d.u64()? as usize,
        },
        2 => C::BadPadding,
        3 => C::BadIvLength {
            expected: d.u64()? as usize,
            got: d.u64()? as usize,
        },
        tag => {
            return Err(CoreError::Corrupt(format!(
                "unknown crypto-error wire tag {tag}"
            )))
        }
    })
}

impl CoreError {
    /// The stable numeric code of this error. Tamper variants live in
    /// 100–199 (one code per [`TamperKind`]); everything else below 100.
    pub fn code(&self) -> u16 {
        match self {
            CoreError::TamperDetected(kind) => kind.code(),
            CoreError::Store(_) => 1,
            CoreError::Crypto(_) => 2,
            CoreError::NotAllocated(_) => 3,
            CoreError::NotWritten(_) => 4,
            CoreError::NoSuchPartition(_) => 5,
            CoreError::PartitionExists(_) => 6,
            CoreError::ChunkTooLarge { .. } => 7,
            CoreError::OutOfSpace => 8,
            CoreError::Corrupt(_) => 9,
            CoreError::RestoreConstraint(_) => 10,
            CoreError::RestoreDenied(_) => 11,
            CoreError::BatchAborted(_) => 12,
            CoreError::DegradedMode(_) => 13,
            CoreError::Poisoned(_) => 14,
            CoreError::Busy(_) => 15,
        }
    }

    /// Appends the lossless wire form of this error: stable code followed
    /// by the variant's fields. [`CoreError::decode_wire`] inverts it with
    /// the same variant, code, fault class, and `Display` rendering.
    pub fn encode_wire(&self, e: &mut Enc) {
        e.u16(self.code());
        match self {
            CoreError::TamperDetected(kind) => kind.encode_body(e),
            CoreError::Store(err) => encode_store_error(e, err),
            CoreError::Crypto(err) => encode_crypto_error(e, err),
            CoreError::NotAllocated(id) | CoreError::NotWritten(id) => enc_chunk_id(e, id),
            CoreError::NoSuchPartition(p) | CoreError::PartitionExists(p) => {
                e.u32(p.0);
            }
            CoreError::ChunkTooLarge { size, max } => {
                e.u64(*size as u64);
                e.u64(*max as u64);
            }
            CoreError::OutOfSpace => {}
            CoreError::Corrupt(msg)
            | CoreError::RestoreConstraint(msg)
            | CoreError::RestoreDenied(msg)
            | CoreError::BatchAborted(msg)
            | CoreError::DegradedMode(msg)
            | CoreError::Poisoned(msg)
            | CoreError::Busy(msg) => {
                e.str(msg);
            }
        }
    }

    /// Decodes one error from its wire form.
    ///
    /// # Errors
    ///
    /// Fails with [`CoreError::Corrupt`] on truncation or unknown codes.
    pub fn decode_wire(d: &mut Dec) -> Result<CoreError> {
        let code = d.u16()?;
        Ok(match code {
            100..=199 => CoreError::TamperDetected(TamperKind::decode_body(code, d)?),
            1 => CoreError::Store(decode_store_error(d)?),
            2 => CoreError::Crypto(decode_crypto_error(d)?),
            3 => CoreError::NotAllocated(dec_chunk_id(d)?),
            4 => CoreError::NotWritten(dec_chunk_id(d)?),
            5 => CoreError::NoSuchPartition(PartitionId(d.u32()?)),
            6 => CoreError::PartitionExists(PartitionId(d.u32()?)),
            7 => CoreError::ChunkTooLarge {
                size: d.u64()? as usize,
                max: d.u64()? as usize,
            },
            8 => CoreError::OutOfSpace,
            9 => CoreError::Corrupt(d.str()?),
            10 => CoreError::RestoreConstraint(d.str()?),
            11 => CoreError::RestoreDenied(d.str()?),
            12 => CoreError::BatchAborted(d.str()?),
            13 => CoreError::DegradedMode(d.str()?),
            14 => CoreError::Poisoned(d.str()?),
            15 => CoreError::Busy(d.str()?),
            code => {
                return Err(CoreError::Corrupt(format!(
                    "unknown core-error wire code {code}"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Vec<CoreError> {
        let id = ChunkId::data(PartitionId(3), 42);
        vec![
            CoreError::TamperDetected(TamperKind::ChunkHashMismatch(id)),
            CoreError::TamperDetected(TamperKind::UndecryptableChunk { location: 9000 }),
            CoreError::TamperDetected(TamperKind::MisdirectedChunk {
                expected: id,
                location: 77,
            }),
            CoreError::TamperDetected(TamperKind::LogHashMismatch),
            CoreError::TamperDetected(TamperKind::BadCommitSignature { location: 1 }),
            CoreError::TamperDetected(TamperKind::CommitSetHashMismatch { location: 2 }),
            CoreError::TamperDetected(TamperKind::NonSequentialCommitCount {
                expected: 5,
                got: 9,
            }),
            CoreError::TamperDetected(TamperKind::CounterWindowViolated { trusted: 8, log: 2 }),
            CoreError::TamperDetected(TamperKind::NotALeader { location: 512 }),
            CoreError::TamperDetected(TamperKind::NoValidLeader),
            CoreError::TamperDetected(TamperKind::BadBackup("set incomplete".into())),
            CoreError::TamperDetected(TamperKind::BadManifest("bad mac".into())),
            CoreError::Store(tdb_storage::StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "socket timed out",
            ))),
            CoreError::Store(tdb_storage::StoreError::OutOfBounds {
                offset: 10,
                len: 20,
                store_len: 15,
            }),
            CoreError::Store(tdb_storage::StoreError::Corrupt("bad slot".into())),
            CoreError::Store(tdb_storage::StoreError::CapacityExceeded {
                capacity: 64,
                got: 100,
            }),
            CoreError::Store(tdb_storage::StoreError::NotMonotonic {
                current: 7,
                attempted: 3,
            }),
            CoreError::Store(tdb_storage::StoreError::NotFound("backup-7".into())),
            CoreError::Store(tdb_storage::StoreError::InjectedFault(
                "transient fault window",
            )),
            CoreError::Crypto(tdb_crypto::CryptoError::BadKeyLength {
                expected: 24,
                got: 8,
            }),
            CoreError::Crypto(tdb_crypto::CryptoError::BadPadding),
            CoreError::NotAllocated(id),
            CoreError::NotWritten(id),
            CoreError::NoSuchPartition(PartitionId(9)),
            CoreError::PartitionExists(PartitionId(1)),
            CoreError::ChunkTooLarge {
                size: 70000,
                max: 65000,
            },
            CoreError::OutOfSpace,
            CoreError::Corrupt("zero-length record".into()),
            CoreError::RestoreConstraint("chain broken".into()),
            CoreError::RestoreDenied("policy".into()),
            CoreError::BatchAborted("batch-mate failed".into()),
            CoreError::DegradedMode("write interrupted".into()),
            CoreError::Poisoned("hash mismatch during commit".into()),
            CoreError::Busy("partition migrating".into()),
        ]
    }

    #[test]
    fn wire_round_trip_preserves_code_display_and_class() {
        for err in catalog() {
            let mut e = Enc::new();
            err.encode_wire(&mut e);
            let buf = e.finish();
            let mut d = Dec::new(&buf);
            let back = CoreError::decode_wire(&mut d).expect("decode");
            d.expect_done("core error").expect("no trailing bytes");
            assert_eq!(back.code(), err.code(), "{err}");
            assert_eq!(back.to_string(), err.to_string());
            assert_eq!(back.fault_class(), err.fault_class(), "{err}");
            assert_eq!(back.is_tamper(), err.is_tamper(), "{err}");
        }
    }

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for err in catalog() {
            seen.insert(err.code());
        }
        // One code per distinct variant/kind in the catalog.
        assert_eq!(seen.len(), 27);
        assert_eq!(CoreError::OutOfSpace.code(), 8);
        assert_eq!(
            CoreError::TamperDetected(TamperKind::NoValidLeader).code(),
            109
        );
    }

    #[test]
    fn truncated_and_unknown_codes_rejected() {
        let mut e = Enc::new();
        CoreError::OutOfSpace.encode_wire(&mut e);
        let buf = e.finish();
        let mut d = Dec::new(&buf[..1]);
        assert!(CoreError::decode_wire(&mut d).is_err());
        let mut e = Enc::new();
        e.u16(999);
        let buf = e.finish();
        assert!(CoreError::decode_wire(&mut Dec::new(&buf)).is_err());
    }
}
