//! Error types for the chunk and backup stores.

use std::fmt;

use crate::ids::{ChunkId, PartitionId};

/// Why validation of untrusted bytes failed.
///
/// Any of these conditions means the untrusted store does not match the
/// state protected by the hash links rooted in the tamper-resistant store —
/// i.e. tampering, replay, or corruption was *detected* (§4.1: operations
/// "may signal tamper detection if the untrusted store is tampered with").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TamperKind {
    /// A chunk body's hash did not match the descriptor in the chunk map.
    ChunkHashMismatch(ChunkId),
    /// A chunk's ciphertext would not decrypt (corrupt padding/length).
    UndecryptableChunk {
        /// Log offset of the offending version.
        location: u64,
    },
    /// A chunk header names a different chunk than the map said lives there.
    MisdirectedChunk {
        /// The chunk the map pointed at.
        expected: ChunkId,
        /// Log offset read.
        location: u64,
    },
    /// The residual-log chained hash did not match the tamper-resistant
    /// store (direct hash validation, §4.8.2.1).
    LogHashMismatch,
    /// A commit chunk's signature (HMAC) was invalid (§4.8.2.2).
    BadCommitSignature {
        /// Log offset of the commit chunk.
        location: u64,
    },
    /// A commit chunk's hash of its commit set did not match the log.
    CommitSetHashMismatch {
        /// Log offset of the commit chunk.
        location: u64,
    },
    /// Commit counts in the residual log are not sequential (deleted or
    /// replayed commit sets).
    NonSequentialCommitCount {
        /// The count that should have come next.
        expected: u64,
        /// The count found.
        got: u64,
    },
    /// The final commit count in the log is outside the window allowed
    /// around the tamper-resistant counter (replay of an old database image
    /// or deletion of log tail beyond Δut/Δtu).
    CounterWindowViolated {
        /// Counter in the tamper-resistant store.
        trusted: u64,
        /// Last count found in the log.
        log: u64,
    },
    /// The chunk at the recorded leader location is not a leader (§4.9.2:
    /// "the recovery procedure checks that the chunk at the stored location
    /// is the leader").
    NotALeader {
        /// The recorded location.
        location: u64,
    },
    /// No valid leader could be found from the superblock.
    NoValidLeader,
    /// A backup stream failed signature or structure validation (§6.2).
    BadBackup(String),
    /// The shard manager's routing journal failed signature or sequence
    /// validation: the record framing was intact (so this is not a torn
    /// write) but the contents are not what the trusted platform wrote.
    BadManifest(String),
}

impl fmt::Display for TamperKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TamperKind::ChunkHashMismatch(id) => write!(f, "chunk {id} hash mismatch"),
            TamperKind::UndecryptableChunk { location } => {
                write!(f, "chunk at {location} failed decryption")
            }
            TamperKind::MisdirectedChunk { expected, location } => {
                write!(f, "chunk at {location} does not identify as {expected}")
            }
            TamperKind::LogHashMismatch => write!(f, "residual log hash mismatch"),
            TamperKind::BadCommitSignature { location } => {
                write!(f, "invalid commit-chunk signature at {location}")
            }
            TamperKind::CommitSetHashMismatch { location } => {
                write!(f, "commit-set hash mismatch at commit chunk {location}")
            }
            TamperKind::NonSequentialCommitCount { expected, got } => {
                write!(
                    f,
                    "commit counts not sequential: expected {expected}, got {got}"
                )
            }
            TamperKind::CounterWindowViolated { trusted, log } => write!(
                f,
                "commit count window violated: trusted store {trusted}, log {log}"
            ),
            TamperKind::NotALeader { location } => {
                write!(
                    f,
                    "chunk at recorded leader location {location} is not the leader"
                )
            }
            TamperKind::NoValidLeader => write!(f, "no valid leader found"),
            TamperKind::BadBackup(msg) => write!(f, "backup validation failed: {msg}"),
            TamperKind::BadManifest(msg) => {
                write!(f, "routing journal validation failed: {msg}")
            }
        }
    }
}

/// Errors produced by the chunk and backup stores.
#[derive(Debug)]
pub enum CoreError {
    /// Tampering with untrusted storage was detected. The caller should
    /// treat the database as hostile (§2.1: "suitable steps are taken when
    /// tampering is detected").
    TamperDetected(TamperKind),
    /// The underlying storage failed.
    Store(tdb_storage::StoreError),
    /// A cryptographic parameter error (bad key length etc.).
    Crypto(tdb_crypto::CryptoError),
    /// Operation on a chunk id that is not allocated (§4.1 signals).
    NotAllocated(ChunkId),
    /// Read of a chunk that was allocated but never written (§4.1 signals).
    NotWritten(ChunkId),
    /// Operation on a partition id that is not written.
    NoSuchPartition(PartitionId),
    /// The partition id is already in use.
    PartitionExists(PartitionId),
    /// A chunk exceeds the maximum size storable in one segment.
    ChunkTooLarge {
        /// Offending chunk size.
        size: usize,
        /// Maximum storable size.
        max: usize,
    },
    /// The store ran out of space and cleaning could not free any.
    OutOfSpace,
    /// Data on disk could not be parsed (corruption that is not provably
    /// tampering, e.g. a torn tail in counter mode is *expected*; this is
    /// for structurally impossible states).
    Corrupt(String),
    /// A backup restore violated chain or set-completeness constraints (§6.3).
    RestoreConstraint(String),
    /// The restore policy (a trusted program) denied the restore (§6.3).
    RestoreDenied(String),
    /// The commit rode in a group-commit batch that was aborted before its
    /// shared durability point: a batch-mate hit a storage or integrity
    /// failure after bytes had reached the device. This commit itself was
    /// rolled back cleanly and was never acknowledged durable.
    BatchAborted(String),
    /// The store is serving validated reads only: a storage failure
    /// interrupted a mutation after bytes had reached the log, so further
    /// mutations are rejected until `ChunkStore::try_heal` or a reopen.
    DegradedMode(String),
    /// The store detected an integrity violation during a mutation and has
    /// failed closed; it must be reopened (revalidating from the trusted
    /// store) before any further use.
    Poisoned(String),
    /// The resource is briefly unavailable — e.g. a partition whose writes
    /// are paused for a migration cutover. Transient by construction: the
    /// pause lasts one delta-drain, so retrying is the correct response.
    Busy(String),
}

/// Coarse classification of a failure, used by retry and degradation policy.
///
/// The distinction matters because the three classes demand different
/// responses: transient faults are worth retrying ([`crate::store`] keeps
/// serving), permanent faults end the operation but leave the protected
/// state trustworthy, and integrity faults mean the untrusted store no
/// longer matches the state protected by the tamper-resistant store — the
/// engine must fail closed (§2.1: "suitable steps are taken when tampering
/// is detected").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// The operation may succeed if retried: an I/O hiccup or an injected
    /// transient-window fault. Nothing about the protected state is suspect.
    Transient,
    /// Retrying will not help (bad arguments, out of space, structural
    /// corruption), but validation has not failed: reads remain trustworthy.
    Permanent,
    /// Validation failed: the untrusted store does not match the protected
    /// state. The engine must not serve or accept data on this path.
    Integrity,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::TamperDetected(kind) => write!(f, "TAMPER DETECTED: {kind}"),
            CoreError::Store(e) => write!(f, "storage error: {e}"),
            CoreError::Crypto(e) => write!(f, "crypto error: {e}"),
            CoreError::NotAllocated(id) => write!(f, "chunk {id} is not allocated"),
            CoreError::NotWritten(id) => write!(f, "chunk {id} is not written"),
            CoreError::NoSuchPartition(p) => write!(f, "no such partition: {p}"),
            CoreError::PartitionExists(p) => write!(f, "partition already exists: {p}"),
            CoreError::ChunkTooLarge { size, max } => {
                write!(f, "chunk of {size} bytes exceeds maximum {max}")
            }
            CoreError::OutOfSpace => write!(f, "untrusted store is out of space"),
            CoreError::Corrupt(msg) => write!(f, "store corrupt: {msg}"),
            CoreError::RestoreConstraint(msg) => {
                write!(f, "restore constraint violated: {msg}")
            }
            CoreError::RestoreDenied(msg) => write!(f, "restore denied by policy: {msg}"),
            CoreError::BatchAborted(msg) => {
                write!(f, "group-commit batch aborted: {msg}")
            }
            CoreError::DegradedMode(msg) => {
                write!(f, "store degraded to read-only: {msg}")
            }
            CoreError::Poisoned(msg) => write!(f, "store poisoned: {msg}"),
            CoreError::Busy(msg) => write!(f, "resource busy: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Store(e) => Some(e),
            CoreError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tdb_storage::StoreError> for CoreError {
    fn from(e: tdb_storage::StoreError) -> Self {
        CoreError::Store(e)
    }
}

impl From<tdb_crypto::CryptoError> for CoreError {
    fn from(e: tdb_crypto::CryptoError) -> Self {
        CoreError::Crypto(e)
    }
}

impl CoreError {
    /// True when this error indicates detected tampering.
    pub fn is_tamper(&self) -> bool {
        matches!(self, CoreError::TamperDetected(_))
    }

    /// Classifies this error for retry and degradation policy.
    pub fn fault_class(&self) -> FaultClass {
        match self {
            CoreError::TamperDetected(_) | CoreError::Poisoned(_) => FaultClass::Integrity,
            CoreError::Store(e) if e.is_transient() => FaultClass::Transient,
            CoreError::Busy(_) => FaultClass::Transient,
            _ => FaultClass::Permanent,
        }
    }

    /// True when the operation may succeed if simply retried.
    pub fn is_transient(&self) -> bool {
        self.fault_class() == FaultClass::Transient
    }
}

/// Convenience alias used throughout the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;
