//! Chunk and partition identifiers.
//!
//! The id of a chunk encodes its *position* in the chunk-map tree (§4.3):
//! "The position comprises the height of the chunk in the tree and its rank
//! from the left among the chunks at that height." Data chunks live at
//! height 0; map chunks above them. As the tree grows, chunks are added to
//! the right and the top, which preserves existing positions — so no ids
//! ever need to be stored inside the map itself.
//!
//! With multiple partitions (§5.1), "a chunk id comprises the chunk
//! position, as before, and the id of the containing partition."

use std::fmt;

/// The reserved height marking a partition leader (whose position in the
/// tree changes as the tree grows, so "it is given a reserved id instead",
/// §4.3).
pub const LEADER_HEIGHT: u8 = 0xFF;

/// A partition identifier.
///
/// The reserved *system* partition ([`PartitionId::SYSTEM`]) holds the
/// partition map and all partition leaders (§5.2). User partition ids are
/// allocated from the system partition's data-chunk ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId(pub u32);

impl PartitionId {
    /// The reserved system partition (denoted *S* in the paper's Figure 7).
    pub const SYSTEM: PartitionId = PartitionId(0);

    /// True for the system partition id.
    pub fn is_system(self) -> bool {
        self == Self::SYSTEM
    }

    /// The system-partition data-chunk rank storing this partition's leader.
    ///
    /// # Panics
    ///
    /// Panics for the system partition, whose leader is the system leader
    /// and lives outside the partition map.
    pub fn leader_rank(self) -> u64 {
        assert!(
            !self.is_system(),
            "system leader is not in the partition map"
        );
        u64::from(self.0) - 1
    }

    /// Inverse of [`PartitionId::leader_rank`].
    pub fn from_leader_rank(rank: u64) -> PartitionId {
        PartitionId((rank + 1) as u32)
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_system() {
            write!(f, "S")
        } else {
            write!(f, "P{}", self.0)
        }
    }
}

/// A position in the chunk-map tree: height and rank (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Position {
    /// Height in the tree: 0 for data chunks, ≥ 1 for map chunks,
    /// [`LEADER_HEIGHT`] for leaders.
    pub height: u8,
    /// Rank from the left among chunks at this height.
    pub rank: u64,
}

impl Position {
    /// A data-chunk position.
    pub fn data(rank: u64) -> Position {
        Position { height: 0, rank }
    }

    /// A map-chunk position.
    pub fn map(height: u8, rank: u64) -> Position {
        debug_assert!(height >= 1 && height != LEADER_HEIGHT);
        Position { height, rank }
    }

    /// The reserved leader position.
    pub fn leader() -> Position {
        Position {
            height: LEADER_HEIGHT,
            rank: 0,
        }
    }

    /// True for data-chunk positions.
    pub fn is_data(self) -> bool {
        self.height == 0
    }

    /// True for map-chunk positions.
    pub fn is_map(self) -> bool {
        self.height >= 1 && self.height != LEADER_HEIGHT
    }

    /// True for the reserved leader position.
    pub fn is_leader(self) -> bool {
        self.height == LEADER_HEIGHT
    }

    /// Position of the map chunk holding this chunk's descriptor, given the
    /// tree fanout. Id-based navigation of the map (§4.3) uses only this.
    pub fn parent(self, fanout: u64) -> Position {
        debug_assert!(
            !self.is_leader(),
            "the leader's descriptor is not in the map"
        );
        Position {
            height: self.height + 1,
            rank: self.rank / fanout,
        }
    }

    /// Slot index of this chunk's descriptor within its parent map chunk.
    pub fn slot(self, fanout: u64) -> usize {
        (self.rank % fanout) as usize
    }

    /// Position of the child in `slot` under this map chunk.
    pub fn child(self, fanout: u64, slot: usize) -> Position {
        debug_assert!(self.is_map());
        Position {
            height: self.height - 1,
            rank: self.rank * fanout + slot as u64,
        }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_leader() {
            write!(f, "leader")
        } else {
            // The paper denotes positions as "height.rank".
            write!(f, "{}.{}", self.height, self.rank)
        }
    }
}

/// A fully qualified chunk id: partition plus position (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkId {
    /// Containing partition.
    pub partition: PartitionId,
    /// Position within the partition's tree.
    pub pos: Position,
}

impl ChunkId {
    /// Builds a chunk id.
    pub fn new(partition: PartitionId, pos: Position) -> ChunkId {
        ChunkId { partition, pos }
    }

    /// A data chunk id.
    pub fn data(partition: PartitionId, rank: u64) -> ChunkId {
        ChunkId::new(partition, Position::data(rank))
    }

    /// The system leader's reserved id.
    pub fn system_leader() -> ChunkId {
        ChunkId::new(PartitionId::SYSTEM, Position::leader())
    }

    /// The id of the system chunk storing `partition`'s leader.
    pub fn leader_chunk(partition: PartitionId) -> ChunkId {
        ChunkId::data(PartitionId::SYSTEM, partition.leader_rank())
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The paper denotes chunk ids as "partition:position".
        write!(f, "{}:{}", self.partition, self.pos)
    }
}

/// Number of data chunks a tree of `height` can address at fanout `fanout`.
pub fn capacity(fanout: u64, height: u8) -> u64 {
    fanout.saturating_pow(u32::from(height))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_parent_child_roundtrip() {
        let fanout = 64;
        let pos = Position::data(1000);
        let parent = pos.parent(fanout);
        assert_eq!(parent, Position::map(1, 15));
        assert_eq!(pos.slot(fanout), 1000 - 15 * 64);
        assert_eq!(parent.child(fanout, pos.slot(fanout)), pos);
    }

    #[test]
    fn deep_tree_navigation() {
        let fanout = 4;
        // Rank 77 at height 0: parents are 19 (h1), 4 (h2), 1 (h3), 0 (h4).
        let mut pos = Position::data(77);
        let expected = [(1u8, 19u64), (2, 4), (3, 1), (4, 0)];
        for (h, r) in expected {
            pos = pos.parent(fanout);
            assert_eq!(pos, Position::map(h, r));
        }
    }

    #[test]
    fn capacity_math() {
        assert_eq!(capacity(64, 1), 64);
        assert_eq!(capacity(64, 2), 4096);
        assert_eq!(capacity(4, 3), 64);
        // Saturates rather than overflowing for absurd heights.
        assert_eq!(capacity(64, 40), u64::MAX);
    }

    #[test]
    fn partition_leader_rank_mapping() {
        let p = PartitionId(1);
        assert_eq!(p.leader_rank(), 0);
        assert_eq!(PartitionId::from_leader_rank(0), p);
        let q = PartitionId(17);
        assert_eq!(PartitionId::from_leader_rank(q.leader_rank()), q);
    }

    #[test]
    #[should_panic(expected = "system leader")]
    fn system_partition_has_no_leader_rank() {
        let _ = PartitionId::SYSTEM.leader_rank();
    }

    #[test]
    fn display_formats() {
        assert_eq!(ChunkId::data(PartitionId(2), 5).to_string(), "P2:0.5");
        assert_eq!(ChunkId::system_leader().to_string(), "S:leader");
        assert_eq!(
            ChunkId::new(PartitionId(1), Position::map(2, 3)).to_string(),
            "P1:2.3"
        );
    }

    #[test]
    fn kind_predicates() {
        assert!(Position::data(0).is_data());
        assert!(Position::map(1, 0).is_map());
        assert!(Position::leader().is_leader());
        assert!(!Position::leader().is_map());
    }
}
