//! Little-endian wire-format helpers.
//!
//! All persistent metadata (chunk headers, descriptors, leaders, commit
//! chunks, backup descriptors) is hand-pickled through these helpers so the
//! stored representation is compact, portable, and independent of any
//! serialization framework — matching the paper's insistence on compact
//! pickled representations (§2.2).

use crate::errors::{CoreError, Result};

/// An append-only byte encoder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Creates an encoder with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Enc {
            buf: Vec::with_capacity(n),
        }
    }

    /// Creates an encoder that reuses `buf`'s allocation, clearing any
    /// existing contents.
    pub fn reusing(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Enc { buf }
    }

    /// Finishes, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Raw bytes with no length prefix.
    pub fn raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Length-prefixed (u32) byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.raw(v)
    }

    /// Length-prefixed (u32) UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }
}

/// A sequential byte decoder with bounds checking.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Starts decoding `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when all bytes have been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless every byte was consumed — catches format drift early.
    pub fn expect_done(&self, what: &str) -> Result<()> {
        if self.is_done() {
            Ok(())
        } else {
            Err(CoreError::Corrupt(format!(
                "{} has {} trailing bytes",
                what,
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(CoreError::Corrupt(format!(
                "truncated record: wanted {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Raw bytes of known length.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Length-prefixed (u32) byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Length-prefixed (u32) UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| CoreError::Corrupt("invalid UTF-8 in record".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Enc::new();
        e.u8(7).u16(300).u32(70_000).u64(u64::MAX - 1);
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 300);
        assert_eq!(d.u32().unwrap(), 70_000);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert!(d.is_done());
        d.expect_done("test").unwrap();
    }

    #[test]
    fn bytes_and_str_roundtrip() {
        let mut e = Enc::with_capacity(64);
        e.bytes(b"payload").str("héllo").bytes(b"");
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        assert_eq!(d.bytes().unwrap(), b"payload");
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.bytes().unwrap(), b"");
        assert!(d.is_done());
    }

    #[test]
    fn truncation_detected() {
        let mut e = Enc::new();
        e.u64(42);
        let buf = e.finish();
        let mut d = Dec::new(&buf[..7]);
        assert!(matches!(d.u64(), Err(CoreError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_detected() {
        let buf = [1u8, 2, 3];
        let mut d = Dec::new(&buf);
        let _ = d.u8().unwrap();
        assert!(matches!(d.expect_done("rec"), Err(CoreError::Corrupt(_))));
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut e = Enc::new();
        e.u32(1_000_000); // Claims a million bytes follow.
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        assert!(matches!(d.bytes(), Err(CoreError::Corrupt(_))));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut e = Enc::new();
        e.bytes(&[0xFF, 0xFE]);
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        assert!(matches!(d.str(), Err(CoreError::Corrupt(_))));
    }
}
