//! The concurrent read path: sharded caches serving validated reads
//! without the engine mutex.
//!
//! The paper runs the whole chunk store behind one lock (§4.2). That is
//! correct but serializes the dominant read-side costs — locating a
//! version, decrypting it, and hashing it — even for *distinct* chunks.
//! This module gives `ChunkStore::read` a lock-free-ish fast path:
//!
//! - A power-of-two array of [`parking_lot::RwLock`] shards, each holding
//!   a descriptor cache (chunk id → committed [`Descriptor`]) and a
//!   validated-body cache (chunk id → plaintext, keyed by the hash it was
//!   validated against).
//! - A shared partition-crypto table so readers can decrypt without
//!   touching the engine's leader cache.
//! - An atomic mirror of [`StoreHealth`] so fast reads fail closed the
//!   moment the engine poisons, without taking the engine lock.
//!
//! Correctness rests on three rules (documented for reviewers in
//! `docs/ARCHITECTURE.md`):
//!
//! 1. **Publication only under the engine mutex.** Shard entries are
//!    written while the writer path holds the engine lock (after a locked
//!    read, or after a commit), so a published descriptor is always one
//!    the engine considered current at publication time.
//! 2. **Hits are descriptor-validated.** A cached body is served only when
//!    its hash and length match the cached descriptor, and a cached
//!    descriptor only produces data that hashes to `desc.hash`. Under
//!    collision resistance, any fast-path success equals a committed pre-
//!    or post-state of a concurrent mutation.
//! 3. **Failure means fallback, never verdict.** Any fast-path anomaly —
//!    missing entry, unparsable bytes, hash mismatch (all possible under
//!    benign races with the cleaner or a concurrent commit) — falls back
//!    to the engine-locked authoritative path. Only that path, which holds
//!    the mutex and sees consistent state, may declare tampering and
//!    poison the store. The fast path therefore never produces a false
//!    positive *or* suppresses a true one.
//!
//! Lock order is strictly engine mutex → shard lock; the fast path takes
//! shard locks only, so the hierarchy is acyclic.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use tdb_storage::SharedUntrusted;

use crate::descriptor::Descriptor;
use crate::ids::{ChunkId, PartitionId};
use crate::metrics::{self, counters, modules};
use crate::params::PartitionCrypto;
use crate::store::StoreHealth;
use crate::version::{parse_version, VersionKind};

const HEALTH_LIVE: u8 = 0;
const HEALTH_DEGRADED: u8 = 1;
const HEALTH_POISONED: u8 = 2;

/// A validated plaintext body, keyed by the descriptor hash it satisfied.
struct CachedBody {
    hash: tdb_crypto::HashValue,
    body: Arc<Vec<u8>>,
    /// LRU stamp; atomic so read-lock holders can refresh it.
    last_used: AtomicU64,
}

/// One shard: descriptors and validated bodies for the chunk ids that
/// hash here.
#[derive(Default)]
struct ReadShard {
    descs: HashMap<ChunkId, Descriptor>,
    bodies: HashMap<ChunkId, CachedBody>,
}

/// The sharded concurrent read path of a `ChunkStore`.
pub(crate) struct ReadPath {
    /// Power-of-two shard array; empty when the fast path is disabled
    /// (`read_shards == 0`), which restores the paper's single-lock model.
    shards: Vec<RwLock<ReadShard>>,
    /// Partition id → runtime crypto, for decryption off the engine lock.
    cryptos: RwLock<HashMap<PartitionId, Arc<PartitionCrypto>>>,
    /// Raw untrusted store handle (same device the log appends to).
    store: SharedUntrusted,
    /// System-partition crypto (version headers are sealed under it).
    system: Arc<PartitionCrypto>,
    /// Mirror of the engine's `StoreHealth`, updated by the writer path.
    health: AtomicU8,
    /// Global LRU tick.
    tick: AtomicU64,
    /// Validated-body budget per shard.
    bodies_per_shard: usize,
    /// Descriptor budget per shard.
    descs_per_shard: usize,
    fast_hits: AtomicU64,
    fallbacks: AtomicU64,
    contention: AtomicU64,
    decompress_fallbacks: AtomicU64,
}

impl ReadPath {
    /// Builds a read path with `shards` shards (rounded up to a power of
    /// two; 0 disables the fast path entirely) and a total budget of
    /// `cache_chunks` validated bodies.
    pub(crate) fn new(
        store: SharedUntrusted,
        system: Arc<PartitionCrypto>,
        shards: usize,
        cache_chunks: usize,
    ) -> ReadPath {
        let n = if shards == 0 {
            0
        } else {
            shards.next_power_of_two()
        };
        let bodies_per_shard = cache_chunks.checked_div(n).map_or(0, |b| b.max(4));
        ReadPath {
            shards: (0..n).map(|_| RwLock::new(ReadShard::default())).collect(),
            cryptos: RwLock::new(HashMap::new()),
            store,
            system,
            health: AtomicU8::new(HEALTH_LIVE),
            tick: AtomicU64::new(0),
            bodies_per_shard,
            descs_per_shard: bodies_per_shard.saturating_mul(16).max(64),
            fast_hits: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            contention: AtomicU64::new(0),
            decompress_fallbacks: AtomicU64::new(0),
        }
    }

    fn enabled(&self) -> bool {
        !self.shards.is_empty()
    }

    fn shard(&self, id: ChunkId) -> &RwLock<ReadShard> {
        let mut h = DefaultHasher::new();
        id.hash(&mut h);
        let i = (h.finish() as usize) & (self.shards.len() - 1);
        &self.shards[i]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Mirrors the engine's health so fast reads can fail closed without
    /// the engine lock. Called by the writer path after every mutation.
    pub(crate) fn set_health(&self, health: &StoreHealth) {
        let v = match health {
            StoreHealth::Live => HEALTH_LIVE,
            StoreHealth::Degraded { .. } => HEALTH_DEGRADED,
            StoreHealth::Poisoned { .. } => HEALTH_POISONED,
        };
        self.health.store(v, Ordering::SeqCst);
    }

    /// Counts a read served by the engine-locked authoritative path.
    pub(crate) fn note_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// `(fast_hits, fallbacks, shard_contention, decompress_fallbacks)`
    /// counter snapshot.
    pub(crate) fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.fast_hits.load(Ordering::Relaxed),
            self.fallbacks.load(Ordering::Relaxed),
            self.contention.load(Ordering::Relaxed),
            self.decompress_fallbacks.load(Ordering::Relaxed),
        )
    }

    /// The fast read: serve `id` from shard state without the engine lock.
    /// Returns `None` for *any* miss or anomaly — the caller must fall
    /// back to the locked path, which alone may judge integrity.
    pub(crate) fn try_fast(&self, id: ChunkId) -> Option<Vec<u8>> {
        if !self.enabled() || self.health.load(Ordering::SeqCst) == HEALTH_POISONED {
            return None;
        }
        let shard = self.shard(id);
        let guard = match shard.try_read() {
            Some(g) => g,
            None => {
                // A writer holds this shard: count the contention, then
                // block (shard writes are brief).
                self.contention.fetch_add(1, Ordering::Relaxed);
                metrics::count(counters::READ_SHARD_CONTENTION);
                shard.read()
            }
        };
        let desc = *guard.descs.get(&id)?;
        debug_assert!(desc.is_written());
        if let Some(cb) = guard.bodies.get(&id) {
            if cb.hash == desc.hash && cb.body.len() == desc.size as usize {
                cb.last_used.store(self.next_tick(), Ordering::Relaxed);
                self.fast_hits.fetch_add(1, Ordering::Relaxed);
                return Some((*cb.body).clone());
            }
        }
        drop(guard);
        let crypto = self.cryptos.read().get(&id.partition).map(Arc::clone)?;
        let body = self.validate(id, &desc, &crypto)?;
        self.install_body(id, &desc, Arc::new(body.clone()));
        self.fast_hits.fetch_add(1, Ordering::Relaxed);
        Some(body)
    }

    /// Reads and validates `desc`'s version directly from the untrusted
    /// store (§4.5, off-lock). Every failure returns `None`: concurrent
    /// cleaning or committing can invalidate a published descriptor
    /// benignly, so no anomaly here is evidence of tampering.
    fn validate(
        &self,
        id: ChunkId,
        desc: &Descriptor,
        crypto: &PartitionCrypto,
    ) -> Option<Vec<u8>> {
        let mut buf = vec![0u8; desc.vlen as usize];
        {
            let _t = metrics::span(modules::UNTRUSTED_READ);
            self.store.read_at(desc.location, &mut buf).ok()?;
        }
        let raw = {
            let _t = metrics::span(modules::ENCRYPTION);
            parse_version(&self.system, &buf, desc.location).ok()??
        };
        if !matches!(raw.header.kind, VersionKind::Named | VersionKind::Relocated)
            || raw.header.id.pos != id.pos
        {
            return None;
        }
        let body = {
            let _t = metrics::span(modules::ENCRYPTION);
            raw.open_body(crypto, desc.location).ok()?
        };
        let hash = {
            let _t = metrics::span(modules::HASHING);
            crypto.hash(&body)
        };
        if hash != desc.hash {
            return None;
        }
        if raw.header.compressed {
            // Verify-then-decompress: the hash above covered the stored
            // envelope, so the decompressor only ever sees verified bytes.
            // `desc.size` is the logical length, which both caps the
            // allocation and pins the exact expected output.
            match crate::compress::decompress_body(&body, desc.size as usize) {
                Ok(plain) => return Some(plain),
                Err(_) => {
                    self.decompress_fallbacks.fetch_add(1, Ordering::Relaxed);
                    metrics::count(counters::DECOMPRESS_FALLBACKS);
                    return None;
                }
            }
        }
        Some(body)
    }

    /// Caches a freshly validated body, bounded per shard by LRU on clean
    /// entries. Re-checks the descriptor under the write lock so a body
    /// is never installed for an entry invalidated meanwhile.
    fn install_body(&self, id: ChunkId, desc: &Descriptor, body: Arc<Vec<u8>>) {
        let mut shard = self.shard(id).write();
        match shard.descs.get(&id) {
            Some(current) if current.hash == desc.hash => {}
            _ => return,
        }
        if shard.bodies.len() >= self.bodies_per_shard {
            if let Some(victim) = shard
                .bodies
                .iter()
                .filter(|(k, _)| **k != id)
                .min_by_key(|(_, b)| b.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k)
            {
                shard.bodies.remove(&victim);
            }
        }
        shard.bodies.insert(
            id,
            CachedBody {
                hash: desc.hash,
                body,
                last_used: AtomicU64::new(self.next_tick()),
            },
        );
    }

    /// Publishes a committed descriptor (and optionally its validated
    /// body) for fast reads. Must be called while the engine mutex is
    /// held, so the descriptor is current at publication time.
    pub(crate) fn publish(
        &self,
        id: ChunkId,
        desc: Descriptor,
        crypto: &Arc<PartitionCrypto>,
        body: Option<&[u8]>,
    ) {
        if !self.enabled() || !desc.is_written() {
            return;
        }
        {
            let cryptos = self.cryptos.read();
            if !cryptos.contains_key(&id.partition) {
                drop(cryptos);
                self.cryptos
                    .write()
                    .entry(id.partition)
                    .or_insert_with(|| Arc::clone(crypto));
            }
        }
        let mut shard = self.shard(id).write();
        if shard.descs.len() >= self.descs_per_shard && !shard.descs.contains_key(&id) {
            // Descriptor cache over budget: drop it wholesale (cheap to
            // repopulate from locked reads).
            shard.descs.clear();
        }
        shard.descs.insert(id, desc);
        if let Some(body) = body {
            if shard.bodies.len() >= self.bodies_per_shard {
                if let Some(victim) = shard
                    .bodies
                    .iter()
                    .filter(|(k, _)| **k != id)
                    .min_by_key(|(_, b)| b.last_used.load(Ordering::Relaxed))
                    .map(|(k, _)| *k)
                {
                    shard.bodies.remove(&victim);
                }
            }
            shard.bodies.insert(
                id,
                CachedBody {
                    hash: desc.hash,
                    body: Arc::new(body.to_vec()),
                    last_used: AtomicU64::new(self.next_tick()),
                },
            );
        }
    }

    /// Removes one chunk's shard state (its descriptor changed or it was
    /// deallocated). Called under the engine mutex by the writer path.
    pub(crate) fn invalidate(&self, id: ChunkId) {
        if !self.enabled() {
            return;
        }
        let mut shard = self.shard(id).write();
        shard.descs.remove(&id);
        shard.bodies.remove(&id);
    }

    /// Drops all cached descriptors and bodies but keeps the crypto table
    /// (partition set unchanged). Used after cleaning, which may relocate
    /// or reclaim any version.
    pub(crate) fn clear_shards(&self) {
        for shard in &self.shards {
            let mut g = shard.write();
            g.descs.clear();
            g.bodies.clear();
        }
    }

    /// Drops everything including cached partition crypto. Used when
    /// partitions are deallocated (ids and keys may be reused).
    pub(crate) fn clear_all(&self) {
        self.clear_shards();
        self.cryptos.write().clear();
    }
}
