//! Chunk descriptors and map-chunk bodies (§4.3).
//!
//! "The chunk map maps a chunk id to a *chunk descriptor*, which contains
//! the following information: status of chunk id (unallocated, unwritten,
//! or written); if written, current location in the untrusted store; if
//! written, expected hash value of chunk."
//!
//! Each map chunk stores a fixed-size vector of descriptors; an arrow from
//! descriptor to chunk is simultaneously a *location* link and a *hash*
//! link, which is the paper's central trick: the Merkle tree is embedded in
//! the location map, so a chunk is validated as it is located.

use tdb_crypto::HashValue;

use crate::codec::{Dec, Enc};
use crate::errors::{CoreError, Result};

/// Zero padding written in place of the hash for non-written slots; sized
/// for the largest supported digest (SHA-256).
const ZERO_HASH: [u8; 32] = [0u8; 32];

/// Allocation status of a chunk id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkStatus {
    /// Never allocated, or deallocated.
    Unallocated,
    /// Allocated in this session but not yet written. Never persisted:
    /// "allocated but unwritten chunks are deallocated automatically upon
    /// system restart" (§4.1).
    Unwritten,
    /// Written; `location`, `vlen`, `size`, and `hash` are meaningful.
    Written,
}

/// A chunk descriptor: one slot of a map chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// Allocation status.
    pub status: ChunkStatus,
    /// Byte offset of the chunk's current version in the untrusted store.
    pub location: u64,
    /// Total length of the version in the log (header + body ciphertext),
    /// used by the cleaner's utilization accounting.
    pub vlen: u32,
    /// Plaintext body size in bytes.
    pub size: u32,
    /// Expected hash of the chunk state, under the partition's hash.
    pub hash: HashValue,
}

impl Descriptor {
    /// The descriptor of an unallocated id.
    pub fn unallocated() -> Descriptor {
        Descriptor {
            status: ChunkStatus::Unallocated,
            location: 0,
            vlen: 0,
            size: 0,
            hash: HashValue::zero(0),
        }
    }

    /// The descriptor of an allocated-but-unwritten id.
    pub fn unwritten() -> Descriptor {
        Descriptor {
            status: ChunkStatus::Unwritten,
            ..Descriptor::unallocated()
        }
    }

    /// A written descriptor.
    pub fn written(location: u64, vlen: u32, size: u32, hash: HashValue) -> Descriptor {
        Descriptor {
            status: ChunkStatus::Written,
            location,
            vlen,
            size,
            hash,
        }
    }

    /// True when the chunk has a current version in the log.
    pub fn is_written(&self) -> bool {
        self.status == ChunkStatus::Written
    }

    /// Logical-content equality, used by partition diffs (§5.3): two
    /// written descriptors describe the same state when size and hash agree
    /// *and* they point at the same version (copies share versions; the
    /// cleaner moves shared versions in all partitions at once).
    pub fn same_state(&self, other: &Descriptor) -> bool {
        match (self.status, other.status) {
            (ChunkStatus::Written, ChunkStatus::Written) => {
                self.location == other.location
                    && self.size == other.size
                    && self.hash == other.hash
            }
            // Unwritten ids have no state; treat them like unallocated for
            // diff purposes.
            (a, b) => {
                (a == ChunkStatus::Unallocated || a == ChunkStatus::Unwritten)
                    == (b == ChunkStatus::Unallocated || b == ChunkStatus::Unwritten)
                    && a == b
            }
        }
    }

    /// Encoded size of one slot for a partition whose digests are
    /// `hash_len` bytes.
    pub fn encoded_len(hash_len: usize) -> usize {
        1 + 8 + 4 + 4 + hash_len
    }

    /// Encodes one fixed-size slot. Unwritten ids are *persisted as
    /// unallocated* — allocation is not durable until the chunk is written
    /// (§4.4).
    pub fn encode(&self, e: &mut Enc, hash_len: usize) {
        let status = match self.status {
            ChunkStatus::Unallocated | ChunkStatus::Unwritten => 0u8,
            ChunkStatus::Written => 1,
        };
        e.u8(status);
        e.u64(self.location);
        e.u32(self.vlen);
        e.u32(self.size);
        if self.status == ChunkStatus::Written {
            debug_assert_eq!(self.hash.len(), hash_len);
            e.raw(self.hash.as_bytes());
        } else if hash_len <= ZERO_HASH.len() {
            // Every supported digest fits; no heap allocation per slot.
            e.raw(&ZERO_HASH[..hash_len]);
        } else {
            e.raw(&vec![0u8; hash_len]);
        }
    }

    /// Inverse of [`Descriptor::encode`].
    ///
    /// # Errors
    ///
    /// Fails on a truncated slot or unknown status byte.
    pub fn decode(d: &mut Dec<'_>, hash_len: usize) -> Result<Descriptor> {
        let status = d.u8()?;
        let location = d.u64()?;
        let vlen = d.u32()?;
        let size = d.u32()?;
        let hash_raw = d.raw(hash_len)?;
        match status {
            0 => Ok(Descriptor::unallocated()),
            1 => Ok(Descriptor::written(
                location,
                vlen,
                size,
                HashValue::new(hash_raw),
            )),
            other => Err(CoreError::Corrupt(format!(
                "unknown descriptor status byte {other}"
            ))),
        }
    }
}

/// The decoded body of a map chunk: a fixed vector of descriptors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapChunk {
    /// Exactly `fanout` slots.
    pub slots: Vec<Descriptor>,
}

impl MapChunk {
    /// A map chunk of `fanout` unallocated slots (the synthesized content
    /// of a map chunk that has never been written).
    pub fn empty(fanout: usize) -> MapChunk {
        MapChunk {
            slots: vec![Descriptor::unallocated(); fanout],
        }
    }

    /// Serializes the map chunk body.
    pub fn encode(&self, hash_len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.slots.len() * Descriptor::encoded_len(hash_len));
        self.encode_into(hash_len, &mut out);
        out
    }

    /// Serializes into `out` (cleared first), reusing its allocation — the
    /// checkpoint writer encodes thousands of map chunks back to back and
    /// keeps one scratch buffer across them.
    pub fn encode_into(&self, hash_len: usize, out: &mut Vec<u8>) {
        let mut e = Enc::reusing(std::mem::take(out));
        for slot in &self.slots {
            slot.encode(&mut e, hash_len);
        }
        *out = e.finish();
    }

    /// Inverse of [`MapChunk::encode`].
    ///
    /// # Errors
    ///
    /// Fails when the body does not hold exactly `fanout` slots.
    pub fn decode(body: &[u8], fanout: usize, hash_len: usize) -> Result<MapChunk> {
        let mut d = Dec::new(body);
        let mut slots = Vec::with_capacity(fanout);
        for _ in 0..fanout {
            slots.push(Descriptor::decode(&mut d, hash_len)?);
        }
        d.expect_done("map chunk")?;
        Ok(MapChunk { slots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_roundtrip_written() {
        let h = HashValue::new(&[7u8; 20]);
        let desc = Descriptor::written(12345, 100, 80, h);
        let mut e = Enc::new();
        desc.encode(&mut e, 20);
        let buf = e.finish();
        assert_eq!(buf.len(), Descriptor::encoded_len(20));
        let back = Descriptor::decode(&mut Dec::new(&buf), 20).unwrap();
        assert_eq!(back, desc);
    }

    #[test]
    fn unwritten_persists_as_unallocated() {
        let mut e = Enc::new();
        Descriptor::unwritten().encode(&mut e, 20);
        let buf = e.finish();
        let back = Descriptor::decode(&mut Dec::new(&buf), 20).unwrap();
        assert_eq!(back.status, ChunkStatus::Unallocated);
    }

    #[test]
    fn map_chunk_roundtrip() {
        let mut mc = MapChunk::empty(8);
        mc.slots[3] = Descriptor::written(1, 2, 3, HashValue::new(&[1u8; 20]));
        mc.slots[7] = Descriptor::written(9, 8, 7, HashValue::new(&[2u8; 20]));
        let body = mc.encode(20);
        let back = MapChunk::decode(&body, 8, 20).unwrap();
        assert_eq!(back, mc);
    }

    #[test]
    fn map_chunk_wrong_fanout_rejected() {
        let mc = MapChunk::empty(8);
        let body = mc.encode(20);
        assert!(MapChunk::decode(&body, 9, 20).is_err());
        assert!(MapChunk::decode(&body, 7, 20).is_err());
    }

    #[test]
    fn zero_length_hash_partitions() {
        // HashKind::Null partitions store zero-length digests.
        let desc = Descriptor::written(5, 6, 7, HashValue::zero(0));
        let mut e = Enc::new();
        desc.encode(&mut e, 0);
        let buf = e.finish();
        assert_eq!(buf.len(), Descriptor::encoded_len(0));
        let back = Descriptor::decode(&mut Dec::new(&buf), 0).unwrap();
        assert_eq!(back, desc);
    }

    #[test]
    fn same_state_semantics() {
        let h = HashValue::new(&[1u8; 20]);
        let a = Descriptor::written(10, 5, 5, h);
        let b = Descriptor::written(10, 5, 5, h);
        let moved = Descriptor::written(99, 5, 5, h);
        assert!(a.same_state(&b));
        assert!(!a.same_state(&moved));
        assert!(Descriptor::unallocated().same_state(&Descriptor::unallocated()));
        assert!(!a.same_state(&Descriptor::unallocated()));
    }
}
