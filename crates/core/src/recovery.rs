//! Crash recovery (§4.8): rolling forward through the residual log.
//!
//! "A crash loses buffered updates to the chunk map, but they are recovered
//! upon system restart by rolling forward through the residual log. For
//! each chunk in the residual log, the recovery procedure computes the
//! descriptor based on its location and hash, and puts the descriptor in
//! the chunk-map cache."
//!
//! The procedure also redoes chunk deallocations (§4.8.1), applies cleaner
//! relocations (§5.5), and validates the log against the tamper-resistant
//! store per the configured protocol (§4.8.2): the chained hash and exact
//! tail for direct validation, or signed sequential commit chunks within
//! the (Δut, Δtu) window for counter-based validation.

use std::collections::HashMap;
use std::sync::Arc;

use tdb_crypto::SecretKey;
use tdb_storage::SharedUntrusted;

use crate::cache::MapCache;
use crate::descriptor::Descriptor;
use crate::errors::{CoreError, Result, TamperKind};
use crate::ids::{ChunkId, PartitionId};
use crate::leader::{PartitionLeader, SystemLeader};
use crate::log::{LogHashes, SegmentedLog, Superblock};
use crate::metrics::{self, modules};
use crate::params::CryptoParams;
use crate::store::{
    ChunkStoreConfig, ChunkStoreStats, DirectRecord, Inner, LeaderEntry, TrustedBackend,
    ValidationMode,
};
use crate::version::{
    parse_version, CleanerRecord, CommitRecord, DeallocRecord, NextSegmentRecord, RawVersion,
    VersionKind, UNNAMED_HEIGHT,
};

/// Opens an existing store: locate the leader via the superblock, roll the
/// residual log forward, and validate against the trusted store.
pub(crate) fn recover(
    store: SharedUntrusted,
    trusted: TrustedBackend,
    secret: SecretKey,
    config: ChunkStoreConfig,
) -> Result<Inner> {
    metrics::count(crate::metrics::counters::RECOVERY_ATTEMPTS);
    let superblock = Superblock::read(&store)?;
    let candidates =
        if superblock.prev_leader != 0 && superblock.prev_leader != superblock.current_leader {
            vec![superblock.current_leader, superblock.prev_leader]
        } else {
            vec![superblock.current_leader]
        };
    let mut first_err = None;
    for loc in candidates {
        match recover_from(
            Arc::clone(&store),
            trusted.clone(),
            secret.clone(),
            config.clone(),
            superblock,
            loc,
        ) {
            Ok(inner) => return Ok(inner),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    Err(first_err.unwrap_or(CoreError::TamperDetected(TamperKind::NoValidLeader)))
}

/// One buffered replay action (counter mode applies a commit set only once
/// its commit chunk validates; a torn tail is discarded wholesale).
enum ReplayAction {
    Named { raw: RawVersion, location: u64 },
    Dealloc(DeallocRecord),
    Cleaner(CleanerRecord),
}

fn recover_from(
    store: SharedUntrusted,
    trusted: TrustedBackend,
    secret: SecretKey,
    config: ChunkStoreConfig,
    superblock: Superblock,
    leader_loc: u64,
) -> Result<Inner> {
    // Kept for restarting recovery at a mid-residual system leader (an
    // interrupted checkpoint; see the `Named` arm of the replay loop).
    let reopen = (
        Arc::clone(&store),
        trusted.clone(),
        secret.clone(),
        config.clone(),
    );
    let sys_params = CryptoParams {
        cipher: config.system_cipher,
        hash: config.system_hash,
        key: secret,
    };
    let system = Arc::new(sys_params.runtime()?);

    // Provisional log geometry to read the leader's segment.
    let seg_size = config.segment_size;
    let log = SegmentedLog::new(
        Arc::clone(&store),
        &system,
        seg_size,
        config.max_segments,
        0,
        0,
    );
    let mut hashes = LogHashes::new(config.system_hash);

    // Read and identify the leader (§4.9.2: "the recovery procedure checks
    // that the chunk at the stored location is the leader").
    if leader_loc < crate::log::SEGMENT_BASE {
        return Err(CoreError::TamperDetected(TamperKind::NotALeader {
            location: leader_loc,
        }));
    }
    let leader_seg = log.segment_of(leader_loc);
    let mut seg_buf = log.read_segment(leader_seg)?;
    let mut off = (leader_loc - log.segment_offset(leader_seg)) as usize;
    if off >= seg_buf.len() {
        return Err(CoreError::TamperDetected(TamperKind::NotALeader {
            location: leader_loc,
        }));
    }
    let leader_raw = parse_version(&system, &seg_buf[off..], leader_loc)?.ok_or(
        CoreError::TamperDetected(TamperKind::NotALeader {
            location: leader_loc,
        }),
    )?;
    if leader_raw.header.kind != VersionKind::Named
        || leader_raw.header.id != ChunkId::system_leader()
    {
        return Err(CoreError::TamperDetected(TamperKind::NotALeader {
            location: leader_loc,
        }));
    }
    let leader_body = {
        let _t = metrics::span(modules::ENCRYPTION);
        leader_raw.open_body(&system, leader_loc)?
    };
    let sys_leader = SystemLeader::decode(&leader_body, &sys_params)?;
    if sys_leader.log.segment_size != seg_size {
        return Err(CoreError::Corrupt(format!(
            "configured segment size {seg_size} does not match stored {}",
            sys_leader.log.segment_size
        )));
    }

    // Direct validation: the chain restarts at the leader.
    let leader_bytes = seg_buf[off..off + leader_raw.total_len].to_vec();
    hashes.absorb(&leader_bytes);

    let mut inner = Inner {
        map_cache: MapCache::new(config.map_cache_capacity),
        lazy: crate::engine::dirty::DirtyTreeAccumulator::new(config.lazy_integrity),
        system: Arc::clone(&system),
        trusted,
        log,
        hashes,
        sys_alloc_next: sys_leader.map.next_rank,
        sys_alloc_free: sys_leader.map.free_ranks.clone(),
        sys_reserved: std::collections::HashSet::new(),
        sys_leader,
        leaders: HashMap::new(),
        commit_count: 0,
        trusted_count: 0,
        leader_version: Some((leader_loc, leader_raw.total_len as u32)),
        superblock,
        stats: ChunkStoreStats::default(),
        health: crate::store::StoreHealth::Live,
        wrote_log: false,
        config,
    };
    inner.log.mark_residual(leader_seg);

    // Direct mode reads {chain, tail} up front to bound the scan.
    let direct_record = match (&inner.config.validation, &inner.trusted) {
        (ValidationMode::DirectHash, TrustedBackend::Register(r)) => {
            let _t = metrics::span(modules::TRUSTED_STORE);
            let bytes = r.read()?;
            if bytes.is_empty() {
                return Err(CoreError::TamperDetected(TamperKind::LogHashMismatch));
            }
            Some(DirectRecord::decode(&bytes)?)
        }
        (ValidationMode::DirectHash, TrustedBackend::Counter(_)) => {
            return Err(CoreError::Corrupt(
                "direct validation configured with a counter backend".into(),
            ))
        }
        (ValidationMode::Counter { .. }, TrustedBackend::Counter(_)) => None,
        (ValidationMode::Counter { .. }, TrustedBackend::Register(_)) => {
            return Err(CoreError::Corrupt(
                "counter validation configured with a register backend".into(),
            ))
        }
    };

    // ---- Roll forward -------------------------------------------------------
    let counter_mode = direct_record.is_none();
    off += leader_raw.total_len;
    let mut seg = leader_seg;
    let mut pending: Vec<ReplayAction> = Vec::new();
    // Descriptors computed for relocated versions in the current set.
    let mut relocated: HashMap<u64, RelocatedVersion> = HashMap::new();
    // Counter mode: hash of the current set and the count sequence.
    let mut set_hasher = inner.config.system_hash.hasher();
    // The first set is the checkpoint's own, covering the leader alone.
    set_hasher.update(&leader_bytes);
    let mut last_count: Option<u64> = None;
    // The validated tail (end of last accepted commit set / direct tail).
    let mut valid_tail = leader_loc + leader_raw.total_len as u64;

    'scan: loop {
        let location = inner.log.segment_offset(seg) + off as u64;
        if let Some(rec) = &direct_record {
            if location == rec.tail {
                break 'scan;
            }
            if location > rec.tail {
                return Err(CoreError::TamperDetected(TamperKind::LogHashMismatch));
            }
        }
        let parsed = if off >= seg_buf.len() {
            None
        } else {
            match parse_version(&system, &seg_buf[off..], location) {
                Ok(p) => p,
                Err(_) if counter_mode => None, // Torn tail.
                Err(e) => return Err(e),
            }
        };
        let raw = match parsed {
            Some(r) => r,
            None => {
                if direct_record.is_some() {
                    // The validated range ended before the trusted tail.
                    return Err(CoreError::TamperDetected(TamperKind::LogHashMismatch));
                }
                break 'scan;
            }
        };
        let total_len = raw.total_len;
        let bytes = &seg_buf[off..off + total_len];
        inner.hashes.absorb(bytes);
        let next_off = off + total_len;

        match raw.header.kind {
            VersionKind::NextSegment => {
                set_hasher.update(bytes);
                let body = raw.open_body(&system, location)?;
                let rec = NextSegmentRecord::decode(&body)?;
                // Extend replayed log geometry for segments allocated after
                // the checkpoint.
                while inner.sys_leader.log.num_segments <= rec.next_segment {
                    inner.sys_leader.log.num_segments += 1;
                    inner.sys_leader.log.utilization.push(0);
                }
                inner
                    .sys_leader
                    .log
                    .free_segments
                    .retain(|s| *s != rec.next_segment);
                seg = rec.next_segment;
                seg_buf = inner.log.read_segment(seg)?;
                off = 0;
                inner.log.mark_residual(seg);
                continue 'scan;
            }
            VersionKind::Commit => {
                if !counter_mode {
                    return Err(CoreError::Corrupt(
                        "commit chunk found in a direct-validation log".into(),
                    ));
                }
                let body = match raw.open_body(&system, location) {
                    Ok(b) => b,
                    Err(_) => break 'scan, // Torn commit chunk.
                };
                let rec = match CommitRecord::decode(&body) {
                    Ok(r) => r,
                    Err(_) => break 'scan,
                };
                if !rec.verify(&system) {
                    return Err(CoreError::TamperDetected(TamperKind::BadCommitSignature {
                        location,
                    }));
                }
                let set_hash =
                    std::mem::replace(&mut set_hasher, inner.config.system_hash.hasher())
                        .finalize();
                if set_hash.as_bytes() != rec.set_hash.as_slice() {
                    // §4.9.3: "the recovery procedure stops when the hash of
                    // a commit set does not match" — a torn tail. Deleted or
                    // replayed *middle* sets surface as a count-window
                    // violation below.
                    pending.clear();
                    break 'scan;
                }
                if let Some(prev) = last_count {
                    if rec.count != prev + 1 {
                        return Err(CoreError::TamperDetected(
                            TamperKind::NonSequentialCommitCount {
                                expected: prev + 1,
                                got: rec.count,
                            },
                        ));
                    }
                }
                last_count = Some(rec.count);
                // The set is valid: apply its buffered actions in order.
                for action in pending.drain(..) {
                    apply_action(&mut inner, action, &mut relocated)?;
                }
                relocated.clear();
                valid_tail = location + total_len as u64;
                off = next_off;
                continue 'scan;
            }
            VersionKind::Dealloc => {
                set_hasher.update(bytes);
                let body = raw.open_body(&system, location)?;
                let rec = DeallocRecord::decode(&body)?;
                let action = ReplayAction::Dealloc(rec);
                if counter_mode {
                    pending.push(action);
                } else {
                    apply_action(&mut inner, action, &mut relocated)?;
                }
            }
            VersionKind::Cleaner => {
                set_hasher.update(bytes);
                let body = raw.open_body(&system, location)?;
                let rec = CleanerRecord::decode(&body)?;
                let action = ReplayAction::Cleaner(rec);
                if counter_mode {
                    pending.push(action);
                } else {
                    apply_action(&mut inner, action, &mut relocated)?;
                }
            }
            VersionKind::Named | VersionKind::Relocated => {
                if counter_mode
                    && raw.header.kind == VersionKind::Named
                    && raw.header.id == ChunkId::system_leader()
                {
                    // A mid-residual system leader: a checkpoint whose
                    // superblock update never landed, possibly with the
                    // trusted counter already advanced. Live checkpoints
                    // restart the commit set at the leader ("as if the
                    // leader were the only chunk in the commit set",
                    // §4.8.2.2), so the set accumulated here can never
                    // match — adopt the checkpoint by restarting recovery
                    // rooted at this leader, which replays exactly that
                    // set shape. If the interrupted checkpoint is itself
                    // torn (no valid commit chunk after the leader), fall
                    // back to treating it as a discarded torn tail.
                    match recover_from(
                        Arc::clone(&reopen.0),
                        reopen.1.clone(),
                        reopen.2.clone(),
                        reopen.3.clone(),
                        superblock,
                        location,
                    ) {
                        Ok(adopted) => return Ok(adopted),
                        Err(_) => {
                            pending.clear();
                            break 'scan;
                        }
                    }
                }
                set_hasher.update(bytes);
                if raw.header.id.pos.height == UNNAMED_HEIGHT {
                    return Err(CoreError::Corrupt(
                        "named version with reserved height".into(),
                    ));
                }
                let action = ReplayAction::Named { raw, location };
                if counter_mode {
                    pending.push(action);
                } else {
                    apply_action(&mut inner, action, &mut relocated)?;
                }
            }
        }
        off = next_off;
        if direct_record.is_some() {
            valid_tail = location + total_len as u64;
        }
    }

    // ---- Validate against the trusted store ---------------------------------
    match inner.config.validation {
        ValidationMode::DirectHash => {
            let rec = direct_record.expect("direct mode");
            if valid_tail != rec.tail || !inner.hashes.chain.ct_eq(&rec.chain) {
                return Err(CoreError::TamperDetected(TamperKind::LogHashMismatch));
            }
        }
        ValidationMode::Counter { delta_ut, delta_tu } => {
            let u = match last_count {
                Some(c) => c,
                // Not even the checkpoint's commit chunk validated: this
                // checkpoint never completed. The caller falls back to the
                // previous leader.
                None => {
                    return Err(CoreError::TamperDetected(
                        TamperKind::CommitSetHashMismatch {
                            location: leader_loc,
                        },
                    ))
                }
            };
            let t = match &inner.trusted {
                TrustedBackend::Counter(c) => {
                    let _t = metrics::span(modules::TRUSTED_STORE);
                    c.get()?
                }
                TrustedBackend::Register(_) => unreachable!("checked above"),
            };
            // Accept t - Δtu ≤ u ≤ t + Δut + 1 (the +1 covers a commit
            // durable in the log whose counter flush was lost to the crash).
            let low_ok = u + delta_tu >= t;
            let high_ok = u <= t + delta_ut + 1;
            if !low_ok || !high_ok {
                return Err(CoreError::TamperDetected(
                    TamperKind::CounterWindowViolated { trusted: t, log: u },
                ));
            }
            inner.commit_count = u;
            inner.trusted_count = t;
            if u > t {
                inner.advance_counter(u)?;
            }
        }
    }

    // Position the append cursor at the validated tail.
    let tail_seg = inner.log.segment_of(valid_tail);
    let tail_off = (valid_tail - inner.log.segment_offset(tail_seg)) as u32;
    inner.log.set_tail(tail_seg, tail_off);
    Ok(inner)
}

/// A relocated version awaiting its cleaner record.
struct RelocatedVersion {
    desc: Descriptor,
}

fn apply_action(
    inner: &mut Inner,
    action: ReplayAction,
    relocated: &mut HashMap<u64, RelocatedVersion>,
) -> Result<()> {
    match action {
        ReplayAction::Named { raw, location } => apply_named(inner, raw, location, relocated),
        ReplayAction::Dealloc(rec) => {
            for id in rec.ids {
                if id.partition.is_system() && id.pos.is_data() {
                    // A partition leader was deallocated: the partition and
                    // its cached state go with it.
                    let p = PartitionId::from_leader_rank(id.pos.rank);
                    inner.leaders.remove(&p);
                    inner.map_cache.purge_partition(p);
                    inner.set_descriptor(id, Descriptor::unallocated())?;
                    inner.sys_leader.map.push_free(id.pos.rank);
                    inner.sys_alloc_free.push(id.pos.rank);
                } else {
                    inner.set_descriptor(id, Descriptor::unallocated())?;
                    if let Ok(entry) = inner.leader_entry(id.partition) {
                        entry.leader.push_free(id.pos.rank);
                        entry.alloc_free.push(id.pos.rank);
                        entry.dirty = true;
                    }
                }
            }
            Ok(())
        }
        ReplayAction::Cleaner(rec) => {
            let Some(reloc) = relocated.get(&rec.new_location) else {
                return Err(CoreError::Corrupt(
                    "cleaner record references unknown relocated version".into(),
                ));
            };
            let desc = reloc.desc;
            for q in rec.current_in {
                inner.ensure_capacity_for_pos(q, rec.pos)?;
                inner.set_descriptor(ChunkId::new(q, rec.pos), desc)?;
            }
            Ok(())
        }
    }
}

fn apply_named(
    inner: &mut Inner,
    raw: RawVersion,
    location: u64,
    relocated: &mut HashMap<u64, RelocatedVersion>,
) -> Result<()> {
    let id = raw.header.id;

    // A mid-residual system leader: an interrupted checkpoint whose
    // superblock update never landed. Adopt its state and continue.
    if id == ChunkId::system_leader() {
        let body = raw.open_body(&inner.system, location)?;
        let sys_params = CryptoParams {
            cipher: inner.config.system_cipher,
            hash: inner.config.system_hash,
            key: inner.sys_leader.map.params.key.clone(),
        };
        let new_leader = SystemLeader::decode(&body, &sys_params)?;
        // Retire the previous leader version in utilization terms.
        if let Some((old_loc, old_vlen)) = inner.leader_version {
            let seg = inner.log.segment_of(old_loc) as usize;
            if let Some(u) = inner.sys_leader.log.utilization.get_mut(seg) {
                *u = u.saturating_sub(old_vlen);
            }
        }
        inner.sys_leader = new_leader;
        inner.sys_alloc_next = inner.sys_alloc_next.max(inner.sys_leader.map.next_rank);
        inner.leader_version = Some((location, raw.total_len as u32));
        let seg = inner.log.segment_of(location) as usize;
        if let Some(u) = inner.sys_leader.log.utilization.get_mut(seg) {
            *u += raw.total_len as u32;
        }
        return Ok(());
    }

    // Decrypt with the owning partition's cipher and compute the descriptor
    // ("the recovery procedure computes the descriptor based on its
    // location and hash", §4.8).
    let crypto = inner.crypto_for(id.partition)?;
    let body = {
        let _t = metrics::span(modules::ENCRYPTION);
        raw.open_body(&crypto, location)?
    };
    let hash = {
        let _t = metrics::span(modules::HASHING);
        crypto.hash(&body)
    };
    // The hash covers the stored bytes, but a descriptor's `size` is the
    // logical length: for a compressed envelope, read the declared length
    // from its header — bounded by the largest version the log accepts —
    // without ever running the decompressor during recovery.
    let size = if raw.header.compressed {
        let max = inner.log.max_version_len() as usize;
        crate::compress::declared_len(&body)
            .filter(|&n| n <= max)
            .ok_or(CoreError::TamperDetected(TamperKind::UndecryptableChunk {
                location,
            }))? as u32
    } else {
        body.len() as u32
    };
    let desc = Descriptor::written(location, raw.total_len as u32, size, hash);

    if raw.header.kind == VersionKind::Relocated {
        // Applied only through its cleaner record (§5.5), which names the
        // partitions where it is actually current.
        relocated.insert(location, RelocatedVersion { desc });
        return Ok(());
    }

    inner.ensure_capacity_for_pos(id.partition, id.pos)?;

    if id.partition.is_system() && id.pos.is_data() {
        // A partition leader write: decode and refresh the partition cache.
        let p = PartitionId::from_leader_rank(id.pos.rank);
        let was_written = inner.get_descriptor(id)?.is_written();
        let leader = PartitionLeader::decode(&body)?;
        let is_new_copy = !was_written && leader.source.is_some();
        inner.set_descriptor(id, desc)?;
        inner.sys_leader.map.next_rank = inner.sys_leader.map.next_rank.max(id.pos.rank + 1);
        inner.sys_alloc_next = inner.sys_alloc_next.max(inner.sys_leader.map.next_rank);
        inner.sys_leader.map.unfree(id.pos.rank);
        if is_new_copy {
            // Reproduce the copy-time cache cloning (§5.3): the source's
            // buffered map overrides as of this point in the log.
            let src = leader.source.expect("checked");
            inner.map_cache.clone_dirty(src, p);
        }
        match inner.leaders.get_mut(&p) {
            Some(entry) => {
                let alloc_next = entry.alloc_next.max(leader.next_rank);
                entry.leader = leader;
                entry.alloc_next = alloc_next;
                entry.dirty = false;
            }
            None => {
                inner.leaders.insert(p, LeaderEntry::new(leader)?);
            }
        }
        return Ok(());
    }

    if id.pos.is_map() {
        // Map chunks in the residual log come from interrupted checkpoints.
        inner.set_descriptor(id, desc)?;
        // Cached content, if any, equals this version by construction.
        inner.map_cache.mark_clean(id.partition, id.pos);
        return Ok(());
    }

    // Ordinary data chunk.
    inner.set_descriptor(id, desc)?;
    if !id.partition.is_system() {
        let entry = inner.leader_entry(id.partition)?;
        entry.leader.next_rank = entry.leader.next_rank.max(id.pos.rank + 1);
        entry.alloc_next = entry.alloc_next.max(entry.leader.next_rank);
        entry.leader.unfree(id.pos.rank);
        entry.alloc_free.retain(|r| *r != id.pos.rank);
        entry.dirty = true;
    }
    Ok(())
}
