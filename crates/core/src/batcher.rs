//! Group commit: batching concurrent committers behind one flush.
//!
//! The paper's engine serializes everything behind one mutex and pays one
//! device flush per commit — "a commit operation waits until the commit
//! set is written to the untrusted store reliably" (§4.8.2.1). With many
//! committer threads that flush dominates. This module amortizes it the
//! classic group-commit way while keeping the paper's durability rule
//! per *batch*:
//!
//! - Committers enqueue their op set and park on a condition variable.
//! - The first committer to find no leader active becomes the **leader**:
//!   it drains up to `commit_batch_max` queued commits, takes the engine
//!   lock once, and runs [`crate::store::Inner::commit_batch`] — every
//!   member is presealed through the parallel crypto pipeline, its appends
//!   coalesce into segment-sized runs (one `write_at` per run instead of
//!   one per version), and a single flush ends the batch.
//! - The leader publishes each member's own `Result`, *then* wakes the
//!   waiters. A waiter therefore never observes success before its bytes
//!   are durable (durability-before-ack), and a failing member is rejected
//!   without poisoning its batch-mates (per-commit atomicity).
//!
//! The queue is intentionally dumb: ordering is arrival order, fairness
//! comes from draining the front, and a leader whose own entry missed the
//! drained window (more than `commit_batch_max` older entries) simply
//! loops and leads again.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::errors::Result;
use crate::ids::ChunkId;
use crate::store::{ChunkStore, CommitOp};

/// One enqueued commit, shared between its waiter and the batch leader.
struct PendingCommit {
    /// The op set; taken (once) by the leader that drains this entry.
    ops: Mutex<Option<Vec<CommitOp>>>,
    /// Chunk ids this commit can change, collected before `ops` is
    /// consumed so the leader can scrub read-path shards per member.
    touched: Vec<ChunkId>,
    /// True when the commit deallocates a partition (ids may be reused,
    /// so every shard entry must go).
    clear_all: bool,
    /// The member's outcome, set by the leader before it wakes waiters.
    result: Mutex<Option<Result<()>>>,
}

/// Shared queue state: pending commits plus the single-leader latch.
struct BatchQueue {
    queue: VecDeque<Arc<PendingCommit>>,
    leader_active: bool,
}

/// The group-commit coordinator owned by a [`ChunkStore`].
pub(crate) struct CommitBatcher {
    shared: Mutex<BatchQueue>,
    wakeup: Condvar,
    /// Most members a leader drains into one batch.
    max: usize,
}

impl CommitBatcher {
    pub(crate) fn new(max: usize) -> CommitBatcher {
        CommitBatcher {
            shared: Mutex::new(BatchQueue {
                queue: VecDeque::new(),
                leader_active: false,
            }),
            wakeup: Condvar::new(),
            max: max.max(1),
        }
    }

    /// Commits currently enqueued and waiting for a leader. The background
    /// cleaner polls this between slices to yield to committers.
    pub(crate) fn queued(&self) -> usize {
        self.shared.lock().queue.len()
    }
}

impl ChunkStore {
    /// Group-commit entry point: enqueue, lead or wait, return this
    /// commit's own result once its batch reached durability.
    pub(crate) fn commit_batched(&self, ops: Vec<CommitOp>) -> Result<()> {
        let batcher = self.batcher.as_ref().expect("routed only when built");
        let mut touched: Vec<ChunkId> = Vec::new();
        let mut clear_all = false;
        for op in &ops {
            match op {
                CommitOp::WriteChunk { id, .. } | CommitOp::DeallocChunk { id } => {
                    touched.push(*id);
                }
                CommitOp::DeallocPartition { .. } => clear_all = true,
                CommitOp::CreatePartition { .. } | CommitOp::CopyPartition { .. } => {}
            }
        }
        let entry = Arc::new(PendingCommit {
            ops: Mutex::new(Some(ops)),
            touched,
            clear_all,
            result: Mutex::new(None),
        });
        let mut shared = batcher.shared.lock();
        shared.queue.push_back(Arc::clone(&entry));
        let mut yielded = false;
        loop {
            // The leader publishes results before clearing the latch and
            // notifying, so this check is the ack point.
            if let Some(result) = entry.result.lock().take() {
                return result;
            }
            if shared.leader_active {
                batcher.wakeup.wait(&mut shared);
                continue;
            }
            // Commit delay, once, at its cheapest: a would-be leader of a
            // batch of one yields the core a single time so committers
            // unparked by the previous batch can enqueue behind it. One
            // scheduler quantum against a device flush is a good trade;
            // a lone committer pays it once and never again.
            if shared.queue.len() == 1 && !yielded {
                yielded = true;
                drop(shared);
                std::thread::yield_now();
                shared = batcher.shared.lock();
                continue;
            }
            shared.leader_active = true;
            let take = shared.queue.len().min(batcher.max);
            let members: Vec<Arc<PendingCommit>> = shared.queue.drain(..take).collect();
            drop(shared);
            self.run_batch(&members);
            shared = batcher.shared.lock();
            shared.leader_active = false;
            batcher.wakeup.notify_all();
            // Our own entry was usually in `members`; if more than `max`
            // older commits were queued it was not, and the loop leads (or
            // waits) again until its result appears.
        }
    }

    /// Leader body: one engine-lock hold for the whole batch, then
    /// per-member read-path scrubbing, publication, and result delivery.
    fn run_batch(&self, members: &[Arc<PendingCommit>]) {
        let mut inner = self.inner.lock();
        if inner.check_writable().is_err() {
            // Refuse the whole batch with fresh per-member errors; no
            // member state was touched.
            for m in members {
                let err = inner.check_writable().expect_err("checked unhealthy");
                *m.result.lock() = Some(Err(err));
            }
            self.reads.set_health(&inner.health);
            return;
        }
        let sets: Vec<Vec<CommitOp>> = members
            .iter()
            .map(|m| m.ops.lock().take().expect("ops taken once, by the leader"))
            .collect();
        let results = inner.commit_batch(sets);
        debug_assert_eq!(results.len(), members.len());
        for (m, result) in members.iter().zip(results) {
            // Scrub shard state on every outcome — a member can be durably
            // applied even when its result is an error (e.g. its follow-on
            // checkpoint failed), so touched ids never survive the attempt.
            if m.clear_all {
                self.reads.clear_all();
            } else {
                for id in &m.touched {
                    self.reads.invalidate(*id);
                }
            }
            if result.is_ok() {
                for id in &m.touched {
                    if let (Ok(desc), Ok(crypto)) =
                        (inner.get_descriptor(*id), inner.crypto_for(id.partition))
                    {
                        self.reads.publish(*id, desc, &crypto, None);
                    }
                }
            }
            *m.result.lock() = Some(result);
        }
        self.reads.set_health(&inner.health);
        self.note_engine_state(&inner);
    }
}
