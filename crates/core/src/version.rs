//! Chunk versions: the representation of chunks in the log (§4.9.1).
//!
//! "Each chunk version comprises a header followed by a body. The header
//! contains the chunk id and the size of the chunk state. The header of an
//! unnamed chunk contains a reserved id. Both the header and the body are
//! encrypted with the secret key." With multiple partitions, "chunk headers
//! are encrypted with the system key and cipher, so that cleaning and
//! recovery may decrypt the header without knowing the partition id of the
//! chunk" (§5.4); bodies use the partition cipher.
//!
//! On-log layout of one version:
//!
//! ```text
//! [u16 header_ct_len] [IV_s ‖ E_s(header)] [IV_p ‖ E_p(body)]
//! ```
//!
//! A `header_ct_len` of zero marks the end of the used part of a segment
//! (fresh segments are zero-filled).

use crate::codec::{Dec, Enc};
use crate::errors::{CoreError, Result, TamperKind};
use crate::ids::{ChunkId, PartitionId, Position};
use crate::params::PartitionCrypto;

/// Reserved height stored in headers of unnamed chunks (§4.8.1: "they do
/// not have chunk ids or positions in the chunk map").
pub const UNNAMED_HEIGHT: u8 = 0xFE;

/// What a version in the log is (the `kind` header byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionKind {
    /// A named chunk: data, map chunk, or leader, per its id.
    Named,
    /// Unnamed *deallocate chunk* recording deallocations for recovery
    /// (§4.8.1).
    Dealloc,
    /// Unnamed *commit chunk*: signed hash and count of the commit set
    /// (§4.8.2.2).
    Commit,
    /// Unnamed *next-segment chunk* chaining residual-log segments (§4.9.4).
    NextSegment,
    /// Unnamed *cleaner chunk* recording where a relocated version is
    /// current (§5.5).
    Cleaner,
    /// A named chunk rewritten by the cleaner. Not applied to its header
    /// partition during recovery; the accompanying [`CleanerRecord`] says
    /// which partitions it is current in.
    Relocated,
}

impl VersionKind {
    fn tag(self) -> u8 {
        match self {
            VersionKind::Named => 0,
            VersionKind::Dealloc => 1,
            VersionKind::Commit => 2,
            VersionKind::NextSegment => 3,
            VersionKind::Cleaner => 4,
            VersionKind::Relocated => 5,
        }
    }

    fn from_tag(tag: u8) -> Option<VersionKind> {
        Some(match tag {
            0 => VersionKind::Named,
            1 => VersionKind::Dealloc,
            2 => VersionKind::Commit,
            3 => VersionKind::NextSegment,
            4 => VersionKind::Cleaner,
            5 => VersionKind::Relocated,
            _ => return None,
        })
    }

    /// True for unnamed chunks (no position in the chunk map).
    pub fn is_unnamed(self) -> bool {
        !matches!(self, VersionKind::Named | VersionKind::Relocated)
    }
}

/// The decrypted header of a chunk version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionHeader {
    /// Version kind.
    pub kind: VersionKind,
    /// Chunk id (reserved values for unnamed kinds).
    pub id: ChunkId,
    /// Plaintext body length.
    pub body_len: u32,
    /// Sealed body length (IV + ciphertext), so any reader can skip the
    /// body without knowing the partition's cipher.
    pub body_ct_len: u32,
    /// The body is a compressed envelope ([`crate::compress`]); stored as
    /// the high bit of the kind tag, so uncompressed versions are
    /// byte-identical to stores that predate the knob. `body_len` is then
    /// the *stored* (compressed) length; the descriptor keeps the logical
    /// size. Carried inside the encrypted header, the flag is as
    /// tamper-protected as the kind itself.
    pub compressed: bool,
}

impl VersionHeader {
    /// The reserved id carried by unnamed chunks.
    pub fn unnamed_id() -> ChunkId {
        ChunkId::new(
            PartitionId::SYSTEM,
            Position {
                height: UNNAMED_HEIGHT,
                rank: 0,
            },
        )
    }

    fn encode(&self) -> [u8; 22] {
        // Fixed 22-byte layout; a stack array keeps the (hot) seal path
        // free of a per-version heap allocation.
        let mut out = [0u8; 22];
        out[0] = self.kind.tag() | if self.compressed { 0x80 } else { 0 };
        out[1..5].copy_from_slice(&self.id.partition.0.to_le_bytes());
        out[5] = self.id.pos.height;
        out[6..14].copy_from_slice(&self.id.pos.rank.to_le_bytes());
        out[14..18].copy_from_slice(&self.body_len.to_le_bytes());
        out[18..22].copy_from_slice(&self.body_ct_len.to_le_bytes());
        out
    }

    fn decode(buf: &[u8]) -> Result<VersionHeader> {
        let mut d = Dec::new(buf);
        let tag = d.u8()?;
        let compressed = tag & 0x80 != 0;
        let kind = VersionKind::from_tag(tag & 0x7F)
            .ok_or_else(|| CoreError::Corrupt("unknown version kind".into()))?;
        let partition = PartitionId(d.u32()?);
        let height = d.u8()?;
        let rank = d.u64()?;
        let body_len = d.u32()?;
        let body_ct_len = d.u32()?;
        d.expect_done("version header")?;
        Ok(VersionHeader {
            kind,
            id: ChunkId::new(partition, Position { height, rank }),
            body_len,
            body_ct_len,
            compressed,
        })
    }
}

/// Builds the full on-log bytes of one version.
///
/// `system` encrypts the header; `body_crypto` encrypts the body (the
/// partition's cipher for named versions, the system cipher for unnamed).
pub fn seal_version(
    system: &PartitionCrypto,
    body_crypto: &PartitionCrypto,
    kind: VersionKind,
    id: ChunkId,
    body: &[u8],
) -> Vec<u8> {
    seal_version_flagged(system, body_crypto, kind, id, body, false)
}

/// [`seal_version`] with the header's compressed flag under caller
/// control. `body` is the bytes as stored — the compressed envelope when
/// `compressed` — and `body_len` in the header describes exactly those.
pub fn seal_version_flagged(
    system: &PartitionCrypto,
    body_crypto: &PartitionCrypto,
    kind: VersionKind,
    id: ChunkId,
    body: &[u8],
    compressed: bool,
) -> Vec<u8> {
    // Sealed lengths are deterministic (IV + padded ciphertext), so the
    // whole version can be laid into one buffer and ciphered in place.
    let body_ct_len = body_crypto.sealed_len(body.len());
    let header = VersionHeader {
        kind,
        id,
        body_len: body.len() as u32,
        body_ct_len: body_ct_len as u32,
        compressed,
    };
    let header_bytes = header.encode();
    let header_ct_len = system.sealed_len(header_bytes.len());
    let mut out = Vec::with_capacity(2 + header_ct_len + body_ct_len);
    out.extend_from_slice(&(header_ct_len as u16).to_le_bytes());
    system.encrypt_append(&header_bytes, &mut out);
    debug_assert_eq!(out.len(), 2 + header_ct_len);
    body_crypto.encrypt_append(body, &mut out);
    debug_assert_eq!(out.len(), 2 + header_ct_len + body_ct_len);
    out
}

/// Total on-log length a sealed version will occupy.
pub fn sealed_version_len(
    system: &PartitionCrypto,
    body_crypto: &PartitionCrypto,
    body_len: usize,
) -> usize {
    // Header plaintext is always 22 bytes.
    2 + system.sealed_len(22) + body_crypto.sealed_len(body_len)
}

/// A parsed version: header plus the raw (still sealed) body bytes.
#[derive(Debug)]
pub struct RawVersion {
    /// Decrypted header.
    pub header: VersionHeader,
    /// Sealed body (IV + ciphertext).
    pub sealed_body: Vec<u8>,
    /// Total on-log length of this version.
    pub total_len: usize,
}

impl RawVersion {
    /// Decrypts the body with the appropriate partition crypto.
    ///
    /// # Errors
    ///
    /// Signals tamper detection when the body does not decrypt or its
    /// length disagrees with the header.
    pub fn open_body(&self, body_crypto: &PartitionCrypto, location: u64) -> Result<Vec<u8>> {
        let body = body_crypto.decrypt(&self.sealed_body, location)?;
        if body.len() != self.header.body_len as usize {
            return Err(CoreError::TamperDetected(TamperKind::UndecryptableChunk {
                location,
            }));
        }
        Ok(body)
    }
}

/// Parses the version starting at the beginning of `buf`.
///
/// Returns `Ok(None)` when `buf` starts with a zero length marker (end of
/// the used portion of a segment).
///
/// # Errors
///
/// Signals tamper detection when the header fails to decrypt, and
/// `Corrupt` when `buf` is too short to hold the indicated version.
pub fn parse_version(
    system: &PartitionCrypto,
    buf: &[u8],
    location: u64,
) -> Result<Option<RawVersion>> {
    if buf.len() < 2 {
        return Ok(None);
    }
    let header_ct_len = u16::from_le_bytes(buf[0..2].try_into().expect("2 bytes")) as usize;
    if header_ct_len == 0 {
        return Ok(None);
    }
    if 2 + header_ct_len > buf.len() {
        return Err(CoreError::Corrupt(format!(
            "version at {location} overruns segment"
        )));
    }
    let header_plain = system.decrypt(&buf[2..2 + header_ct_len], location)?;
    let header = VersionHeader::decode(&header_plain)?;
    let body_start = 2 + header_ct_len;
    let body_end = body_start + header.body_ct_len as usize;
    if body_end > buf.len() {
        return Err(CoreError::Corrupt(format!(
            "version body at {location} overruns segment"
        )));
    }
    Ok(Some(RawVersion {
        header,
        sealed_body: buf[body_start..body_end].to_vec(),
        total_len: body_end,
    }))
}

// ---------------------------------------------------------------------------
// Unnamed chunk bodies.
// ---------------------------------------------------------------------------

/// Body of a deallocate chunk: the ids deallocated by one commit (§4.8.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeallocRecord {
    /// Deallocated chunk ids (whole-partition deallocations are recorded as
    /// the partition's leader chunk id).
    pub ids: Vec<ChunkId>,
}

impl DeallocRecord {
    /// Serializes the record.
    pub fn encode(&self) -> Vec<u8> {
        DeallocRecord::encode_ids(&self.ids)
    }

    /// Encodes a dealloc record straight from a borrowed id list — the
    /// same bytes as `DeallocRecord { ids: ids.to_vec() }.encode()` without
    /// materializing the owned record.
    pub fn encode_ids(ids: &[ChunkId]) -> Vec<u8> {
        let mut e = Enc::with_capacity(4 + ids.len() * 13);
        e.u32(ids.len() as u32);
        for id in ids {
            e.u32(id.partition.0);
            e.u8(id.pos.height);
            e.u64(id.pos.rank);
        }
        e.finish()
    }

    /// Inverse of [`DeallocRecord::encode`].
    ///
    /// # Errors
    ///
    /// Fails on structural corruption.
    pub fn decode(body: &[u8]) -> Result<DeallocRecord> {
        let mut d = Dec::new(body);
        let n = d.u32()? as usize;
        let mut ids = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let partition = PartitionId(d.u32()?);
            let height = d.u8()?;
            let rank = d.u64()?;
            ids.push(ChunkId::new(partition, Position { height, rank }));
        }
        d.expect_done("dealloc record")?;
        Ok(DeallocRecord { ids })
    }
}

/// Body of a commit chunk (§4.8.2.2): count, commit-set hash, signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRecord {
    /// The commit count, incremented after every commit.
    pub count: u64,
    /// System hash of the commit set's log bytes.
    pub set_hash: Vec<u8>,
    /// HMAC over (count ‖ set_hash) under the system key.
    pub mac: Vec<u8>,
}

impl CommitRecord {
    /// Builds and signs a commit record.
    pub fn signed(system: &PartitionCrypto, count: u64, set_hash: &[u8]) -> CommitRecord {
        let mac = system.sign(&[&count.to_le_bytes(), set_hash]);
        CommitRecord {
            count,
            set_hash: set_hash.to_vec(),
            mac: mac.as_bytes().to_vec(),
        }
    }

    /// Verifies the signature (§4.8.2.2: "an attack cannot insert an
    /// arbitrary commit set into the residual log because it will be unable
    /// to create an appropriately signed commit chunk").
    pub fn verify(&self, system: &PartitionCrypto) -> bool {
        let expected = system.sign(&[&self.count.to_le_bytes(), &self.set_hash]);
        tdb_crypto::ct_eq(expected.as_bytes(), &self.mac)
    }

    /// Serializes the record.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.count);
        e.bytes(&self.set_hash);
        e.bytes(&self.mac);
        e.finish()
    }

    /// Builds, signs, and serializes in one pass — the same bytes as
    /// `CommitRecord::signed(system, count, set_hash).encode()` without the
    /// intermediate owned record (the commit hot path calls this once per
    /// commit).
    pub fn encode_signed(system: &PartitionCrypto, count: u64, set_hash: &[u8]) -> Vec<u8> {
        let mac = system.sign(&[&count.to_le_bytes(), set_hash]);
        let mut e = Enc::with_capacity(8 + 4 + set_hash.len() + 4 + mac.len());
        e.u64(count);
        e.bytes(set_hash);
        e.bytes(mac.as_bytes());
        e.finish()
    }

    /// Inverse of [`CommitRecord::encode`].
    ///
    /// # Errors
    ///
    /// Fails on structural corruption.
    pub fn decode(body: &[u8]) -> Result<CommitRecord> {
        let mut d = Dec::new(body);
        let count = d.u64()?;
        let set_hash = d.bytes()?.to_vec();
        let mac = d.bytes()?.to_vec();
        d.expect_done("commit record")?;
        Ok(CommitRecord {
            count,
            set_hash,
            mac,
        })
    }
}

/// Body of a next-segment chunk (§4.9.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextSegmentRecord {
    /// Index of the segment the residual log continues in.
    pub next_segment: u32,
}

impl NextSegmentRecord {
    /// Serializes the record.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(self.next_segment);
        e.finish()
    }

    /// Inverse of [`NextSegmentRecord::encode`].
    ///
    /// # Errors
    ///
    /// Fails on structural corruption.
    pub fn decode(body: &[u8]) -> Result<NextSegmentRecord> {
        let mut d = Dec::new(body);
        let next_segment = d.u32()?;
        d.expect_done("next-segment record")?;
        Ok(NextSegmentRecord { next_segment })
    }
}

/// Body of a cleaner chunk (§5.5): where a relocated version is current.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CleanerRecord {
    /// Position of the relocated chunk.
    pub pos: Position,
    /// Log offset of the relocated version this record describes.
    pub new_location: u64,
    /// Partitions in which that version is current.
    pub current_in: Vec<PartitionId>,
}

impl CleanerRecord {
    /// Serializes the record.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(self.pos.height);
        e.u64(self.pos.rank);
        e.u64(self.new_location);
        e.u16(self.current_in.len() as u16);
        for p in &self.current_in {
            e.u32(p.0);
        }
        e.finish()
    }

    /// Inverse of [`CleanerRecord::encode`].
    ///
    /// # Errors
    ///
    /// Fails on structural corruption.
    pub fn decode(body: &[u8]) -> Result<CleanerRecord> {
        let mut d = Dec::new(body);
        let height = d.u8()?;
        let rank = d.u64()?;
        let new_location = d.u64()?;
        let n = d.u16()? as usize;
        let mut current_in = Vec::with_capacity(n);
        for _ in 0..n {
            current_in.push(PartitionId(d.u32()?));
        }
        d.expect_done("cleaner record")?;
        Ok(CleanerRecord {
            pos: Position { height, rank },
            new_location,
            current_in,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CryptoParams;
    use tdb_crypto::{CipherKind, HashKind, SecretKey};

    fn system() -> PartitionCrypto {
        CryptoParams::paper_system(SecretKey::random(24))
            .runtime()
            .unwrap()
    }

    fn des_partition() -> PartitionCrypto {
        CryptoParams::generate(CipherKind::Des, HashKind::Sha1)
            .runtime()
            .unwrap()
    }

    #[test]
    fn seal_parse_roundtrip_named() {
        let sys = system();
        let part = des_partition();
        let id = ChunkId::data(PartitionId(3), 17);
        let body = b"the state of chunk P3:0.17".to_vec();
        let sealed = seal_version(&sys, &part, VersionKind::Named, id, &body);
        assert_eq!(sealed.len(), sealed_version_len(&sys, &part, body.len()));

        let raw = parse_version(&sys, &sealed, 0).unwrap().unwrap();
        assert_eq!(raw.header.kind, VersionKind::Named);
        assert_eq!(raw.header.id, id);
        assert_eq!(raw.header.body_len as usize, body.len());
        assert_eq!(raw.total_len, sealed.len());
        assert_eq!(raw.open_body(&part, 0).unwrap(), body);
    }

    #[test]
    fn zero_marker_is_end() {
        let sys = system();
        assert!(parse_version(&sys, &[0, 0, 1, 2, 3], 0).unwrap().is_none());
        assert!(parse_version(&sys, &[0], 0).unwrap().is_none());
        assert!(parse_version(&sys, &[], 0).unwrap().is_none());
    }

    #[test]
    fn tampered_header_detected() {
        let sys = system();
        let part = des_partition();
        let id = ChunkId::data(PartitionId(1), 0);
        let mut sealed = seal_version(&sys, &part, VersionKind::Named, id, b"body");
        sealed[5] ^= 0xFF; // Inside the sealed header.
        let res = parse_version(&sys, &sealed, 7);
        match res {
            Err(e) => assert!(e.is_tamper()),
            // CBC corruption may still decrypt to garbage with valid
            // padding; then header decode fails structurally.
            Ok(Some(raw)) => assert_ne!(raw.header.id, id),
            Ok(None) => panic!("tampered version vanished"),
        }
    }

    #[test]
    fn tampered_body_detected_on_open() {
        let sys = system();
        let part = des_partition();
        let id = ChunkId::data(PartitionId(1), 0);
        let mut sealed = seal_version(&sys, &part, VersionKind::Named, id, b"sensitive state");
        let n = sealed.len();
        sealed[n - 1] ^= 0x01;
        let raw = parse_version(&sys, &sealed, 0).unwrap().unwrap();
        match raw.open_body(&part, 0) {
            Err(e) => assert!(e.is_tamper()),
            Ok(body) => assert_ne!(body, b"sensitive state"),
        }
    }

    #[test]
    fn wrong_partition_cipher_cannot_open_body() {
        let sys = system();
        let a = des_partition();
        let b = CryptoParams::generate(CipherKind::Aes128, HashKind::Sha1)
            .runtime()
            .unwrap();
        let sealed = seal_version(
            &sys,
            &a,
            VersionKind::Named,
            ChunkId::data(PartitionId(1), 0),
            b"partition-a secret",
        );
        let raw = parse_version(&sys, &sealed, 0).unwrap().unwrap();
        match raw.open_body(&b, 0) {
            Err(e) => assert!(e.is_tamper()),
            Ok(body) => assert_ne!(body, b"partition-a secret"),
        }
    }

    #[test]
    fn dealloc_record_roundtrip() {
        let rec = DeallocRecord {
            ids: vec![
                ChunkId::data(PartitionId(1), 5),
                ChunkId::new(PartitionId(2), Position::map(1, 0)),
            ],
        };
        assert_eq!(DeallocRecord::decode(&rec.encode()).unwrap(), rec);
        assert_eq!(DeallocRecord::encode_ids(&rec.ids), rec.encode());
        assert_eq!(
            DeallocRecord::encode_ids(&[]),
            (DeallocRecord { ids: vec![] }).encode()
        );
    }

    #[test]
    fn encode_signed_matches_two_step() {
        let sys = system();
        let set_hash = [0xABu8; 20];
        let direct = CommitRecord::encode_signed(&sys, 91, &set_hash);
        let two_step = CommitRecord::signed(&sys, 91, &set_hash).encode();
        assert_eq!(direct, two_step);
        assert!(CommitRecord::decode(&direct).unwrap().verify(&sys));
    }

    #[test]
    fn commit_record_sign_verify_roundtrip() {
        let sys = system();
        let rec = CommitRecord::signed(&sys, 42, b"commit set hash bytes");
        assert!(rec.verify(&sys));
        let back = CommitRecord::decode(&rec.encode()).unwrap();
        assert_eq!(back, rec);
        assert!(back.verify(&sys));

        // A different system key rejects the signature.
        let other = system();
        assert!(!back.verify(&other));

        // A tweaked count rejects.
        let mut forged = back.clone();
        forged.count += 1;
        assert!(!forged.verify(&sys));
    }

    #[test]
    fn next_segment_and_cleaner_roundtrip() {
        let ns = NextSegmentRecord { next_segment: 7 };
        assert_eq!(NextSegmentRecord::decode(&ns.encode()).unwrap(), ns);

        let cr = CleanerRecord {
            pos: Position::data(99),
            new_location: 1 << 33,
            current_in: vec![PartitionId(3), PartitionId(8)],
        };
        assert_eq!(CleanerRecord::decode(&cr.encode()).unwrap(), cr);
    }

    #[test]
    fn unnamed_versions_use_reserved_id() {
        let sys = system();
        let rec = NextSegmentRecord { next_segment: 1 };
        let sealed = seal_version(
            &sys,
            &sys,
            VersionKind::NextSegment,
            VersionHeader::unnamed_id(),
            &rec.encode(),
        );
        let raw = parse_version(&sys, &sealed, 0).unwrap().unwrap();
        assert!(raw.header.kind.is_unnamed());
        assert_eq!(raw.header.id.pos.height, UNNAMED_HEIGHT);
    }
}
