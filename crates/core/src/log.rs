//! The segmented log (§4.9) and the superblock holding the leader location.
//!
//! "The untrusted store is divided into fixed-size segments to aid cleaning,
//! as in Sprite LFS … The log is represented as a sequence of potentially
//! non-adjacent segments", chained through unnamed next-segment chunks. The
//! head of the residual log (the leader's location) is "stored in a fixed
//! place" (§4.9.2) — the superblock at offset 0 — which "need not be kept in
//! tamper-resistant store" because validation catches a forged location.

use std::collections::BTreeSet;

use tdb_crypto::{HashKind, HashValue, Hasher};
use tdb_storage::SharedUntrusted;

use crate::codec::{Dec, Enc};
use crate::errors::{CoreError, Result};
use crate::leader::LogState;
use crate::metrics::{self, modules};
use crate::params::PartitionCrypto;
use crate::version::{
    seal_version, sealed_version_len, NextSegmentRecord, VersionHeader, VersionKind,
};

/// Fixed byte budget for the superblock at offset 0.
pub const SUPERBLOCK_SIZE: u64 = 512;

/// Size of one superblock slot. The area holds two alternating slots
/// (selected by epoch parity) so a torn superblock write leaves the other
/// slot's record intact.
pub const SUPERBLOCK_SLOT: u64 = SUPERBLOCK_SIZE / 2;

/// Offset where segment 0 begins.
pub const SEGMENT_BASE: u64 = SUPERBLOCK_SIZE;

const SUPERBLOCK_MAGIC: u64 = 0x5444_4253_5542_4c4b; // "TDBSUBLK"

/// The fixed-location record pointing at the current (and previous) leader.
///
/// The previous location exists for the crash window during a checkpoint,
/// before the new leader becomes the validated head: "if there is a crash
/// before this update, the recovery procedure ignores the checkpoint at the
/// tail of the log" (§4.9.2) — we realize that by falling back to `prev`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Monotonic checkpoint epoch.
    pub epoch: u64,
    /// Location of the current leader version.
    pub current_leader: u64,
    /// Location of the previous checkpoint's leader version.
    pub prev_leader: u64,
}

impl Superblock {
    fn sum(bytes: &[u8]) -> u64 {
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            acc ^= u64::from(b);
            acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
        }
        acc
    }

    /// Serializes the superblock with an integrity sum (torn-write
    /// detection only — tamper detection comes from validating the leader).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(40);
        e.u64(SUPERBLOCK_MAGIC);
        e.u64(self.epoch);
        e.u64(self.current_leader);
        e.u64(self.prev_leader);
        let body = e.finish();
        let mut out = body.clone();
        out.extend_from_slice(&Self::sum(&body).to_le_bytes());
        out
    }

    /// Reads and checks the superblock.
    ///
    /// # Errors
    ///
    /// Returns `Corrupt` for a bad magic or sum.
    pub fn decode(buf: &[u8]) -> Result<Superblock> {
        if buf.len() < 40 {
            return Err(CoreError::Corrupt("superblock too short".into()));
        }
        let body = &buf[..32];
        let stored = u64::from_le_bytes(buf[32..40].try_into().expect("8 bytes"));
        if Self::sum(body) != stored {
            return Err(CoreError::Corrupt("superblock checksum mismatch".into()));
        }
        let mut d = Dec::new(body);
        if d.u64()? != SUPERBLOCK_MAGIC {
            return Err(CoreError::Corrupt("superblock magic mismatch".into()));
        }
        Ok(Superblock {
            epoch: d.u64()?,
            current_leader: d.u64()?,
            prev_leader: d.u64()?,
        })
    }

    /// Writes the superblock into the slot selected by its epoch's parity
    /// and flushes.
    ///
    /// The superblock area holds two slots so a torn superblock write (a
    /// crash or fault mid-checkpoint) can never destroy the only copy: the
    /// previous epoch's record lives in the other slot, and
    /// [`Superblock::read`] picks the highest *valid* epoch.
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn write(&self, store: &SharedUntrusted) -> Result<()> {
        let _t = metrics::span(modules::UNTRUSTED_WRITE);
        let mut buf = self.encode();
        buf.resize(SUPERBLOCK_SLOT as usize, 0);
        let slot = self.epoch % 2;
        store.write_at(slot * SUPERBLOCK_SLOT, &buf)?;
        store.flush()?;
        Ok(())
    }

    /// Reads the superblock: decodes both slots and returns the valid one
    /// with the highest epoch. (A legacy image that wrote a single record
    /// at offset 0 decodes as slot 0 with slot 1 invalid.)
    ///
    /// # Errors
    ///
    /// Returns `Corrupt` when absent or both slots are damaged.
    pub fn read(store: &SharedUntrusted) -> Result<Superblock> {
        let _t = metrics::span(modules::UNTRUSTED_READ);
        let len = store.len()?;
        if len < 40 {
            return Err(CoreError::Corrupt("store has no superblock".into()));
        }
        let take = SUPERBLOCK_SIZE.min(len);
        let mut buf = vec![0u8; take as usize];
        store.read_at(0, &mut buf)?;
        let slot0 = Superblock::decode(&buf);
        let slot1 = if buf.len() >= SUPERBLOCK_SLOT as usize + 40 {
            Superblock::decode(&buf[SUPERBLOCK_SLOT as usize..])
        } else {
            Err(CoreError::Corrupt(
                "store has no second superblock slot".into(),
            ))
        };
        match (slot0, slot1) {
            (Ok(a), Ok(b)) => Ok(if a.epoch >= b.epoch { a } else { b }),
            (Ok(a), Err(_)) => Ok(a),
            (Err(_), Ok(b)) => Ok(b),
            (Err(e), Err(_)) => Err(e),
        }
    }
}

/// Running hashes over appended log bytes.
///
/// - `chain` implements direct hash validation (§4.8.2.1): a sequential
///   hash of the residual log, chained as `chain = H(chain ‖ bytes)` per
///   appended version and reset at each checkpoint.
/// - `set` implements the per-commit-set hash stored in commit chunks
///   (§4.8.2.2), active between [`LogHashes::begin_set`] and
///   [`LogHashes::end_set`].
pub struct LogHashes {
    kind: HashKind,
    /// Direct-validation chain over the residual log.
    pub chain: HashValue,
    set: Option<Box<dyn Hasher>>,
}

impl LogHashes {
    /// Fresh hashes with an all-zero chain.
    pub fn new(kind: HashKind) -> LogHashes {
        LogHashes {
            kind,
            chain: HashValue::zero(kind.digest_len()),
            set: None,
        }
    }

    /// Absorbs appended log bytes into the chain and any open set hash.
    pub fn absorb(&mut self, bytes: &[u8]) {
        let _t = metrics::span(modules::HASHING);
        self.chain = self.kind.hash_parts(&[self.chain.as_bytes(), bytes]);
        if let Some(h) = self.set.as_mut() {
            h.update(bytes);
        }
    }

    /// Resets the chain (checkpoint: the residual log restarts at the
    /// leader).
    pub fn reset_chain(&mut self) {
        self.chain = HashValue::zero(self.kind.digest_len());
    }

    /// Starts accumulating a commit-set hash.
    pub fn begin_set(&mut self) {
        self.set = Some(self.kind.hasher());
    }

    /// Finishes the commit-set hash.
    pub fn end_set(&mut self) -> HashValue {
        let _t = metrics::span(modules::HASHING);
        match self.set.take() {
            Some(h) => h.finalize(),
            None => HashValue::zero(self.kind.digest_len()),
        }
    }

    /// True when a set hash is being accumulated.
    pub fn set_open(&self) -> bool {
        self.set.is_some()
    }

    /// Discards an open set hash without finishing it (rollback of a
    /// failed mutation; the chain is restored separately from a snapshot).
    pub fn abort_set(&mut self) {
        self.set = None;
    }
}

/// A contiguous stretch of buffered log bytes awaiting write-out.
///
/// Runs break only at segment switches, so a run is always a whole number
/// of sealed versions laid out contiguously within one segment.
struct PendingRun {
    start: u64,
    buf: Vec<u8>,
}

/// A captured append-cursor state for rolling back a failed mutation.
///
/// Besides the tail position this records the pending end-marker
/// obligation and a mark into the coalescing buffer, so a rollback also
/// discards buffered-but-unwritten bytes appended after the capture.
#[derive(Clone)]
pub struct TailState {
    segment: u32,
    offset: u32,
    residual: BTreeSet<u32>,
    pending_stamp: Option<u64>,
    /// (number of runs, length of the last run) at capture time.
    runs_mark: (usize, usize),
}

/// The append cursor over the segmented log.
pub struct SegmentedLog {
    store: SharedUntrusted,
    segment_size: u32,
    /// Segment currently being appended to.
    tail_segment: u32,
    /// Next free byte within the tail segment.
    tail_offset: u32,
    /// Segments belonging to the residual log; the cleaner must skip these
    /// (§4.9.5: "the cleaner does not clean segments in the residual log").
    residual: BTreeSet<u32>,
    /// On-log size of a sealed next-segment chunk, reserved at the end of
    /// every segment.
    nextseg_len: u32,
    /// Hard cap on segments (0 = unbounded).
    max_segments: u32,
    /// Coalescing mode: appends accumulate into `runs` and reach the
    /// device as one `write_at` per contiguous run at write-out time.
    coalescing: bool,
    /// Buffered runs awaiting [`SegmentedLog::write_out`].
    runs: Vec<PendingRun>,
    /// Head offset of a freshly switched-to segment whose zero end-marker
    /// has not yet been covered by an append. The marker write is folded
    /// into the first append after the switch (which always lands at the
    /// segment head); this records the obligation so a write-out arriving
    /// first still stamps the head.
    pending_stamp: Option<u64>,
    /// Cumulative count of appends absorbed into the coalescing buffer.
    coalesced_appends: u64,
    /// Cumulative count of coalesced runs written to the device.
    coalesced_runs: u64,
    /// Cumulative bytes written through coalesced runs.
    coalesced_bytes: u64,
}

impl SegmentedLog {
    /// Creates a cursor positioned at `(tail_segment, tail_offset)`.
    pub fn new(
        store: SharedUntrusted,
        system: &PartitionCrypto,
        segment_size: u32,
        max_segments: u32,
        tail_segment: u32,
        tail_offset: u32,
    ) -> SegmentedLog {
        let nextseg_len = sealed_version_len(system, system, 4) as u32;
        let mut residual = BTreeSet::new();
        residual.insert(tail_segment);
        SegmentedLog {
            store,
            segment_size,
            tail_segment,
            tail_offset,
            residual,
            nextseg_len,
            max_segments,
            coalescing: false,
            runs: Vec::new(),
            pending_stamp: None,
            coalesced_appends: 0,
            coalesced_runs: 0,
            coalesced_bytes: 0,
        }
    }

    /// Absolute store offset of the start of `segment`.
    pub fn segment_offset(&self, segment: u32) -> u64 {
        SEGMENT_BASE + u64::from(segment) * u64::from(self.segment_size)
    }

    /// Segment index containing the absolute offset `location`.
    pub fn segment_of(&self, location: u64) -> u32 {
        ((location - SEGMENT_BASE) / u64::from(self.segment_size)) as u32
    }

    /// Absolute offset of the next append.
    pub fn tail_location(&self) -> u64 {
        self.segment_offset(self.tail_segment) + u64::from(self.tail_offset)
    }

    /// The segment currently being appended to.
    pub fn tail_segment(&self) -> u32 {
        self.tail_segment
    }

    /// The residual-log segment set.
    pub fn residual_segments(&self) -> &BTreeSet<u32> {
        &self.residual
    }

    /// Resets the residual set to just the tail segment (checkpoint done).
    pub fn reset_residual(&mut self) {
        self.residual.clear();
        self.residual.insert(self.tail_segment);
    }

    /// Marks a segment as part of the residual log (used by recovery).
    pub fn mark_residual(&mut self, segment: u32) {
        self.residual.insert(segment);
    }

    /// Repositions the append cursor (used by recovery after the residual
    /// log has been rolled forward).
    pub fn set_tail(&mut self, segment: u32, offset: u32) {
        self.tail_segment = segment;
        self.tail_offset = offset;
        self.residual.insert(segment);
    }

    /// Captures the cursor (tail position, residual set, end-marker
    /// obligation, coalescing-buffer mark) so a failed mutation can be
    /// rolled back.
    pub fn tail_state(&self) -> TailState {
        TailState {
            segment: self.tail_segment,
            offset: self.tail_offset,
            residual: self.residual.clone(),
            pending_stamp: self.pending_stamp,
            runs_mark: (self.runs.len(), self.runs.last().map_or(0, |r| r.buf.len())),
        }
    }

    /// Restores a cursor captured by [`SegmentedLog::tail_state`]. Bytes
    /// appended past the restored tail become invisible: buffered bytes
    /// are truncated away, already-written bytes are overwritten by the
    /// next append, and recovery treats them as a torn tail.
    pub fn restore_tail_state(&mut self, state: TailState) {
        self.tail_segment = state.segment;
        self.tail_offset = state.offset;
        self.residual = state.residual;
        self.pending_stamp = state.pending_stamp;
        let (nruns, last_len) = state.runs_mark;
        // A write-out drains the buffer all-or-nothing, so either the runs
        // captured by the mark are still here (truncate back to the mark)
        // or they all reached the device (already invisible past the
        // restored tail) and anything buffered since is rolled-back suffix.
        if self.runs.len() >= nruns {
            self.runs.truncate(nruns);
            if let Some(last) = self.runs.last_mut() {
                last.buf.truncate(last_len);
            }
        } else {
            self.runs.clear();
        }
    }

    /// Largest body a version may carry, given segment geometry.
    pub fn max_version_len(&self) -> u32 {
        self.segment_size - self.nextseg_len
    }

    fn room(&self) -> u32 {
        self.segment_size - self.nextseg_len - self.tail_offset
    }

    /// Ensures at least `len` bytes can be appended without switching
    /// segments mid-record (used before commit chunks so a commit chunk
    /// never straddles a set-hash boundary).
    ///
    /// # Errors
    ///
    /// Fails when the record cannot fit in a fresh segment, or on I/O error.
    pub fn ensure_room(
        &mut self,
        state: &mut LogState,
        system: &PartitionCrypto,
        hashes: &mut LogHashes,
        len: u32,
    ) -> Result<()> {
        if len > self.max_version_len() {
            return Err(CoreError::ChunkTooLarge {
                size: len as usize,
                max: self.max_version_len() as usize,
            });
        }
        if self.room() < len {
            self.switch_segment(state, system, hashes)?;
        }
        Ok(())
    }

    /// Appends pre-sealed version bytes, switching segments as needed.
    /// Returns the version's absolute location.
    ///
    /// # Errors
    ///
    /// Fails when the version exceeds the segment capacity or storage fails.
    pub fn append(
        &mut self,
        state: &mut LogState,
        system: &PartitionCrypto,
        hashes: &mut LogHashes,
        bytes: &[u8],
    ) -> Result<u64> {
        self.ensure_room(state, system, hashes, bytes.len() as u32)?;
        let location = self.tail_location();
        if self.coalescing {
            self.buffer_write(location, bytes);
        } else {
            let _t = metrics::span(modules::UNTRUSTED_WRITE);
            self.store.write_at(location, bytes)?;
        }
        if self.pending_stamp == Some(location) {
            // This append lands at the head of a freshly switched-to
            // segment and covers the folded zero end-marker region (every
            // sealed version is longer than the 2-byte marker).
            self.pending_stamp = None;
        }
        hashes.absorb(bytes);
        self.tail_offset += bytes.len() as u32;
        Ok(location)
    }

    /// Accumulates `bytes` at `location` into the coalescing buffer,
    /// extending the last run when contiguous.
    fn buffer_write(&mut self, location: u64, bytes: &[u8]) {
        self.coalesced_appends += 1;
        if let Some(run) = self.runs.last_mut() {
            if run.start + run.buf.len() as u64 == location {
                run.buf.extend_from_slice(bytes);
                return;
            }
        }
        self.runs.push(PendingRun {
            start: location,
            buf: bytes.to_vec(),
        });
    }

    /// Moves the cursor to a fresh segment, appending the chaining
    /// next-segment chunk to the old one.
    fn switch_segment(
        &mut self,
        state: &mut LogState,
        system: &PartitionCrypto,
        hashes: &mut LogHashes,
    ) -> Result<()> {
        let next = self.allocate_segment(state)?;
        let record = NextSegmentRecord { next_segment: next };
        let sealed = seal_version(
            system,
            system,
            VersionKind::NextSegment,
            VersionHeader::unnamed_id(),
            &record.encode(),
        );
        debug_assert!(sealed.len() as u32 <= self.nextseg_len);
        let location = self.tail_location();
        if self.coalescing {
            self.buffer_write(location, &sealed);
        } else {
            let _t = metrics::span(modules::UNTRUSTED_WRITE);
            self.store.write_at(location, &sealed)?;
        }
        hashes.absorb(&sealed);
        self.tail_segment = next;
        self.tail_offset = 0;
        self.residual.insert(next);
        // The head of the new segment needs a zero end-marker: fresh store
        // bytes read as zero, but a recycled segment holds stale versions
        // that recovery must not parse past the tail. The marker write is
        // folded into the first append after the switch (which always
        // lands at the head); the recorded obligation makes a write-out
        // arriving before any such append stamp the head itself.
        self.pending_stamp = Some(self.segment_offset(next));
        Ok(())
    }

    /// Takes a free segment or extends the store.
    fn allocate_segment(&mut self, state: &mut LogState) -> Result<u32> {
        if let Some(seg) = state.free_segments.pop() {
            return Ok(seg);
        }
        if self.max_segments != 0 && state.num_segments >= self.max_segments {
            return Err(CoreError::OutOfSpace);
        }
        let seg = state.num_segments;
        state.num_segments += 1;
        state.utilization.push(0);
        Ok(seg)
    }

    /// Reads the raw contents of `segment` (for the cleaner and recovery).
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn read_segment(&self, segment: u32) -> Result<Vec<u8>> {
        let _t = metrics::span(modules::UNTRUSTED_READ);
        let start = self.segment_offset(segment);
        let available = self.store.len()?.saturating_sub(start);
        let take = u64::from(self.segment_size).min(available);
        let mut buf = vec![0u8; take as usize];
        if take > 0 {
            self.store.read_at(start, &mut buf)?;
        }
        Ok(buf)
    }

    /// Reads `len` bytes at absolute `location`.
    ///
    /// Buffered-but-unwritten bytes are served from the coalescing runs,
    /// so the buffer stays invisible to readers (a version never
    /// straddles a run boundary: runs break only at segment switches and
    /// versions never straddle segments).
    ///
    /// # Errors
    ///
    /// Propagates storage errors (including out-of-bounds reads, which
    /// indicate a forged descriptor).
    pub fn read_at(&self, location: u64, len: usize) -> Result<Vec<u8>> {
        for run in &self.runs {
            if location >= run.start {
                let off = (location - run.start) as usize;
                if off + len <= run.buf.len() {
                    return Ok(run.buf[off..off + len].to_vec());
                }
            }
        }
        let _t = metrics::span(modules::UNTRUSTED_READ);
        let mut buf = vec![0u8; len];
        self.store.read_at(location, &mut buf)?;
        Ok(buf)
    }

    /// Turns append coalescing on or off. Disabling requires an empty
    /// buffer (callers flush or write out first).
    pub fn set_coalescing(&mut self, on: bool) {
        debug_assert!(
            on || self.runs.is_empty(),
            "coalescing disabled with buffered runs pending"
        );
        self.coalescing = on;
    }

    /// True while appends accumulate in the coalescing buffer.
    pub fn coalescing(&self) -> bool {
        self.coalescing
    }

    /// Cumulative (buffered appends, runs written, bytes written) through
    /// the coalescing buffer.
    pub fn coalesce_counters(&self) -> (u64, u64, u64) {
        (
            self.coalesced_appends,
            self.coalesced_runs,
            self.coalesced_bytes,
        )
    }

    /// Bytes currently sitting in the coalescing buffer.
    pub fn buffered_len(&self) -> usize {
        self.runs.iter().map(|r| r.buf.len()).sum()
    }

    /// Writes buffered runs to the device — one `write_at` per contiguous
    /// run — and stamps a still-uncovered fresh-segment head with the
    /// zero end-marker. Returns whether any device write was issued.
    ///
    /// # Errors
    ///
    /// Propagates storage errors. On failure the buffer is left intact
    /// (rewriting an already-written run puts the same bytes at the same
    /// offsets, so a retry or rollback stays sound); the run counters
    /// still record how many runs reached the device, which is how
    /// callers detect that a rollback must degrade.
    pub fn write_out(&mut self) -> Result<bool> {
        let mut wrote = false;
        let mut i = 0;
        while i < self.runs.len() {
            {
                let _t = metrics::span(modules::UNTRUSTED_WRITE);
                let run = &self.runs[i];
                self.store.write_at(run.start, &run.buf)?;
            }
            wrote = true;
            self.coalesced_runs += 1;
            self.coalesced_bytes += self.runs[i].buf.len() as u64;
            i += 1;
        }
        self.runs.clear();
        if let Some(seg_start) = self.pending_stamp.take() {
            let _t = metrics::span(modules::UNTRUSTED_WRITE);
            self.store.write_at(seg_start, &[0u8; 2])?;
            wrote = true;
        }
        Ok(wrote)
    }

    /// Flushes the untrusted store (a commit's durability point), writing
    /// out any buffered runs first.
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn flush(&mut self) -> Result<()> {
        self.write_out()?;
        let _t = metrics::span(modules::UNTRUSTED_WRITE);
        self.store.flush()?;
        Ok(())
    }

    /// The shared store handle.
    pub fn store(&self) -> &SharedUntrusted {
        &self.store
    }

    /// Segment size in bytes.
    pub fn segment_size(&self) -> u32 {
        self.segment_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CryptoParams;
    use std::sync::Arc;
    use tdb_crypto::SecretKey;
    use tdb_storage::MemStore;

    fn setup() -> (SegmentedLog, LogState, PartitionCrypto, LogHashes) {
        let store: SharedUntrusted = Arc::new(MemStore::new());
        let system = CryptoParams::paper_system(SecretKey::random(24))
            .runtime()
            .unwrap();
        let mut state = LogState::new(1024);
        state.num_segments = 1;
        state.utilization.push(0);
        let log = SegmentedLog::new(store, &system, 1024, 0, 0, 0);
        let hashes = LogHashes::new(tdb_crypto::HashKind::Sha1);
        (log, state, system, hashes)
    }

    #[test]
    fn superblock_roundtrip() {
        let sb = Superblock {
            epoch: 3,
            current_leader: 4096,
            prev_leader: 512,
        };
        let store: SharedUntrusted = Arc::new(MemStore::new());
        sb.write(&store).unwrap();
        assert_eq!(Superblock::read(&store).unwrap(), sb);
    }

    #[test]
    fn superblock_detects_corruption() {
        let sb = Superblock {
            epoch: 1,
            current_leader: 1000,
            prev_leader: 0,
        };
        let mut buf = sb.encode();
        buf[9] ^= 0x01;
        assert!(Superblock::decode(&buf).is_err());
        // Magic corruption also detected (checksum covers it).
        let mut buf2 = sb.encode();
        buf2[0] ^= 0xFF;
        assert!(Superblock::decode(&buf2).is_err());
    }

    #[test]
    fn append_advances_tail() {
        let (mut log, mut state, system, mut hashes) = setup();
        let loc1 = log
            .append(&mut state, &system, &mut hashes, &[1u8; 100])
            .unwrap();
        let loc2 = log
            .append(&mut state, &system, &mut hashes, &[2u8; 100])
            .unwrap();
        assert_eq!(loc1, SEGMENT_BASE);
        assert_eq!(loc2, SEGMENT_BASE + 100);
        assert_eq!(log.tail_location(), SEGMENT_BASE + 200);
    }

    #[test]
    fn segment_switch_links_and_extends() {
        let (mut log, mut state, system, mut hashes) = setup();
        // Fill most of segment 0, then overflow into segment 1.
        let big = vec![7u8; 900];
        log.append(&mut state, &system, &mut hashes, &big).unwrap();
        let loc = log.append(&mut state, &system, &mut hashes, &big).unwrap();
        assert_eq!(log.segment_of(loc), 1);
        assert_eq!(state.num_segments, 2);
        assert!(log.residual_segments().contains(&0));
        assert!(log.residual_segments().contains(&1));

        // The next-segment chunk at the end of segment 0 parses and points
        // to segment 1.
        let seg0 = log.read_segment(0).unwrap();
        let raw = crate::version::parse_version(&system, &seg0[900..], 900)
            .unwrap()
            .expect("next-segment chunk present");
        assert_eq!(raw.header.kind, VersionKind::NextSegment);
        let body = raw.open_body(&system, 0).unwrap();
        assert_eq!(NextSegmentRecord::decode(&body).unwrap().next_segment, 1);
    }

    #[test]
    fn free_segments_reused_before_extending() {
        let (mut log, mut state, system, mut hashes) = setup();
        state.num_segments = 3;
        state.utilization = vec![0, 0, 0];
        state.free_segments.push(2);
        let big = vec![7u8; 900];
        log.append(&mut state, &system, &mut hashes, &big).unwrap();
        let loc = log.append(&mut state, &system, &mut hashes, &big).unwrap();
        assert_eq!(log.segment_of(loc), 2);
        assert_eq!(state.num_segments, 3);
    }

    #[test]
    fn max_segments_enforced() {
        let (mut log, mut state, system, mut hashes) = setup();
        log.max_segments = 1;
        let big = vec![7u8; 900];
        log.append(&mut state, &system, &mut hashes, &big).unwrap();
        assert!(matches!(
            log.append(&mut state, &system, &mut hashes, &big),
            Err(CoreError::OutOfSpace)
        ));
    }

    #[test]
    fn oversized_version_rejected() {
        let (mut log, mut state, system, mut hashes) = setup();
        let too_big = vec![0u8; 1025];
        assert!(matches!(
            log.append(&mut state, &system, &mut hashes, &too_big),
            Err(CoreError::ChunkTooLarge { .. })
        ));
    }

    #[test]
    fn hashes_chain_and_set() {
        let kind = tdb_crypto::HashKind::Sha1;
        let mut h = LogHashes::new(kind);
        let zero = h.chain;
        h.begin_set();
        h.absorb(b"version one");
        h.absorb(b"version two");
        let set = h.end_set();
        assert_eq!(set, kind.hash(b"version oneversion two"));
        assert_ne!(h.chain, zero);

        // The chain is order sensitive.
        let mut h2 = LogHashes::new(kind);
        h2.absorb(b"version two");
        h2.absorb(b"version one");
        assert_ne!(h2.chain, h.chain);

        h.reset_chain();
        assert_eq!(h.chain, zero);
    }

    #[test]
    fn reset_residual_keeps_tail_only() {
        let (mut log, mut state, system, mut hashes) = setup();
        let big = vec![7u8; 900];
        log.append(&mut state, &system, &mut hashes, &big).unwrap();
        log.append(&mut state, &system, &mut hashes, &big).unwrap();
        assert_eq!(log.residual_segments().len(), 2);
        log.reset_residual();
        assert_eq!(log.residual_segments().len(), 1);
        assert!(log.residual_segments().contains(&log.tail_segment()));
    }
}
