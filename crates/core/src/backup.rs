//! The backup store (§6): full and incremental partition backups.
//!
//! "The backup store creates backup sets by streaming backups of individual
//! partitions to the archival store and restores them by replacing
//! partitions with the backups read from the archival store." Consistency
//! comes from snapshots: "instead of locking each partition for the entire
//! duration of backup creation, the backup store creates a consistent
//! snapshot of the source partitions using a single commit operation"
//! (§6.1) — copy-on-write partition copies make this cheap.
//!
//! A partition backup is (§6.2):
//!
//! ```text
//! PartitionBackup ::= E_s(BackupDescriptor)
//!                     (E_s(ChunkHeader) E_p(ChunkBody))*
//!                     BackupSignature
//!                     Checksum
//! ```
//!
//! The signature binds the descriptor to the chunks; the *unencrypted*
//! CRC-32 trailer lets an untrusted archiver verify the stream completed.

use std::io::Read;
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use rand::RngCore;

use tdb_crypto::crc32::Crc32;
use tdb_crypto::HashValue;
use tdb_storage::ArchivalStore;

use crate::codec::{Dec, Enc};
use crate::errors::{CoreError, Result, TamperKind};
use crate::ids::{ChunkId, PartitionId};
use crate::metrics::{self, modules};
use crate::params::CryptoParams;
use crate::store::{ChunkStore, CommitOp, DiffChange};
use crate::version::{parse_version, seal_version, DeallocRecord, VersionHeader, VersionKind};

/// What to back up for one source partition.
#[derive(Debug, Clone, Copy)]
pub struct BackupSpec {
    /// The live partition being backed up.
    pub source: PartitionId,
    /// For an incremental backup, the snapshot the previous backup of this
    /// source was taken from (§6.2: "an incremental backup of a partition
    /// is created with respect to a previous snapshot, the *base*").
    pub base: Option<PartitionId>,
}

/// The metadata at the head of each partition backup (§6.2).
#[derive(Debug, Clone)]
pub struct BackupDescriptor {
    /// Id of the source partition (*P* in Figure 8).
    pub source: PartitionId,
    /// Id of the snapshot used for this backup (*R*).
    pub snapshot: PartitionId,
    /// Id of the base snapshot (*Q*, if incremental).
    pub base: Option<PartitionId>,
    /// Random number assigned to the backup set.
    pub set_id: u64,
    /// Number of partition backups in the backup set.
    pub set_size: u32,
    /// Partition cipher, hasher, and key (sealed under the system cipher).
    pub params: CryptoParams,
    /// Time of backup creation (seconds since the Unix epoch).
    pub created_unix: u64,
    /// The source's `next_rank` at snapshot time (restores reserve it).
    pub next_rank: u64,
}

impl BackupDescriptor {
    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(self.source.0);
        e.u32(self.snapshot.0);
        match self.base {
            Some(b) => {
                e.u8(1);
                e.u32(b.0);
            }
            None => {
                e.u8(0);
            }
        }
        e.u64(self.set_id);
        e.u32(self.set_size);
        self.params.encode(&mut e);
        e.u64(self.created_unix);
        e.u64(self.next_rank);
        e.finish()
    }

    fn decode(body: &[u8]) -> Result<BackupDescriptor> {
        let mut d = Dec::new(body);
        let source = PartitionId(d.u32()?);
        let snapshot = PartitionId(d.u32()?);
        let base = if d.u8()? == 1 {
            Some(PartitionId(d.u32()?))
        } else {
            None
        };
        let set_id = d.u64()?;
        let set_size = d.u32()?;
        let params = CryptoParams::decode(&mut d)?;
        let created_unix = d.u64()?;
        let next_rank = d.u64()?;
        d.expect_done("backup descriptor")?;
        Ok(BackupDescriptor {
            source,
            snapshot,
            base,
            set_id,
            set_size,
            params,
            created_unix,
            next_rank,
        })
    }
}

/// Result of creating a backup set.
#[derive(Debug, Clone)]
pub struct BackupSetInfo {
    /// Random set id recorded in every member's descriptor.
    pub set_id: u64,
    /// Archive object names, in spec order.
    pub names: Vec<String>,
    /// The snapshot created for each source, in spec order. Keep these to
    /// serve as bases for the next incremental backup; deallocate them when
    /// no longer needed.
    pub snapshots: Vec<PartitionId>,
}

/// The trusted program's approval hook for restores (§6.3: "backup restores
/// require approval from a trusted program, which may deny frequent
/// restoring or restoring of old backups").
pub trait RestorePolicy: Send + Sync {
    /// Inspects every validated descriptor about to be restored; returning
    /// an error aborts the restore before any state changes.
    fn approve(&self, descriptors: &[BackupDescriptor]) -> std::result::Result<(), String>;
}

/// A policy that approves everything (for tests and tooling).
pub struct ApproveAll;

impl RestorePolicy for ApproveAll {
    fn approve(&self, _descriptors: &[BackupDescriptor]) -> std::result::Result<(), String> {
        Ok(())
    }
}

/// Summary of a completed restore.
#[derive(Debug, Clone)]
pub struct RestoreReport {
    /// Source partitions replaced.
    pub restored: Vec<PartitionId>,
    /// Chunks written across all partitions.
    pub chunks_written: usize,
}

/// The backup store.
pub struct BackupStore {
    chunks: Arc<ChunkStore>,
    archive: Arc<dyn ArchivalStore>,
}

impl BackupStore {
    /// Couples a chunk store with an archival store.
    pub fn new(chunks: Arc<ChunkStore>, archive: Arc<dyn ArchivalStore>) -> BackupStore {
        BackupStore { chunks, archive }
    }

    /// Creates one backup set covering `specs`, writing archive objects
    /// named `"{set_name}.{i}"`.
    ///
    /// # Errors
    ///
    /// Fails on missing partitions, storage errors, or tampered source
    /// chunks (every chunk is validated as it is read).
    pub fn backup(&self, specs: &[BackupSpec], set_name: &str) -> Result<BackupSetInfo> {
        if specs.is_empty() {
            return Err(CoreError::RestoreConstraint("empty backup set".into()));
        }
        // 1. One commit snapshots every source consistently (§6.1).
        let mut snapshots = Vec::with_capacity(specs.len());
        let mut ops = Vec::with_capacity(specs.len());
        for spec in specs {
            let snap = self.chunks.allocate_partition()?;
            ops.push(CommitOp::CopyPartition {
                dst: snap,
                src: spec.source,
            });
            snapshots.push(snap);
        }
        self.chunks.commit(ops)?;

        // 2. Stream each partition backup (conceptually in the background;
        //    serialized here per the engine's single-lock model).
        let mut set_id_bytes = [0u8; 8];
        rand::thread_rng().fill_bytes(&mut set_id_bytes);
        let set_id = u64::from_le_bytes(set_id_bytes);
        let created_unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut names = Vec::with_capacity(specs.len());
        for (i, (spec, &snap)) in specs.iter().zip(snapshots.iter()).enumerate() {
            let name = format!("{set_name}.{i}");
            self.stream_partition_backup(
                spec,
                snap,
                set_id,
                specs.len() as u32,
                created_unix,
                &name,
            )?;
            names.push(name);
        }
        Ok(BackupSetInfo {
            set_id,
            names,
            snapshots,
        })
    }

    /// Streams a single-partition backup set from an *existing* snapshot
    /// (the caller already committed the `CopyPartition`). Used by the
    /// shard manager's migration path, where the snapshot must be taken
    /// under the manager's own journaled state machine rather than inside
    /// [`BackupStore::backup`].
    ///
    /// # Errors
    ///
    /// Fails on missing partitions, storage errors, or tampered source
    /// chunks.
    pub fn backup_one(&self, spec: &BackupSpec, snapshot: PartitionId, name: &str) -> Result<()> {
        let mut set_id_bytes = [0u8; 8];
        rand::thread_rng().fill_bytes(&mut set_id_bytes);
        let set_id = u64::from_le_bytes(set_id_bytes);
        let created_unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        self.stream_partition_backup(spec, snapshot, set_id, 1, created_unix, name)
    }

    /// Streams a full backup of `source` reading the partition *directly*,
    /// with no copy-on-write snapshot. Only sound when `source` cannot
    /// change underneath the stream — the shard manager uses this to
    /// evacuate partitions off a Degraded (read-only) shard, where a
    /// snapshot commit is impossible precisely because the store rejects
    /// mutations.
    ///
    /// # Errors
    ///
    /// Fails on missing partitions, storage errors, or tampered chunks.
    pub fn backup_frozen(&self, source: PartitionId, name: &str) -> Result<()> {
        let spec = BackupSpec { source, base: None };
        // The partition doubles as its own "snapshot": reads target it and
        // the descriptor records it, which keeps restore-side validation
        // identical to the snapshotted path.
        self.backup_one(&spec, source, name)
    }

    fn stream_partition_backup(
        &self,
        spec: &BackupSpec,
        snapshot: PartitionId,
        set_id: u64,
        set_size: u32,
        created_unix: u64,
        name: &str,
    ) -> Result<()> {
        // Gather what goes into the backup. Full: every written chunk.
        // Incremental: the diff against the base snapshot (§6.2).
        let (writes, deallocs): (Vec<u64>, Vec<u64>) = match spec.base {
            None => (self.chunks.written_ranks(snapshot)?, Vec::new()),
            Some(base) => {
                let mut writes = Vec::new();
                let mut deallocs = Vec::new();
                for entry in self.chunks.diff(base, snapshot)? {
                    match entry.change {
                        DiffChange::Created | DiffChange::Updated => writes.push(entry.pos.rank),
                        DiffChange::Deallocated => deallocs.push(entry.pos.rank),
                    }
                }
                (writes, deallocs)
            }
        };

        let (params, next_rank) = self.chunks.with_inner(|inner| {
            let entry = inner.leader_entry(snapshot)?;
            Ok((entry.leader.params.clone(), entry.leader.next_rank))
        })?;
        let descriptor = BackupDescriptor {
            source: spec.source,
            snapshot,
            base: spec.base,
            set_id,
            set_size,
            params,
            created_unix,
            next_rank,
        };

        let part_crypto = descriptor.params.runtime()?;
        let desc_plain = descriptor.encode();

        let mut out = CrcWriter::new(self.archive.create(name)?);
        // E_s(BackupDescriptor), length-prefixed.
        let (sealed_desc, system_sign): (Vec<u8>, _) = self.chunks.with_inner(|inner| {
            let sealed = inner.system.encrypt(&desc_plain);
            Ok((sealed, Arc::clone(&inner.system)))
        })?;
        out.put_u32(sealed_desc.len() as u32)?;
        out.put(&sealed_desc)?;

        // Chunk versions, hashed into the content hash as (rank ‖ body).
        let mut content = descriptor.params.hash.hasher();
        for rank in writes {
            let body = self.chunks.read(ChunkId::data(snapshot, rank))?;
            content.update(&rank.to_le_bytes());
            content.update(&body);
            let sealed = self.chunks.with_inner(|inner| {
                let _t = metrics::span(modules::ENCRYPTION);
                Ok(seal_version(
                    &inner.system,
                    &part_crypto,
                    VersionKind::Named,
                    ChunkId::data(spec.source, rank),
                    &body,
                ))
            })?;
            out.put(&sealed)?;
        }
        if !deallocs.is_empty() {
            let rec = DeallocRecord {
                ids: deallocs
                    .iter()
                    .map(|&r| ChunkId::data(spec.source, r))
                    .collect(),
            };
            for &rank in &deallocs {
                content.update(b"D");
                content.update(&rank.to_le_bytes());
            }
            let sealed = self.chunks.with_inner(|inner| {
                Ok(seal_version(
                    &inner.system,
                    &inner.system.clone(),
                    VersionKind::Dealloc,
                    VersionHeader::unnamed_id(),
                    &rec.encode(),
                ))
            })?;
            out.put(&sealed)?;
        }
        // End-of-chunks marker.
        out.put(&[0u8, 0u8])?;

        // BackupSignature = E_s(HMAC_s(descriptor ‖ content hash)) (§6.2).
        let content_hash = content.finalize();
        let sig = system_sign.sign(&[&desc_plain, content_hash.as_bytes()]);
        let sealed_sig = system_sign.encrypt(sig.as_bytes());
        out.put_u32(sealed_sig.len() as u32)?;
        out.put(&sealed_sig)?;

        // Unencrypted CRC-32 trailer.
        let crc = out.crc();
        out.put(&crc.to_le_bytes())?;
        out.finish()
    }

    /// Restores the named backup objects, enforcing chain and
    /// set-completeness constraints (§6.3), then atomically replaces the
    /// restored partitions in one commit.
    ///
    /// # Errors
    ///
    /// Fails (without modifying the store) on validation failures,
    /// constraint violations, or policy denial.
    pub fn restore(&self, names: &[&str], policy: &dyn RestorePolicy) -> Result<RestoreReport> {
        // Parse and validate every object first.
        let mut parsed: Vec<ParsedBackup> = Vec::new();
        for name in names {
            parsed.push(self.read_backup(name)?);
        }

        // Set completeness: "if a partition backup is restored, the
        // remaining partition backups in the same backup set must also be
        // restored".
        let mut set_counts: std::collections::HashMap<u64, (u32, u32)> =
            std::collections::HashMap::new();
        for p in &parsed {
            let e = set_counts
                .entry(p.descriptor.set_id)
                .or_insert((0, p.descriptor.set_size));
            e.0 += 1;
            if e.1 != p.descriptor.set_size {
                return Err(CoreError::RestoreConstraint(format!(
                    "backup set {:x} has inconsistent recorded sizes",
                    p.descriptor.set_id
                )));
            }
        }
        for (set_id, (have, want)) in &set_counts {
            if have != want {
                return Err(CoreError::RestoreConstraint(format!(
                    "backup set {set_id:x} incomplete: {have} of {want} partition backups supplied"
                )));
            }
        }

        // Group by source partition and order each group into a full →
        // incremental chain ("incremental backups are restored in the same
        // order as they were created, with no missing links in between").
        let mut by_source: std::collections::BTreeMap<u32, Vec<ParsedBackup>> =
            std::collections::BTreeMap::new();
        for p in parsed {
            by_source.entry(p.descriptor.source.0).or_default().push(p);
        }
        let mut all_descriptors = Vec::new();
        let mut chains: Vec<(PartitionId, Vec<ParsedBackup>)> = Vec::new();
        for (source, group) in by_source {
            let chain = order_chain(PartitionId(source), group)?;
            all_descriptors.extend(chain.iter().map(|p| p.descriptor.clone()));
            chains.push((PartitionId(source), chain));
        }

        // Trusted-program approval gate.
        policy
            .approve(&all_descriptors)
            .map_err(CoreError::RestoreDenied)?;

        // Materialize final state per source and build one atomic commit.
        let mut ops: Vec<CommitOp> = Vec::new();
        let mut restored = Vec::new();
        let mut chunks_written = 0usize;
        for (source, chain) in chains {
            let params = chain
                .last()
                .expect("chain non-empty")
                .descriptor
                .params
                .clone();
            let mut state: std::collections::BTreeMap<u64, Vec<u8>> =
                std::collections::BTreeMap::new();
            for backup in &chain {
                for (rank, body) in &backup.writes {
                    state.insert(*rank, body.clone());
                }
                for rank in &backup.deallocs {
                    state.remove(rank);
                }
            }
            if self.chunks.partition_exists(source) {
                ops.push(CommitOp::DeallocPartition { id: source });
            }
            ops.push(CommitOp::CreatePartition { id: source, params });
            for (rank, body) in state {
                ops.push(CommitOp::WriteChunk {
                    id: ChunkId::data(source, rank),
                    bytes: body,
                });
                chunks_written += 1;
            }
            restored.push(source);
        }
        // "After reading the entire backup stream, the restored partitions
        // are atomically committed to the chunk store" (§6.3).
        self.chunks.commit(ops)?;
        Ok(RestoreReport {
            restored,
            chunks_written,
        })
    }

    /// Restores one source's backup chain into partition `target` instead
    /// of the partition named in the descriptors. The migration path needs
    /// this: a partition shipped from another shard must land in an id
    /// allocated on *this* store, which generally differs from the id it
    /// had at home.
    ///
    /// All named objects must belong to a single source partition; the
    /// chain is ordered and validated exactly as in [`BackupStore::restore`]
    /// (every chunk is signature-verified before anything is installed),
    /// and any existing state under `target` is atomically replaced.
    ///
    /// # Errors
    ///
    /// Fails (without modifying the store) on validation failures,
    /// constraint violations, multi-source input, or policy denial.
    pub fn restore_as(
        &self,
        names: &[&str],
        policy: &dyn RestorePolicy,
        target: PartitionId,
    ) -> Result<RestoreReport> {
        let mut parsed: Vec<ParsedBackup> = Vec::new();
        for name in names {
            parsed.push(self.read_backup(name)?);
        }
        let source = parsed
            .first()
            .map(|p| p.descriptor.source)
            .ok_or_else(|| CoreError::RestoreConstraint("empty restore".into()))?;
        if parsed.iter().any(|p| p.descriptor.source != source) {
            return Err(CoreError::RestoreConstraint(
                "restore_as requires a single-source backup chain".into(),
            ));
        }
        let chain = order_chain(source, parsed)?;
        let descriptors: Vec<BackupDescriptor> =
            chain.iter().map(|p| p.descriptor.clone()).collect();
        policy
            .approve(&descriptors)
            .map_err(CoreError::RestoreDenied)?;

        let params = chain
            .last()
            .expect("chain non-empty")
            .descriptor
            .params
            .clone();
        let mut state: std::collections::BTreeMap<u64, Vec<u8>> = std::collections::BTreeMap::new();
        for backup in &chain {
            for (rank, body) in &backup.writes {
                state.insert(*rank, body.clone());
            }
            for rank in &backup.deallocs {
                state.remove(rank);
            }
        }
        let mut ops: Vec<CommitOp> = Vec::new();
        if self.chunks.partition_exists(target) {
            // A retried migration may have left a partial install; replace
            // it wholesale so the restore is idempotent.
            ops.push(CommitOp::DeallocPartition { id: target });
        }
        ops.push(CommitOp::CreatePartition { id: target, params });
        let mut chunks_written = 0usize;
        for (rank, body) in state {
            ops.push(CommitOp::WriteChunk {
                id: ChunkId::data(target, rank),
                bytes: body,
            });
            chunks_written += 1;
        }
        self.chunks.commit(ops)?;
        Ok(RestoreReport {
            restored: vec![target],
            chunks_written,
        })
    }

    /// Applies a single *incremental* backup object on top of the already
    /// restored partition `target` (the migration delta-drain step): new
    /// and updated chunks are written and deallocated ranks removed, all in
    /// one atomic commit.
    ///
    /// The caller is responsible for base continuity — the object's base
    /// snapshot must be the one the current contents of `target` were
    /// restored from (the shard manager's journaled state machine
    /// guarantees this ordering).
    ///
    /// # Errors
    ///
    /// Fails (without modifying the store) on validation failures, a
    /// non-incremental object, or policy denial.
    pub fn apply_incremental(
        &self,
        name: &str,
        policy: &dyn RestorePolicy,
        target: PartitionId,
    ) -> Result<usize> {
        let parsed = self.read_backup(name)?;
        if parsed.descriptor.base.is_none() {
            return Err(CoreError::RestoreConstraint(format!(
                "{name} is a full backup, not an incremental delta"
            )));
        }
        policy
            .approve(std::slice::from_ref(&parsed.descriptor))
            .map_err(CoreError::RestoreDenied)?;
        if !self.chunks.partition_exists(target) {
            return Err(CoreError::NoSuchPartition(target));
        }
        // Delta chunks may land at ranks the target has never allocated
        // (writes past the base snapshot's high-water mark); reserve those
        // so the atomic commit below passes allocation validation.
        self.chunks.with_inner(|inner| {
            for (rank, _) in &parsed.writes {
                let id = ChunkId::data(target, *rank);
                if inner.effective_status(id)? == crate::descriptor::ChunkStatus::Unallocated {
                    inner.reserve_rank(target, *rank)?;
                }
            }
            Ok(())
        })?;
        let mut ops: Vec<CommitOp> = Vec::new();
        let mut changed = 0usize;
        for (rank, body) in parsed.writes {
            ops.push(CommitOp::WriteChunk {
                id: ChunkId::data(target, rank),
                bytes: body,
            });
            changed += 1;
        }
        for rank in parsed.deallocs {
            ops.push(CommitOp::DeallocChunk {
                id: ChunkId::data(target, rank),
            });
            changed += 1;
        }
        if !ops.is_empty() {
            self.chunks.commit(ops)?;
        }
        Ok(changed)
    }

    /// Reads, checksums, decrypts, and signature-verifies one backup object.
    fn read_backup(&self, name: &str) -> Result<ParsedBackup> {
        let mut reader = self.archive.open(name)?;
        let mut buf = Vec::new();
        reader
            .read_to_end(&mut buf)
            .map_err(|e| CoreError::Store(tdb_storage::StoreError::Io(e)))?;
        if buf.len() < 4 {
            return Err(bad_backup(name, "truncated stream"));
        }
        // CRC trailer first: it verifies the stream arrived complete.
        let body = &buf[..buf.len() - 4];
        let stored_crc = u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("4 bytes"));
        if Crc32::checksum(body) != stored_crc {
            return Err(bad_backup(
                name,
                "checksum mismatch (incomplete or corrupt)",
            ));
        }

        self.chunks.with_inner(|inner| {
            let system = Arc::clone(&inner.system);
            let mut off = 0usize;
            let take = |off: &mut usize, n: usize| -> Result<&[u8]> {
                if *off + n > body.len() {
                    return Err(bad_backup(name, "truncated stream"));
                }
                let out = &body[*off..*off + n];
                *off += n;
                Ok(out)
            };

            // E_s(BackupDescriptor).
            let desc_len =
                u32::from_le_bytes(take(&mut off, 4)?.try_into().expect("4 bytes")) as usize;
            let desc_ct = take(&mut off, desc_len)?;
            let desc_plain = system
                .decrypt(desc_ct, 0)
                .map_err(|_| bad_backup(name, "descriptor does not decrypt"))?;
            let descriptor = BackupDescriptor::decode(&desc_plain)?;
            let part_crypto = descriptor.params.runtime()?;

            // Chunk versions until the zero marker.
            let mut writes = Vec::new();
            let mut deallocs = Vec::new();
            let mut content = descriptor.params.hash.hasher();
            loop {
                let parsed = parse_version(&system, &body[off..], off as u64)
                    .map_err(|_| bad_backup(name, "chunk version does not parse"))?;
                let Some(raw) = parsed else {
                    off += 2; // The zero marker.
                    break;
                };
                match raw.header.kind {
                    VersionKind::Named => {
                        let chunk_body = raw
                            .open_body(&part_crypto, 0)
                            .map_err(|_| bad_backup(name, "chunk body does not decrypt"))?;
                        content.update(&raw.header.id.pos.rank.to_le_bytes());
                        content.update(&chunk_body);
                        writes.push((raw.header.id.pos.rank, chunk_body));
                    }
                    VersionKind::Dealloc => {
                        let rec_body = raw
                            .open_body(&system, 0)
                            .map_err(|_| bad_backup(name, "dealloc record does not decrypt"))?;
                        let rec = DeallocRecord::decode(&rec_body)?;
                        for id in rec.ids {
                            content.update(b"D");
                            content.update(&id.pos.rank.to_le_bytes());
                            deallocs.push(id.pos.rank);
                        }
                    }
                    other => {
                        return Err(bad_backup(
                            name,
                            &format!("unexpected version kind {other:?} in backup"),
                        ))
                    }
                }
                off += raw.total_len;
            }

            // BackupSignature.
            let sig_len =
                u32::from_le_bytes(take(&mut off, 4)?.try_into().expect("4 bytes")) as usize;
            let sig_ct = take(&mut off, sig_len)?;
            if off != body.len() {
                return Err(bad_backup(name, "trailing bytes after signature"));
            }
            let sig_plain = system
                .decrypt(sig_ct, 0)
                .map_err(|_| bad_backup(name, "signature does not decrypt"))?;
            let content_hash: HashValue = content.finalize();
            let expected = system.sign(&[&desc_plain, content_hash.as_bytes()]);
            if !tdb_crypto::ct_eq(expected.as_bytes(), &sig_plain) {
                return Err(bad_backup(name, "signature verification failed"));
            }
            Ok(ParsedBackup {
                descriptor,
                writes,
                deallocs,
            })
        })
    }

    /// The archival store in use.
    pub fn archive(&self) -> &Arc<dyn ArchivalStore> {
        &self.archive
    }
}

fn bad_backup(name: &str, why: &str) -> CoreError {
    CoreError::TamperDetected(TamperKind::BadBackup(format!("{name}: {why}")))
}

/// An archive writer that tracks the running CRC-32 of everything written.
struct CrcWriter {
    inner: Box<dyn tdb_storage::archival::ArchiveWriter>,
    crc: Crc32,
}

impl CrcWriter {
    fn new(inner: Box<dyn tdb_storage::archival::ArchiveWriter>) -> CrcWriter {
        CrcWriter {
            inner,
            crc: Crc32::new(),
        }
    }

    fn put(&mut self, bytes: &[u8]) -> Result<()> {
        use std::io::Write;
        self.crc.update(bytes);
        self.inner
            .write_all(bytes)
            .map_err(|e| CoreError::Store(tdb_storage::StoreError::Io(e)))
    }

    fn put_u32(&mut self, v: u32) -> Result<()> {
        self.put(&v.to_le_bytes())
    }

    /// CRC of everything written so far.
    fn crc(&self) -> u32 {
        self.crc.finalize()
    }

    fn finish(self) -> Result<()> {
        self.inner.finish()?;
        Ok(())
    }
}

/// One parsed, validated partition backup.
struct ParsedBackup {
    descriptor: BackupDescriptor,
    writes: Vec<(u64, Vec<u8>)>,
    deallocs: Vec<u64>,
}

/// Orders a source's backups into full → incremental chain, verifying the
/// base links.
fn order_chain(source: PartitionId, group: Vec<ParsedBackup>) -> Result<Vec<ParsedBackup>> {
    let mut full: Vec<ParsedBackup> = Vec::new();
    let mut incrementals: Vec<ParsedBackup> = Vec::new();
    for p in group {
        if p.descriptor.base.is_none() {
            full.push(p);
        } else {
            incrementals.push(p);
        }
    }
    if full.len() != 1 {
        return Err(CoreError::RestoreConstraint(format!(
            "partition {source}: need exactly one full backup, found {}",
            full.len()
        )));
    }
    let mut chain = full;
    while !incrementals.is_empty() {
        let prev_snapshot = chain.last().expect("non-empty").descriptor.snapshot;
        let idx = incrementals
            .iter()
            .position(|p| p.descriptor.base == Some(prev_snapshot))
            .ok_or_else(|| {
                CoreError::RestoreConstraint(format!(
                    "partition {source}: missing link after snapshot {prev_snapshot}"
                ))
            })?;
        chain.push(incrementals.swap_remove(idx));
    }
    Ok(chain)
}
