//! The log cleaner (§4.9.5, §5.5): reclaiming obsolete chunk versions.
//!
//! "The log cleaner reclaims the storage of obsolete chunk versions and
//! compacts the storage to create empty segments. It selects a segment to
//! clean and determines whether each chunk version is current by using the
//! chunk id in the header to find the current location in the chunk map. It
//! then commits the set of current chunks, which rewrites them to the end
//! of the log."
//!
//! Partition copies complicate currency: "even if the version is obsolete
//! in P, it may be current in some direct or indirect copy of P", so the
//! cleaner checks the copy closure and appends a *cleaner chunk* naming the
//! partitions where the relocated version is current, for recovery.
//!
//! Two variants are implemented (§4.9.5): the paper's simple one, where the
//! rewrite is a regular commit that decrypts, *revalidates*, and re-hashes
//! each chunk (so the cleaner cannot launder an attacker's modifications),
//! and the faster variant that moves sealed bytes verbatim without updating
//! stored hashes.
//!
//! Each [`Inner::clean`] call is one bounded *slice*: the background
//! maintenance runtime ([`crate::maintenance`]) invokes it repeatedly with
//! `clean_slice_segments` per engine-lock hold, so committers interleave
//! between slices instead of stalling behind one long cleaning pass.

use std::collections::HashSet;

use crate::descriptor::Descriptor;
use crate::errors::{CoreError, Result, TamperKind};
use crate::ids::{ChunkId, PartitionId, LEADER_HEIGHT};
use crate::metrics::{self, counters, modules};
use crate::store::{Inner, ValidationMode};
use crate::version::{parse_version, seal_version, CleanerRecord, VersionHeader, VersionKind};

/// What one cleaning pass did, reported to the store facade so the read
/// path can invalidate exactly the published descriptors that went stale.
pub(crate) struct CleanOutcome {
    /// Segments reclaimed.
    pub reclaimed: usize,
    /// `(partition, position)` ids whose current version was relocated;
    /// every other published descriptor survived the pass untouched.
    pub relocated: Vec<ChunkId>,
}

impl Inner {
    /// Cleans up to `max_segments` low-utilization segments; returns how
    /// many were reclaimed and which chunk ids were relocated.
    pub(crate) fn clean(&mut self, max_segments: usize) -> Result<CleanOutcome> {
        let targets = self.pick_segments(max_segments);
        if targets.is_empty() {
            return Ok(CleanOutcome {
                reclaimed: 0,
                relocated: Vec::new(),
            });
        }
        let snap = self.snapshot();
        self.wrote_log = false;
        let result = self.clean_segments(&targets);
        if let Err(e) = &result {
            self.fail_mutation(snap, e, "cleaning");
        }
        result
    }

    /// Chooses cleanable segments, lowest utilization first ("for
    /// performance reasons, the cleaner selects segments with low
    /// utilization").
    fn pick_segments(&self, max_segments: usize) -> Vec<u32> {
        let residual = self.log.residual_segments();
        let free: HashSet<u32> = self.sys_leader.log.free_segments.iter().copied().collect();
        let mut candidates: Vec<(u32, u32)> = self
            .sys_leader
            .log
            .utilization
            .iter()
            .enumerate()
            .map(|(seg, util)| (*util, seg as u32))
            .filter(|(_, seg)| !residual.contains(seg) && !free.contains(seg))
            .collect();
        candidates.sort_unstable();
        candidates
            .into_iter()
            .take(max_segments)
            .map(|(_, seg)| seg)
            .collect()
    }

    fn clean_segments(&mut self, targets: &[u32]) -> Result<CleanOutcome> {
        if matches!(self.config.validation, ValidationMode::Counter { .. }) {
            self.hashes.begin_set();
        }
        // Obsolete bytes per target, captured before relocation shuffles
        // utilization: the live remainder is rewritten to the tail, so the
        // net space the pass reclaims is segment size minus live bytes.
        let seg_size = self.log.segment_size();
        let obsolete: u64 = targets
            .iter()
            .map(|seg| {
                let live = self
                    .sys_leader
                    .log
                    .utilization
                    .get(*seg as usize)
                    .copied()
                    .unwrap_or(0);
                u64::from(seg_size.saturating_sub(live))
            })
            .sum();
        let mut freed = Vec::new();
        let mut relocated: Vec<ChunkId> = Vec::new();
        let mut rewrote_any = false;
        for &seg in targets {
            rewrote_any |= self.clean_one_segment(seg, &mut relocated)?;
            freed.push(seg);
        }
        if rewrote_any || matches!(self.config.validation, ValidationMode::Counter { .. }) {
            // The rewrites form one commit (§4.9.5: "then commits the set of
            // current chunks").
            self.finish_commit()?;
        }
        // Only after the cleaning commit is durable may the segments be
        // recycled.
        for seg in &freed {
            self.sys_leader.log.free_segments.push(*seg);
            if let Some(u) = self.sys_leader.log.utilization.get_mut(*seg as usize) {
                *u = 0;
            }
        }
        self.stats.segments_cleaned += freed.len() as u64;
        self.stats.bytes_reclaimed += obsolete;
        metrics::add(counters::SEGMENTS_CLEANED, freed.len() as u64);
        metrics::add(counters::BYTES_RECLAIMED, obsolete);
        Ok(CleanOutcome {
            reclaimed: freed.len(),
            relocated,
        })
    }

    fn clean_one_segment(&mut self, seg: u32, relocated: &mut Vec<ChunkId>) -> Result<bool> {
        let buf = self.log.read_segment(seg)?;
        let base = self.log.segment_offset(seg);
        let mut off = 0usize;
        let mut rewrote = false;
        while off < buf.len() {
            let location = base + off as u64;
            let parsed = {
                let _t = metrics::span(modules::ENCRYPTION);
                match parse_version(&self.system, &buf[off..], location) {
                    Ok(p) => p,
                    // Torn bytes at an old crash tail: everything beyond is
                    // garbage, and garbage is never current.
                    Err(_) => break,
                }
            };
            let Some(raw) = parsed else { break };
            let total = raw.total_len;
            if matches!(raw.header.kind, VersionKind::Named | VersionKind::Relocated)
                && raw.header.id.pos.height != LEADER_HEIGHT
            {
                let current_in = self.current_in(raw.header.id, location)?;
                if !current_in.is_empty() {
                    self.relocate(
                        raw.header.id,
                        &buf[off..off + total],
                        location,
                        &current_in,
                        relocated,
                    )?;
                    rewrote = true;
                }
            }
            off += total;
        }
        Ok(rewrote)
    }

    /// Finds the partitions (header partition plus its copy closure) in
    /// which the version at `location` is current.
    fn current_in(&mut self, id: ChunkId, location: u64) -> Result<Vec<PartitionId>> {
        let mut result = Vec::new();
        let mut queue = vec![id.partition];
        let mut seen: HashSet<PartitionId> = queue.iter().copied().collect();
        while let Some(q) = queue.pop() {
            if !q.is_system() {
                match self.leader_entry(q) {
                    Ok(entry) => {
                        // Walk down to copies and up to the source, so
                        // sibling copies are reached no matter which family
                        // member the version's header names.
                        let mut neighbors = entry.leader.copies.clone();
                        if let Some(src) = entry.leader.source {
                            neighbors.push(src);
                        }
                        for c in neighbors {
                            if seen.insert(c) {
                                queue.push(c);
                            }
                        }
                    }
                    // Deallocated partition: all its versions are obsolete
                    // (its copies were deallocated with it, §5.5).
                    Err(_) => continue,
                }
            }
            let desc = self.get_descriptor(ChunkId::new(q, id.pos))?;
            if desc.is_written() && desc.location == location {
                result.push(q);
            }
        }
        Ok(result)
    }

    /// Rewrites one current version to the log tail and repoints every
    /// partition in `current_in` at it.
    fn relocate(
        &mut self,
        original_id: ChunkId,
        sealed_old: &[u8],
        old_location: u64,
        current_in: &[PartitionId],
        relocated: &mut Vec<ChunkId>,
    ) -> Result<()> {
        let pos = original_id.pos;
        let owner = current_in[0];
        let old_desc = self.get_descriptor(ChunkId::new(owner, pos))?;
        let new_desc = if self.config.cleaner_revalidates {
            // The paper's implemented variant: decrypt, validate against
            // the map, and run the regular (re-hashing, re-encrypting)
            // write path — "otherwise, the cleaner might launder chunks
            // modified by an attack".
            let body = self.read_validated(ChunkId::new(owner, pos), &old_desc)?;
            self.write_named(VersionKind::Relocated, original_id, &body)?
        } else {
            // Fast variant: move the sealed bytes verbatim; the stored hash
            // (which covers the stored body — the compressed envelope when
            // the version was sealed compressed) remains valid, and the
            // header's compressed flag rides along inside the sealed bytes.
            let new_location = self.append(&sealed_old.to_vec().clone())?;
            Descriptor::written(new_location, old_desc.vlen, old_desc.size, old_desc.hash)
        };
        let record = CleanerRecord {
            pos,
            new_location: new_desc.location,
            current_in: current_in.to_vec(),
        };
        let sealed = {
            let _t = metrics::span(modules::ENCRYPTION);
            seal_version(
                &self.system,
                &self.system,
                VersionKind::Cleaner,
                VersionHeader::unnamed_id(),
                &record.encode(),
            )
        };
        self.append(&sealed)?;
        for &q in current_in {
            // Sanity: each partition still points at the old version.
            let d = self.get_descriptor(ChunkId::new(q, pos))?;
            if !d.is_written() || d.location != old_location {
                return Err(CoreError::TamperDetected(TamperKind::MisdirectedChunk {
                    expected: ChunkId::new(q, pos),
                    location: old_location,
                }));
            }
            self.set_descriptor(ChunkId::new(q, pos), new_desc)?;
            relocated.push(ChunkId::new(q, pos));
        }
        self.stats.chunks_relocated += 1;
        metrics::count(counters::VERSIONS_RELOCATED);
        Ok(())
    }
}
