//! Proof extraction: effective map bodies and root digests.
//!
//! Checkpoint deferral (§4.7) means persisted ancestor descriptors lag the
//! dirty map cache, so an honest Merkle path must be computed from the
//! *effective* tree — cached (possibly dirty) map-chunk bodies with the
//! hashes of dirty subtrees recomputed bottom-up, exactly what a checkpoint
//! would persist. Clean subtrees keep their stored hash links: a clean
//! cached map chunk re-encodes to the very bytes its parent's hash covers.

use tdb_crypto::HashValue;

use crate::descriptor::Descriptor;
use crate::errors::Result;
use crate::ids::{ChunkId, PartitionId, Position};
use crate::proof::{ProofLevel, ReadProof};
use crate::store::Inner;

impl Inner {
    /// The encoded body the map chunk at `(p, pos)` would have after a
    /// checkpoint: cached slots, with each slot that heads a dirty map
    /// subtree rewritten to the recursively recomputed effective hash.
    pub(crate) fn effective_map_body(&mut self, p: PartitionId, pos: Position) -> Result<Vec<u8>> {
        self.ensure_map_chunk(p, pos)?;
        let fanout = self.fanout();
        let hash_len = self.crypto_for(p)?.hash_kind().digest_len();
        let mut chunk = self.map_cache.get(p, pos).expect("ensured above").clone();
        if pos.height >= 2 {
            for slot in 0..chunk.slots.len() {
                let child = pos.child(fanout, slot);
                if !self.subtree_has_dirty(p, child) {
                    continue;
                }
                let h = self.effective_map_hash(p, child)?;
                let old = chunk.slots[slot];
                chunk.slots[slot] = Descriptor::written(old.location, old.vlen, old.size, h);
            }
        }
        Ok(chunk.encode(hash_len))
    }

    /// Effective hash of the map chunk at `(p, pos)`. With `lazy_integrity`
    /// on, unchanged subtrees are served from the dirty-tree accumulator:
    /// only the spine invalidated by descriptor writes since the last query
    /// is re-encoded and re-hashed, so K batched commits cost roughly one
    /// spine recompute instead of K full-subtree recomputes.
    fn effective_map_hash(&mut self, p: PartitionId, pos: Position) -> Result<HashValue> {
        if let Some(hash) = self.lazy.get(p, pos) {
            return Ok(hash);
        }
        let body = self.effective_map_body(p, pos)?;
        let hash = self.crypto_for(p)?.hash(&body);
        self.lazy.put(p, pos, hash);
        Ok(hash)
    }

    /// The partition's effective root digest: what the root descriptor's
    /// hash would be if a checkpoint ran now (and *is* right after one).
    pub(crate) fn effective_root_hash(&mut self, p: PartitionId) -> Result<HashValue> {
        let height = self.tree_height(p)?;
        if height == 0 {
            // Single-chunk tree: the data chunk is the root; its descriptor
            // lives in the leader and is always effective.
            let root = self.root_descriptor(p)?;
            if root.is_written() {
                return Ok(root.hash);
            }
            return Err(crate::errors::CoreError::NotWritten(ChunkId::new(
                p,
                Position::data(0),
            )));
        }
        self.effective_map_hash(p, Position::map(height, 0))
    }

    /// Extracts the Merkle path for `id` against the effective root.
    /// Callers must hold the engine lock across the paired chunk read so
    /// body and proof describe one committed state.
    pub(crate) fn extract_proof(&mut self, id: ChunkId) -> Result<ReadProof> {
        let height = self.tree_height(id.partition)?;
        let fanout = self.fanout();
        let hash = self.crypto_for(id.partition)?.hash_kind();
        let mut levels = Vec::with_capacity(usize::from(height));
        let mut pos = id.pos;
        while pos.height < height {
            let parent = pos.parent(fanout);
            let body = self.effective_map_body(id.partition, parent)?;
            levels.push(ProofLevel {
                body,
                slot: pos.slot(fanout),
            });
            pos = parent;
        }
        let root = self.effective_root_hash(id.partition)?;
        Ok(ReadProof {
            id,
            hash,
            fanout: self.config.fanout,
            levels,
            root,
            stored_body: None,
        })
    }
}
