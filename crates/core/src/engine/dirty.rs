//! Lazy Merkle materialization: the dirty-tree accumulator.
//!
//! Checkpoint deferral (§4.7) already keeps commits from re-hashing
//! ancestor map levels — but every `snapshot_root` / `read_with_proof`
//! recomputes the *effective* tree ([`crate::engine::proof`]) from scratch:
//! each dirty map subtree is re-encoded and re-hashed on every call, even
//! when nothing in it changed since the last call. Under a proof-heavy
//! workload (GlassDB-style verifiable reads) that eager recompute dominates
//! the sealed-vs-plaintext gap.
//!
//! The accumulator memoizes effective subtree hashes between mutations.
//! Commits invalidate only the O(height) spine above each touched
//! descriptor; root/proof queries then recompute just the invalidated
//! spine and serve every unchanged sibling subtree from the memo, so K
//! batched commits pay roughly one level recompute instead of K.
//!
//! Invariant: `memo[(p, pos)]`, when present, equals the hash of the
//! effective body of map chunk `(p, pos)` — the bytes a checkpoint would
//! persist right now. Every mutation that can change an effective body
//! must remove the affected entries:
//!
//! - descriptor writes invalidate the parent-to-root spine
//!   ([`crate::store::Inner::set_descriptor`]);
//! - tree growth, partition dealloc/purge, and partition copies drop the
//!   whole partition (rare, conservative);
//! - snapshot restore after a failed mutation clears everything.
//!
//! Marking a chunk clean (checkpoint) does *not* invalidate: the persisted
//! body is byte-identical to the effective body the memo hashed.
//!
//! Disabled (`lazy_integrity = false`, the default), every method is a
//! no-op and the engine behaves exactly as the paper's eager recompute.

use std::collections::HashMap;

use tdb_crypto::HashValue;

use crate::ids::{PartitionId, Position};

/// Memo of effective map-subtree hashes, keyed by map position.
#[derive(Debug, Default)]
pub(crate) struct DirtyTreeAccumulator {
    enabled: bool,
    memo: HashMap<(PartitionId, Position), HashValue>,
    /// Effective-hash lookups served from the memo.
    pub hits: u64,
    /// Effective-hash lookups that had to recompute (and filled the memo).
    pub recomputes: u64,
    /// Memo entries dropped by spine/partition invalidation.
    pub invalidations: u64,
}

impl DirtyTreeAccumulator {
    /// Creates an accumulator; disabled instances never memoize.
    pub fn new(enabled: bool) -> DirtyTreeAccumulator {
        DirtyTreeAccumulator {
            enabled,
            ..DirtyTreeAccumulator::default()
        }
    }

    /// Whether lazy materialization is on.
    #[cfg(test)]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Memoized effective hash of map chunk `(p, pos)`, if current.
    pub fn get(&mut self, p: PartitionId, pos: Position) -> Option<HashValue> {
        let hit = self.memo.get(&(p, pos)).copied();
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    /// Records a freshly computed effective hash.
    pub fn put(&mut self, p: PartitionId, pos: Position, hash: HashValue) {
        if self.enabled {
            self.recomputes += 1;
            self.memo.insert((p, pos), hash);
        }
    }

    /// Invalidates the spine above a descriptor write at `pos`: every map
    /// ancestor strictly above `pos` up to the tree root at `height` has a
    /// changed effective body. O(height) removals, no hashing.
    pub fn invalidate_spine(&mut self, p: PartitionId, mut pos: Position, height: u8, fanout: u64) {
        if !self.enabled {
            return;
        }
        while pos.height < height {
            let parent = pos.parent(fanout);
            if self.memo.remove(&(p, parent)).is_some() {
                self.invalidations += 1;
            }
            pos = parent;
        }
    }

    /// Drops every memo entry of `p` (growth, dealloc, copy targets).
    pub fn invalidate_partition(&mut self, p: PartitionId) {
        if !self.enabled {
            return;
        }
        let before = self.memo.len();
        self.memo.retain(|(q, _), _| *q != p);
        self.invalidations += (before - self.memo.len()) as u64;
    }

    /// Drops everything (snapshot restore / wholesale state replacement).
    pub fn clear(&mut self) {
        self.invalidations += self.memo.len() as u64;
        self.memo.clear();
    }

    /// Entries currently memoized (tests and stats).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.memo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u32) -> PartitionId {
        PartitionId(n)
    }

    fn h(b: u8) -> HashValue {
        HashValue::new(&[b; 20])
    }

    #[test]
    fn disabled_accumulator_never_memoizes() {
        let mut acc = DirtyTreeAccumulator::new(false);
        assert!(!acc.enabled());
        acc.put(p(1), Position::map(1, 0), h(1));
        assert_eq!(acc.len(), 0);
        assert_eq!(acc.get(p(1), Position::map(1, 0)), None);
        assert_eq!(acc.recomputes, 0);
    }

    #[test]
    fn spine_invalidation_is_exact() {
        let mut acc = DirtyTreeAccumulator::new(true);
        // Memoize a 3-level tree: root (3,0), two level-2 chunks, and a
        // level-1 chunk under each.
        for (height, rank) in [(3, 0), (2, 0), (2, 1), (1, 0), (1, 4)] {
            acc.put(p(1), Position::map(height, rank), h(height));
        }
        assert_eq!(acc.len(), 5);
        // A descriptor write at data rank 0 invalidates (1,0), (2,0), (3,0)
        // — its parent chain under fanout 4 — and nothing else.
        acc.invalidate_spine(p(1), Position::data(0), 3, 4);
        assert_eq!(acc.get(p(1), Position::map(1, 0)), None);
        assert_eq!(acc.get(p(1), Position::map(2, 0)), None);
        assert_eq!(acc.get(p(1), Position::map(3, 0)), None);
        assert!(acc.get(p(1), Position::map(2, 1)).is_some());
        assert!(acc.get(p(1), Position::map(1, 4)).is_some());
        assert_eq!(acc.invalidations, 3);
    }

    #[test]
    fn partition_invalidation_spares_others() {
        let mut acc = DirtyTreeAccumulator::new(true);
        acc.put(p(1), Position::map(1, 0), h(1));
        acc.put(p(2), Position::map(1, 0), h(2));
        acc.invalidate_partition(p(1));
        assert_eq!(acc.get(p(1), Position::map(1, 0)), None);
        assert!(acc.get(p(2), Position::map(1, 0)).is_some());
        acc.clear();
        assert_eq!(acc.len(), 0);
    }
}
