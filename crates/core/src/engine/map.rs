//! The chunk map (§4.3, §4.5): locating and validating chunk versions.
//!
//! Descriptors carry both a version's log location and its expected hash,
//! so the map doubles as a Merkle tree: every descriptor read walks the
//! tree bottom-up from the deepest cached ancestor, and every validated
//! chunk read checks the body hash against the descriptor on the way out.

use crate::descriptor::{ChunkStatus, Descriptor, MapChunk};
use crate::errors::{CoreError, Result, TamperKind};
use crate::ids::{capacity, ChunkId, PartitionId, Position};
use crate::metrics::{self, modules};
use crate::store::Inner;
use crate::version::{parse_version, RawVersion, VersionKind};

impl Inner {
    /// Fetches the descriptor for `id`, walking the map bottom-up from the
    /// deepest cached ancestor (§4.5).
    pub(crate) fn get_descriptor(&mut self, id: ChunkId) -> Result<Descriptor> {
        let height = self.tree_height(id.partition)?;
        if id.pos.height > height {
            return Ok(Descriptor::unallocated());
        }
        if id.pos.height == height && id.pos.rank == 0 {
            return self.root_descriptor(id.partition);
        }
        let parent = id.pos.parent(self.fanout());
        self.ensure_map_chunk(id.partition, parent)?;
        let slot = id.pos.slot(self.fanout());
        Ok(self
            .map_cache
            .get(id.partition, parent)
            .expect("ensured above")
            .slots[slot])
    }

    /// Ensures the map chunk at `(p, pos)` is decoded in the cache,
    /// validating it against its descriptor on the way in.
    pub(crate) fn ensure_map_chunk(&mut self, p: PartitionId, pos: Position) -> Result<()> {
        if self.map_cache.contains(p, pos) {
            return Ok(());
        }
        let desc = self.get_descriptor(ChunkId::new(p, pos))?;
        let fanout = self.fanout() as usize;
        let chunk = if desc.is_written() {
            let body = self.read_validated(ChunkId::new(p, pos), &desc)?;
            let hash_len = self.crypto_for(p)?.hash_kind().digest_len();
            MapChunk::decode(&body, fanout, hash_len)?
        } else {
            // Never written: synthesize an empty map chunk.
            MapChunk::empty(fanout)
        };
        self.map_cache.insert(p, pos, chunk, false);
        Ok(())
    }

    /// Updates the descriptor for `id`, dirtying its parent map chunk (the
    /// §4.6 deferral) and maintaining segment utilization.
    pub(crate) fn set_descriptor(&mut self, id: ChunkId, desc: Descriptor) -> Result<()> {
        let old = self.get_descriptor(id)?;
        // Utilization: the old version becomes obsolete, the new is live.
        if old.is_written() {
            let seg = self.log.segment_of(old.location) as usize;
            if let Some(u) = self.sys_leader.log.utilization.get_mut(seg) {
                *u = u.saturating_sub(old.vlen);
            }
        }
        if desc.is_written() {
            let seg = self.log.segment_of(desc.location) as usize;
            if let Some(u) = self.sys_leader.log.utilization.get_mut(seg) {
                *u += desc.vlen;
            }
        }
        let height = self.tree_height(id.partition)?;
        debug_assert!(
            id.pos.height < height || (id.pos.height == height && id.pos.rank == 0),
            "descriptor write outside tree: {id} at height {height}"
        );
        // Lazy integrity: every map ancestor's effective body changes, so
        // the memoized spine above this write is stale. O(height) removals;
        // the hashes are recomputed only when a root/proof query needs them.
        self.lazy
            .invalidate_spine(id.partition, id.pos, height, self.fanout());
        if id.pos.height == height && id.pos.rank == 0 {
            return self.set_root_descriptor(id.partition, desc);
        }
        let parent = id.pos.parent(self.fanout());
        self.ensure_map_chunk(id.partition, parent)?;
        let slot = id.pos.slot(self.fanout());
        self.map_cache
            .get_mut_dirty(id.partition, parent)
            .expect("ensured above")
            .slots[slot] = desc;
        Ok(())
    }

    /// Grows `p`'s tree until `rank` is addressable (§4.3: "as the tree
    /// grows, new chunks are added to the right and to the top").
    pub(crate) fn ensure_capacity(&mut self, p: PartitionId, rank: u64) -> Result<()> {
        loop {
            let height = self.tree_height(p)?;
            if rank < capacity(self.fanout(), height) {
                return Ok(());
            }
            let old_root = self.root_descriptor(p)?;
            let new_height = height + 1;
            let mut chunk = MapChunk::empty(self.fanout() as usize);
            chunk.slots[0] = old_root;
            // Growth rewires the whole spine; drop the partition's memo
            // wholesale (rare, conservative).
            self.lazy.invalidate_partition(p);
            self.map_cache
                .insert(p, Position::map(new_height, 0), chunk, true);
            if p.is_system() {
                self.sys_leader.map.height = new_height;
                self.sys_leader.map.root = Descriptor::unwritten();
            } else {
                let entry = self.leader_entry(p)?;
                entry.leader.height = new_height;
                entry.leader.root = Descriptor::unwritten();
                entry.dirty = true;
            }
        }
    }

    /// Grows the tree so `pos` is addressable (map heights included).
    pub(crate) fn ensure_capacity_for_pos(&mut self, p: PartitionId, pos: Position) -> Result<()> {
        if pos.is_data() {
            return self.ensure_capacity(p, pos.rank);
        }
        // A map position: the tree must be at least `pos.height` tall
        // (capacity ≥ F^height, i.e. rank F^height − 1 addressable) and wide
        // enough to contain the subtree's first data rank.
        let fanout = u64::from(self.config.fanout);
        let subtree = fanout.saturating_pow(u32::from(pos.height));
        let for_height = subtree.saturating_sub(1);
        let for_rank = pos.rank.saturating_mul(subtree);
        self.ensure_capacity(p, for_height.max(for_rank))
    }

    /// Reads and validates the version a descriptor points at, returning
    /// the plaintext body (§4.5: located, decrypted, hashed, compared).
    pub(crate) fn read_validated(&mut self, id: ChunkId, desc: &Descriptor) -> Result<Vec<u8>> {
        Ok(self.read_validated_full(id, desc)?.0)
    }

    /// [`Inner::read_validated`] that also returns the stored envelope
    /// when the version was compressed — proof extraction ships it to
    /// clients, whose leaf hash check runs over the stored bytes.
    pub(crate) fn read_validated_full(
        &mut self,
        id: ChunkId,
        desc: &Descriptor,
    ) -> Result<(Vec<u8>, Option<Vec<u8>>)> {
        debug_assert!(desc.is_written());
        let buf = self.log.read_at(desc.location, desc.vlen as usize)?;
        let raw = self.parse_at(&buf, desc.location)?;
        if !matches!(raw.header.kind, VersionKind::Named | VersionKind::Relocated)
            || raw.header.id.pos != id.pos
        {
            return Err(CoreError::TamperDetected(TamperKind::MisdirectedChunk {
                expected: id,
                location: desc.location,
            }));
        }
        let crypto = self.crypto_for(id.partition)?;
        let body = {
            let _t = metrics::span(modules::ENCRYPTION);
            raw.open_body(&crypto, desc.location)?
        };
        let hash = {
            let _t = metrics::span(modules::HASHING);
            crypto.hash(&body)
        };
        if hash != desc.hash {
            return Err(CoreError::TamperDetected(TamperKind::ChunkHashMismatch(id)));
        }
        if raw.header.compressed {
            // Verify-then-decompress: the hash check above covered the
            // stored envelope, so the decompressor never sees unverified
            // bytes. `desc.size` (the logical length) caps the allocation
            // and pins the exact expected output; with the hash already
            // verified, any failure here means the version was sealed by a
            // corrupted writer — indistinguishable from tampering.
            let plain = crate::compress::decompress_body(&body, desc.size as usize)
                .map_err(|_| CoreError::TamperDetected(TamperKind::ChunkHashMismatch(id)))?;
            return Ok((plain, Some(body)));
        }
        Ok((body, None))
    }

    fn parse_at(&self, buf: &[u8], location: u64) -> Result<RawVersion> {
        let parsed = {
            let _t = metrics::span(modules::ENCRYPTION);
            parse_version(&self.system, buf, location)?
        };
        parsed.ok_or(CoreError::TamperDetected(TamperKind::UndecryptableChunk {
            location,
        }))
    }

    /// Effective allocation status of a data chunk id, folding in
    /// session-only reservations.
    pub(crate) fn effective_status(&mut self, id: ChunkId) -> Result<ChunkStatus> {
        let desc = self.get_descriptor(id)?;
        if desc.status == ChunkStatus::Unallocated {
            let reserved = self
                .leader_entry(id.partition)?
                .reserved
                .contains(&id.pos.rank);
            if reserved {
                return Ok(ChunkStatus::Unwritten);
            }
        }
        Ok(desc.status)
    }

    // -- Read (§4.5) ----------------------------------------------------------

    pub(crate) fn read_chunk(&mut self, id: ChunkId) -> Result<Vec<u8>> {
        Ok(self.read_chunk_full(id)?.0)
    }

    /// [`Inner::read_chunk`] that also surfaces the stored compressed
    /// envelope (when there is one) for proof extraction.
    pub(crate) fn read_chunk_full(&mut self, id: ChunkId) -> Result<(Vec<u8>, Option<Vec<u8>>)> {
        if id.partition.is_system() || !id.pos.is_data() {
            return Err(CoreError::NotAllocated(id));
        }
        let desc = self.get_descriptor(id)?;
        match desc.status {
            ChunkStatus::Unallocated => {
                if self
                    .leader_entry(id.partition)?
                    .reserved
                    .contains(&id.pos.rank)
                {
                    Err(CoreError::NotWritten(id))
                } else {
                    Err(CoreError::NotAllocated(id))
                }
            }
            ChunkStatus::Unwritten => Err(CoreError::NotWritten(id)),
            ChunkStatus::Written => self.read_validated_full(id, &desc),
        }
    }
}
