//! Commit processing (§4.6, §4.8.2): validation, the apply loop, commit
//! sealing, and group-commit batches.
//!
//! A commit appends the sealed versions of its op set to the log, installs
//! their descriptors in the chunk map, and seals the set per the validation
//! protocol — a signed, counted commit chunk (counter mode) or a chained
//! hash pushed to the tamper-resistant register (direct mode). The batched
//! variant applies every member independently (per-commit atomicity) and
//! shares one durability point per batch.

use std::collections::HashMap;
use std::sync::Arc;

use tdb_crypto::HashValue;

use crate::codec::{Dec, Enc};
use crate::compress;
use crate::descriptor::{ChunkStatus, Descriptor};
use crate::errors::{CoreError, FaultClass, Result};
use crate::ids::{ChunkId, PartitionId};
use crate::leader::PartitionLeader;
use crate::metrics::{self, counters, modules};
use crate::params::{CryptoParams, PartitionCrypto};
use crate::pipeline::{self, Presealed, SealJob};
use crate::store::{Inner, TrustedBackend, ValidationMode};
use crate::version::{
    seal_version, seal_version_flagged, sealed_version_len, CommitRecord, DeallocRecord,
    VersionHeader, VersionKind,
};

/// Conservative byte budget reserved for a commit chunk, so finalizing a
/// commit set never forces a segment switch after the set hash is taken.
pub(crate) const COMMIT_CHUNK_ROOM: u32 = 256;

/// One operation inside an atomic commit (§4.1, §5.1).
#[derive(Debug)]
pub enum CommitOp {
    /// Sets the state of an allocated chunk.
    WriteChunk {
        /// Target chunk (allocated via [`crate::store::ChunkStore::allocate_chunk`]).
        id: ChunkId,
        /// New state, of any size.
        bytes: Vec<u8>,
    },
    /// Deallocates a chunk.
    DeallocChunk {
        /// Target chunk.
        id: ChunkId,
    },
    /// Writes an empty partition with the given parameters
    /// (`Write(partitionId, secretKey, cipher, hashFunction)` of §5.1).
    CreatePartition {
        /// Target id (allocated via [`crate::store::ChunkStore::allocate_partition`]).
        id: PartitionId,
        /// Cryptographic parameters (cipher, hash, key).
        params: CryptoParams,
    },
    /// Copies the current state of `src` to `dst`
    /// (`Write(partitionId, sourcePId)` of §5.1). Cheap: copy-on-write.
    CopyPartition {
        /// Target id (allocated, unwritten).
        dst: PartitionId,
        /// Source partition.
        src: PartitionId,
    },
    /// Deallocates a partition, all of its copies, and all their chunks.
    DeallocPartition {
        /// Target partition.
        id: PartitionId,
    },
}

/// Everything needed to roll the in-memory engine back to the instant a
/// mutation began. Device bytes written by the failed mutation lie past the
/// restored log tail, where the next append overwrites them and recovery
/// treats them as a torn tail.
pub(crate) struct EngineSnapshot {
    map_cache: crate::cache::MapCache,
    leaders: HashMap<PartitionId, crate::store::LeaderEntry>,
    sys_leader: crate::leader::SystemLeader,
    sys_alloc_next: u64,
    sys_alloc_free: Vec<u64>,
    sys_reserved: std::collections::HashSet<u64>,
    chain: HashValue,
    tail: crate::log::TailState,
    commit_count: u64,
    trusted_count: u64,
    leader_version: Option<(u64, u32)>,
    superblock: crate::log::Superblock,
    stats: crate::store::ChunkStoreStats,
}

impl Inner {
    /// Captures the in-memory engine state at the start of a mutation.
    pub(crate) fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            map_cache: self.map_cache.clone(),
            leaders: self.leaders.clone(),
            sys_leader: self.sys_leader.clone(),
            sys_alloc_next: self.sys_alloc_next,
            sys_alloc_free: self.sys_alloc_free.clone(),
            sys_reserved: self.sys_reserved.clone(),
            chain: self.hashes.chain,
            tail: self.log.tail_state(),
            commit_count: self.commit_count,
            trusted_count: self.trusted_count,
            leader_version: self.leader_version,
            superblock: self.superblock,
            stats: self.stats,
        }
    }

    /// Rolls the in-memory engine back to `snap`. Log bytes written by the
    /// failed mutation lie past the restored tail and are never served:
    /// the next append overwrites them, and recovery parses them as a torn
    /// tail.
    pub(crate) fn restore(&mut self, snap: EngineSnapshot) {
        self.map_cache = snap.map_cache;
        self.leaders = snap.leaders;
        self.sys_leader = snap.sys_leader;
        self.sys_alloc_next = snap.sys_alloc_next;
        self.sys_alloc_free = snap.sys_alloc_free;
        self.sys_reserved = snap.sys_reserved;
        self.hashes.abort_set();
        self.hashes.chain = snap.chain;
        self.log.restore_tail_state(snap.tail);
        self.commit_count = snap.commit_count;
        self.trusted_count = snap.trusted_count;
        self.leader_version = snap.leader_version;
        self.superblock = snap.superblock;
        self.stats = snap.stats;
        // The restored map cache may differ from the state the memoized
        // effective hashes were computed against; drop them wholesale
        // (rollback is rare, correctness beats precision here).
        self.lazy.clear();
    }
}

impl Inner {
    // -- Commit (§4.6) --------------------------------------------------------

    pub(crate) fn commit(&mut self, ops: Vec<CommitOp>) -> Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        // Validation is read-only: a failure here (including a transient
        // read fault resolving a descriptor) leaves the store untouched
        // and live.
        self.validate_ops(&ops)?;
        let snap = self.snapshot();
        self.wrote_log = false;
        let result = self.apply_and_finish(ops);
        match &result {
            Err(e) => self.fail_mutation(snap, e, "commit"),
            Ok(()) => self.maybe_checkpoint()?,
        }
        result
    }

    fn validate_ops(&mut self, ops: &[CommitOp]) -> Result<()> {
        // Validation runs against pre-commit state plus the effects of
        // earlier ops in the same set (e.g. create-then-write).
        let mut created: Vec<PartitionId> = Vec::new();
        let mut deallocated: Vec<PartitionId> = Vec::new();
        for op in ops {
            match op {
                CommitOp::WriteChunk { id, bytes } => {
                    if id.partition.is_system() || !id.pos.is_data() {
                        return Err(CoreError::NotAllocated(*id));
                    }
                    if !created.contains(&id.partition)
                        && self.effective_status(*id)? == ChunkStatus::Unallocated
                    {
                        return Err(CoreError::NotAllocated(*id));
                    }
                    let max = self.log.max_version_len() as usize;
                    if bytes.len() + 512 > max {
                        return Err(CoreError::ChunkTooLarge {
                            size: bytes.len(),
                            max: max - 512,
                        });
                    }
                }
                CommitOp::DeallocChunk { id } => {
                    if id.partition.is_system() || !id.pos.is_data() {
                        return Err(CoreError::NotAllocated(*id));
                    }
                    if self.effective_status(*id)? == ChunkStatus::Unallocated {
                        return Err(CoreError::NotAllocated(*id));
                    }
                }
                CommitOp::CreatePartition { id, params } => {
                    let exists = self.leader_entry(*id).is_ok() && !deallocated.contains(id);
                    if id.is_system() || exists {
                        return Err(CoreError::PartitionExists(*id));
                    }
                    params.runtime()?; // Key length check.
                    created.push(*id);
                }
                CommitOp::CopyPartition { dst, src } => {
                    let exists = self.leader_entry(*dst).is_ok() && !deallocated.contains(dst);
                    if dst.is_system() || exists {
                        return Err(CoreError::PartitionExists(*dst));
                    }
                    if !created.contains(src) {
                        self.leader_entry(*src)?;
                    }
                    created.push(*dst);
                }
                CommitOp::DeallocPartition { id } => {
                    if deallocated.contains(id) {
                        return Err(CoreError::NoSuchPartition(*id));
                    }
                    self.leader_entry(*id)?;
                    deallocated.push(*id);
                }
            }
        }
        Ok(())
    }

    fn apply_and_finish(&mut self, ops: Vec<CommitOp>) -> Result<()> {
        if matches!(self.config.validation, ValidationMode::Counter { .. }) {
            self.hashes.begin_set();
        }
        // Hash+seal every WriteChunk body up front, fanning the crypto
        // across workers; the appends below then serialize only the
        // already-ciphered buffers (in op order, so the hash chain is
        // unchanged). Purely read-only: a failure here rolls back clean.
        let presealed = self.preseal_writes(&ops)?;
        self.apply_ops(ops, presealed)?;
        self.finish_commit()
    }

    /// Applies a validated op set: appends every version and installs the
    /// descriptors, consuming presealed slots where the pipeline produced
    /// them. Shared by the unbatched and group-commit paths.
    fn apply_ops(
        &mut self,
        ops: Vec<CommitOp>,
        mut presealed: Vec<Option<Presealed>>,
    ) -> Result<()> {
        let mut dealloc_ids: Vec<ChunkId> = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            let pre = presealed.get_mut(i).and_then(Option::take);
            self.apply_op(op, pre, &mut dealloc_ids)?;
        }
        if !dealloc_ids.is_empty() {
            self.append_dealloc_chunk(&dealloc_ids)?;
        }
        Ok(())
    }

    /// Precomputes `(hash, sealed bytes)` for every `WriteChunk` in the
    /// set via the parallel crypto pipeline. Returns per-op slots; ops
    /// without preseal work (or batches too small to parallelize) get
    /// `None` and are sealed inline by [`Inner::apply_op`].
    fn preseal_writes(&mut self, ops: &[CommitOp]) -> Result<Vec<Option<Presealed>>> {
        let mut out: Vec<Option<Presealed>> = ops.iter().map(|_| None).collect();
        let workers = pipeline::resolve_workers(self.config.crypto_workers);
        if workers < 2 {
            return Ok(out);
        }
        // Resolve each write's partition crypto sequentially (this may
        // load leaders through the engine's caches). Partitions created
        // earlier in the same set derive their crypto from the op params.
        let mut created: HashMap<PartitionId, Arc<PartitionCrypto>> = HashMap::new();
        let mut jobs: Vec<SealJob<'_>> = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                CommitOp::CreatePartition { id, params } => {
                    created.insert(*id, Arc::new(params.runtime()?));
                }
                CommitOp::CopyPartition { dst, src } => {
                    let crypto = match created.get(src) {
                        Some(c) => Arc::clone(c),
                        None => self.crypto_for(*src)?,
                    };
                    created.insert(*dst, crypto);
                }
                CommitOp::WriteChunk { id, bytes } => {
                    let crypto = match created.get(&id.partition) {
                        Some(c) => Arc::clone(c),
                        None => self.crypto_for(id.partition)?,
                    };
                    jobs.push((*id, crypto, bytes.as_slice()));
                    slots.push(i);
                }
                CommitOp::DeallocChunk { .. } | CommitOp::DeallocPartition { .. } => {}
            }
        }
        if jobs.len() < 2 {
            return Ok(out);
        }
        let sealed = pipeline::seal_batch(&self.system, &jobs, workers, self.config.compression);
        self.stats.parallel_crypto_batches += 1;
        self.stats.parallel_crypto_chunks += sealed.len() as u64;
        metrics::count(counters::PARALLEL_CRYPTO_BATCHES);
        metrics::add(counters::PARALLEL_CRYPTO_CHUNKS, sealed.len() as u64);
        for (slot, pre) in slots.into_iter().zip(sealed) {
            out[slot] = Some(pre);
        }
        Ok(out)
    }

    /// Preseals every `WriteChunk` across a whole group-commit batch in
    /// one pipeline pass. Crypto-resolution failures are swallowed (the
    /// slot stays `None`): such a member either seals inline later or —
    /// more likely — fails its own validation without touching batch-mates.
    ///
    /// Unlike [`Inner::preseal_writes`], partitions created by one member
    /// are *not* visible to later members here: a member's create can
    /// still fail validation (e.g. the partition already exists), and a
    /// later member's write must then be sealed under the surviving
    /// partition's real key, not the failed create's.
    fn preseal_batch(&mut self, sets: &[Vec<CommitOp>]) -> Vec<Vec<Option<Presealed>>> {
        let mut out: Vec<Vec<Option<Presealed>>> = sets
            .iter()
            .map(|ops| ops.iter().map(|_| None).collect())
            .collect();
        let workers = pipeline::resolve_workers(self.config.crypto_workers);
        if workers < 2 {
            return out;
        }
        let mut jobs: Vec<SealJob<'_>> = Vec::new();
        let mut slots: Vec<(usize, usize)> = Vec::new();
        for (m, ops) in sets.iter().enumerate() {
            let mut created: HashMap<PartitionId, Arc<PartitionCrypto>> = HashMap::new();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    CommitOp::CreatePartition { id, params } => {
                        if let Ok(rt) = params.runtime() {
                            created.insert(*id, Arc::new(rt));
                        }
                    }
                    CommitOp::CopyPartition { dst, src } => {
                        let crypto = match created.get(src) {
                            Some(c) => Some(Arc::clone(c)),
                            None => self.crypto_for(*src).ok(),
                        };
                        if let Some(c) = crypto {
                            created.insert(*dst, c);
                        }
                    }
                    CommitOp::WriteChunk { id, bytes } => {
                        let crypto = match created.get(&id.partition) {
                            Some(c) => Some(Arc::clone(c)),
                            None => self.crypto_for(id.partition).ok(),
                        };
                        if let Some(c) = crypto {
                            jobs.push((*id, c, bytes.as_slice()));
                            slots.push((m, i));
                        }
                    }
                    CommitOp::DeallocChunk { .. } | CommitOp::DeallocPartition { .. } => {}
                }
            }
        }
        if jobs.len() < 2 {
            return out;
        }
        let sealed = pipeline::seal_batch(&self.system, &jobs, workers, self.config.compression);
        self.stats.parallel_crypto_batches += 1;
        self.stats.parallel_crypto_chunks += sealed.len() as u64;
        metrics::count(counters::PARALLEL_CRYPTO_BATCHES);
        metrics::add(counters::PARALLEL_CRYPTO_CHUNKS, sealed.len() as u64);
        for ((m, i), pre) in slots.into_iter().zip(sealed) {
            out[m][i] = Some(pre);
        }
        out
    }

    /// Appends a sealed named version and installs its descriptor.
    pub(crate) fn write_named(
        &mut self,
        kind: VersionKind,
        id: ChunkId,
        body: &[u8],
    ) -> Result<Descriptor> {
        let crypto = self.crypto_for(id.partition)?;
        // Compression eligibility mirrors `pipeline::seal_one`: only
        // user-partition data bodies; map chunks (Merkle proof preimages)
        // and partition leaders (recovery's decode inputs) stay raw.
        let eligible = self.config.compression && id.pos.is_data() && !id.partition.is_system();
        let envelope = if eligible {
            compress::compress_body(body)
        } else {
            None
        };
        let (stored, compressed): (&[u8], bool) = match &envelope {
            Some(env) => (env.as_slice(), true),
            None => (body, false),
        };
        let hash = {
            let _t = metrics::span(modules::HASHING);
            crypto.hash(stored)
        };
        let sealed = {
            let _t = metrics::span(modules::ENCRYPTION);
            seal_version_flagged(&self.system, &crypto, kind, id, stored, compressed)
        };
        if eligible {
            if compressed {
                let raw_sealed = sealed_version_len(&self.system, &crypto, body.len());
                self.note_compressed((raw_sealed - sealed.len()) as u64);
            } else {
                self.note_stored_raw();
            }
        }
        let location = self.append(&sealed)?;
        // `size` stays the logical length; the hash covers the stored
        // bytes, so verification always precedes decompression.
        let desc = Descriptor::written(location, sealed.len() as u32, body.len() as u32, hash);
        Ok(desc)
    }

    /// Counts one body stored as a compressed envelope.
    pub(crate) fn note_compressed(&mut self, saved: u64) {
        self.stats.bodies_compressed += 1;
        self.stats.log_bytes_saved += saved;
        metrics::count(counters::BODIES_COMPRESSED);
        metrics::add(counters::LOG_BYTES_SAVED, saved);
    }

    /// Counts one knob-on body stored raw (escape hatch taken).
    pub(crate) fn note_stored_raw(&mut self) {
        self.stats.bodies_stored_raw += 1;
        metrics::count(counters::BODIES_STORED_RAW);
    }

    pub(crate) fn append(&mut self, sealed: &[u8]) -> Result<u64> {
        let loc = self.log.append(
            &mut self.sys_leader.log,
            &self.system,
            &mut self.hashes,
            sealed,
        )?;
        // Only set after a *successful* device append: a failed first write
        // left nothing durable, so the mutation can roll back and stay
        // live. While the log is coalescing, appends only buffer in memory;
        // `flush_log` flips `wrote_log` once runs actually hit the device.
        if !self.log.coalescing() {
            self.wrote_log = true;
        }
        self.stats.bytes_appended += sealed.len() as u64;
        Ok(loc)
    }

    /// Flushes the log, writing out any coalesced runs first, and keeps the
    /// `wrote_log` rollback marker honest: it is set as soon as buffered
    /// bytes reach the device, whether or not the flush itself succeeds.
    pub(crate) fn flush_log(&mut self) -> Result<()> {
        let runs_before = self.log.coalesce_counters().1;
        let result = self.log.flush();
        if self.log.coalesce_counters().1 > runs_before {
            self.wrote_log = true;
        }
        if result.is_ok() {
            self.stats.flushes += 1;
        }
        result
    }

    fn apply_op(
        &mut self,
        op: CommitOp,
        pre: Option<Presealed>,
        dealloc_ids: &mut Vec<ChunkId>,
    ) -> Result<()> {
        match op {
            CommitOp::WriteChunk { id, bytes } => {
                self.ensure_capacity(id.partition, id.pos.rank)?;
                let desc = match pre {
                    // Pipeline already hashed + sealed this body; only the
                    // append is left on the serial path.
                    Some(p) => {
                        if self.config.compression {
                            if p.compressed {
                                self.note_compressed(p.saved);
                            } else {
                                self.note_stored_raw();
                            }
                        }
                        let location = self.append(&p.sealed)?;
                        Descriptor::written(location, p.sealed.len() as u32, p.body_len, p.hash)
                    }
                    None => self.write_named(VersionKind::Named, id, &bytes)?,
                };
                self.set_descriptor(id, desc)?;
                let entry = self.leader_entry(id.partition)?;
                entry.leader.next_rank = entry.leader.next_rank.max(id.pos.rank + 1);
                entry.alloc_next = entry.alloc_next.max(entry.leader.next_rank);
                entry.leader.unfree(id.pos.rank);
                entry.alloc_free.retain(|r| *r != id.pos.rank);
                entry.reserved.remove(&id.pos.rank);
                entry.dirty = true;
            }
            CommitOp::DeallocChunk { id } => {
                // Deallocating a reserved-but-unwritten id is purely an
                // in-memory affair: there is no persistent state to undo.
                let was_written = self.get_descriptor(id)?.is_written();
                if was_written {
                    dealloc_ids.push(id);
                    self.set_descriptor(id, Descriptor::unallocated())?;
                    let entry = self.leader_entry(id.partition)?;
                    entry.leader.push_free(id.pos.rank);
                    entry.alloc_free.push(id.pos.rank);
                    entry.dirty = true;
                } else {
                    let entry = self.leader_entry(id.partition)?;
                    entry.reserved.remove(&id.pos.rank);
                    entry.alloc_free.push(id.pos.rank);
                }
            }
            CommitOp::CreatePartition { id, params } => {
                let leader = PartitionLeader::new(params);
                self.write_partition_leader(id, leader)?;
            }
            CommitOp::CopyPartition { dst, src } => {
                let src_entry = self.leader_entry(src)?;
                let dst_leader = src_entry.leader.copied(src);
                src_entry.leader.copies.push(dst);
                let src_leader = src_entry.leader.clone();
                // Persist the source's updated copies list.
                self.write_partition_leader(src, src_leader)?;
                self.write_partition_leader(dst, dst_leader)?;
                // Clone buffered (dirty) map state so dst sees post-
                // checkpoint updates of src (§5.3).
                self.map_cache.clone_dirty(src, dst);
                // dst's effective tree is rebuilt from src's state; any
                // memoized hashes for a previous incarnation of dst are void.
                self.lazy.invalidate_partition(dst);
            }
            CommitOp::DeallocPartition { id } => {
                self.dealloc_partition(id, dealloc_ids)?;
            }
        }
        Ok(())
    }

    fn append_dealloc_chunk(&mut self, ids: &[ChunkId]) -> Result<()> {
        // Encode straight from the borrowed id list; no owned record copy.
        let body = DeallocRecord::encode_ids(ids);
        let sealed = {
            let _t = metrics::span(modules::ENCRYPTION);
            seal_version(
                &self.system,
                &self.system,
                VersionKind::Dealloc,
                VersionHeader::unnamed_id(),
                &body,
            )
        };
        self.append(&sealed)?;
        Ok(())
    }

    /// Seals the commit: commit chunk or chained hash, flush, trusted-store
    /// update (§4.6, §4.8.2).
    pub(crate) fn finish_commit(&mut self) -> Result<()> {
        match self.config.validation {
            ValidationMode::Counter { delta_ut, .. } => {
                // Reserve room so the commit chunk follows its set in the
                // same segment (the set hash must cover any next-segment
                // chunk, so no switch may happen after end_set).
                self.log.ensure_room(
                    &mut self.sys_leader.log,
                    &self.system,
                    &mut self.hashes,
                    COMMIT_CHUNK_ROOM,
                )?;
                let set_hash = self.hashes.end_set();
                let count = self.commit_count + 1;
                let body = CommitRecord::encode_signed(&self.system, count, set_hash.as_bytes());
                let sealed = {
                    let _t = metrics::span(modules::ENCRYPTION);
                    seal_version(
                        &self.system,
                        &self.system,
                        VersionKind::Commit,
                        VersionHeader::unnamed_id(),
                        &body,
                    )
                };
                self.append(&sealed)?;
                self.commit_count = count;
                // "A commit operation waits until the commit set is written
                // to the untrusted store reliably" (§4.8.2.1).
                self.flush_log()?;
                if count - self.trusted_count > delta_ut.saturating_sub(1) {
                    self.advance_counter(count)?;
                }
            }
            ValidationMode::DirectHash => {
                self.flush_log()?;
                self.write_direct_record()?;
            }
        }
        self.stats.commits += 1;
        Ok(())
    }

    /// Batched variant of [`Inner::finish_commit`]: appends the member's
    /// commit chunk (counter mode) but defers the device flush to the
    /// batch finalizer, flushing early only when the counter-lag window
    /// (Δut) demands an advance — the trusted counter must never count a
    /// commit that is not yet durable, so the flush always precedes the
    /// advance. Returns whether a flush happened (everything appended so
    /// far, this member included, is durable).
    fn finish_commit_batched(&mut self) -> Result<bool> {
        let mut flushed = false;
        if let ValidationMode::Counter { delta_ut, .. } = self.config.validation {
            self.log.ensure_room(
                &mut self.sys_leader.log,
                &self.system,
                &mut self.hashes,
                COMMIT_CHUNK_ROOM,
            )?;
            let set_hash = self.hashes.end_set();
            let count = self.commit_count + 1;
            let body = CommitRecord::encode_signed(&self.system, count, set_hash.as_bytes());
            let sealed = {
                let _t = metrics::span(modules::ENCRYPTION);
                seal_version(
                    &self.system,
                    &self.system,
                    VersionKind::Commit,
                    VersionHeader::unnamed_id(),
                    &body,
                )
            };
            self.append(&sealed)?;
            self.commit_count = count;
            if count - self.trusted_count > delta_ut.saturating_sub(1) {
                self.flush_log()?;
                self.advance_counter(count)?;
                flushed = true;
            }
        }
        // Direct-hash mode needs nothing per member: the register write at
        // the batch's durability point is "the real commit point", and it
        // covers every member at once.
        self.stats.commits += 1;
        Ok(flushed)
    }

    /// Rolls back to a batch's last durable snapshot while keeping the
    /// monotone health-event counters a failure handler may have bumped
    /// after that snapshot was taken.
    fn restore_durable(&mut self, snap: EngineSnapshot) {
        let degraded = self.stats.degraded_entries;
        let poisons = self.stats.poison_events;
        self.restore(snap);
        self.stats.degraded_entries = self.stats.degraded_entries.max(degraded);
        self.stats.poison_events = self.stats.poison_events.max(poisons);
    }

    /// Executes a group-commit batch: every member is validated, sealed,
    /// and applied independently (per-commit atomicity), their log appends
    /// coalesce in the log's run buffer, and one flush at the end makes
    /// the whole batch durable.
    ///
    /// Failure policy per member:
    /// - validation errors fail the member alone, before any state change;
    /// - apply errors with no device write roll just that member back and
    ///   the batch continues live;
    /// - integrity violations poison and abort the batch;
    /// - storage failures after bytes reached the device degrade and abort
    ///   (remaining members get [`CoreError::BatchAborted`]).
    ///
    /// On abort or a failed final flush, members applied after the last
    /// durable point are demoted to `BatchAborted` — no caller is ever
    /// acknowledged before its bytes are flushed.
    pub(crate) fn commit_batch(&mut self, sets: Vec<Vec<CommitOp>>) -> Vec<Result<()>> {
        let n = sets.len();
        self.stats.commit_batches += 1;
        self.stats.batched_commits += n as u64;
        self.stats.batch_size_hist[batch_size_bucket(n)] += 1;
        metrics::count(counters::COMMIT_BATCHES);
        metrics::add(counters::BATCHED_COMMITS, n as u64);

        // Pool the whole batch's seal work through the crypto pipeline
        // before any member mutates state.
        let presealed = self.preseal_batch(&sets);
        self.log.set_coalescing(true);

        let mut results: Vec<Result<()>> = Vec::with_capacity(n);
        // Members in `results[..durable]` are covered by a device flush;
        // `durable_snap` is the engine state at that point. `None` once
        // consumed by an abort (no further members run after that).
        let mut durable = 0usize;
        let mut durable_snap = Some(self.snapshot());
        let mut abort: Option<String> = None;

        for (ops, pre) in sets.into_iter().zip(presealed) {
            if let Some(reason) = &abort {
                results.push(Err(CoreError::BatchAborted(reason.clone())));
                continue;
            }
            if ops.is_empty() {
                results.push(Ok(()));
                continue;
            }
            if let Err(e) = self.validate_ops(&ops) {
                // Read-only failure: the member dies alone, batch-mates
                // are untouched.
                results.push(Err(e));
                continue;
            }
            let snap = self.snapshot();
            self.wrote_log = false;
            let counter_mode = matches!(self.config.validation, ValidationMode::Counter { .. });
            if counter_mode {
                self.hashes.begin_set();
            }
            let result = self
                .apply_ops(ops, pre)
                .and_then(|()| self.finish_commit_batched());
            match result {
                Ok(flushed) => {
                    results.push(Ok(()));
                    if flushed {
                        durable = results.len();
                        durable_snap = Some(self.snapshot());
                    }
                    // Threshold-driven checkpoint, as on the unbatched
                    // path. A successful checkpoint flushes and syncs the
                    // trusted store, so it is a durable point too.
                    let checkpoints_before = self.stats.checkpoints;
                    match self.maybe_checkpoint() {
                        Ok(()) => {
                            if self.stats.checkpoints > checkpoints_before {
                                durable = results.len();
                                durable_snap = Some(self.snapshot());
                            }
                        }
                        Err(e) => {
                            // The member was applied but its follow-on
                            // checkpoint failed (and did its own rollback
                            // and health transition) — surface the error
                            // as the member's result, exactly like the
                            // unbatched path.
                            let msg = e.to_string();
                            *results.last_mut().expect("just pushed") = Err(e);
                            if !self.health.is_live() {
                                let snap = durable_snap.take().expect("unconsumed");
                                self.restore_durable(snap);
                                demote_unflushed(&mut results, durable, &msg);
                                abort = Some(msg);
                            }
                        }
                    }
                }
                Err(e) => {
                    let integrity = e.fault_class() == FaultClass::Integrity;
                    if integrity || self.wrote_log {
                        // Bytes reached the device (or integrity is in
                        // doubt): everything since the last durable point
                        // is unrecoverable in place. Roll back to it,
                        // demote the members it does not cover, and stop.
                        let msg = e.to_string();
                        let snap = durable_snap.take().expect("unconsumed");
                        self.restore_durable(snap);
                        demote_unflushed(&mut results, durable, &msg);
                        if integrity {
                            self.enter_poisoned(format!(
                                "integrity violation during batched commit: {msg}"
                            ));
                        } else {
                            self.enter_degraded(format!(
                                "storage failure during batched commit after \
                                 log bytes were written: {msg}"
                            ));
                        }
                        results.push(Err(e));
                        abort = Some(msg);
                    } else {
                        // Nothing durable happened: this member rolls back
                        // clean and the batch continues live.
                        self.restore(snap);
                        results.push(Err(e));
                    }
                }
            }
        }

        // Finalize: one shared durability point for everything the batch
        // buffered since the last flush.
        if abort.is_none() && self.log.buffered_len() > 0 {
            self.wrote_log = false;
            let fin = match self.config.validation {
                ValidationMode::Counter { .. } => self.flush_log(),
                ValidationMode::DirectHash => {
                    self.flush_log().and_then(|()| self.write_direct_record())
                }
            };
            if let Err(e) = fin {
                let msg = e.to_string();
                let wrote = self.wrote_log;
                let snap = durable_snap.take().expect("unconsumed");
                self.restore_durable(snap);
                demote_unflushed(&mut results, durable, &msg);
                if wrote {
                    self.enter_degraded(format!(
                        "storage failure flushing a commit batch after log \
                         bytes were written: {msg}"
                    ));
                }
            }
        }
        self.log.set_coalescing(false);
        results
    }

    pub(crate) fn advance_counter(&mut self, count: u64) -> Result<()> {
        let _t = metrics::span(modules::TRUSTED_STORE);
        match &self.trusted {
            TrustedBackend::Counter(c) => c.advance_to(count)?,
            TrustedBackend::Register(_) => {
                return Err(CoreError::Corrupt(
                    "counter validation configured with a register backend".into(),
                ))
            }
        }
        self.trusted_count = count;
        Ok(())
    }

    /// Writes `{chain, tail}` to the tamper-resistant register — "the real
    /// commit point" of direct hash validation (§4.8.2.1).
    pub(crate) fn write_direct_record(&mut self) -> Result<()> {
        let record = DirectRecord {
            chain: self.hashes.chain,
            tail: self.log.tail_location(),
        };
        let _t = metrics::span(modules::TRUSTED_STORE);
        match &self.trusted {
            TrustedBackend::Register(r) => r.write(&record.encode())?,
            TrustedBackend::Counter(_) => {
                return Err(CoreError::Corrupt(
                    "direct validation configured with a counter backend".into(),
                ))
            }
        }
        Ok(())
    }

    /// Caller-driven threshold checkpoint. A no-op when the background
    /// maintenance runtime owns checkpoint scheduling
    /// ([`crate::maintenance`]): the commit path then never stalls on a
    /// full checkpoint, and the maintenance thread picks the threshold up
    /// on its next wakeup.
    fn maybe_checkpoint(&mut self) -> Result<()> {
        if self.config.background_maintenance {
            return Ok(());
        }
        if self.map_cache.dirty_count() >= self.config.checkpoint_threshold {
            self.checkpoint()?;
        }
        Ok(())
    }
}

/// Histogram bucket for a group-commit batch of `n` members: bucket `i`
/// covers sizes in `(2^(i-1), 2^i]` (1, 2, 3–4, 5–8, …), capped at 7.
fn batch_size_bucket(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        ((usize::BITS - (n - 1).leading_zeros()) as usize).min(7)
    }
}

/// Demotes every `Ok` result at or past `durable` to [`CoreError::BatchAborted`]:
/// those members were applied but never covered by a flush, so they must
/// not be acknowledged.
fn demote_unflushed(results: &mut [Result<()>], durable: usize, reason: &str) {
    for r in results.iter_mut().skip(durable) {
        if r.is_ok() {
            *r = Err(CoreError::BatchAborted(reason.to_string()));
        }
    }
}

/// The direct-validation record kept in the tamper-resistant register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DirectRecord {
    /// Chained hash over the residual log.
    pub chain: HashValue,
    /// Exact end of the validated log.
    pub tail: u64,
}

impl DirectRecord {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(self.chain.len() + 12);
        e.bytes(self.chain.as_bytes());
        e.u64(self.tail);
        e.finish()
    }

    pub(crate) fn decode(buf: &[u8]) -> Result<DirectRecord> {
        let mut d = Dec::new(buf);
        let chain = HashValue::new(d.bytes()?);
        let tail = d.u64()?;
        d.expect_done("trusted direct record")?;
        Ok(DirectRecord { chain, tail })
    }
}
