//! Checkpointing (§4.7): consolidating buffered chunk-map updates.
//!
//! "When the cache becomes too large because of dirty descriptors, all map
//! chunks containing dirty descriptors and their ancestors up to the leader
//! are written to the log … The chunk store extends the optimization to
//! propagating hash values up the chunk map."
//!
//! Write order is strictly bottom-up: user-partition map chunks (heights
//! ascending), then dirty partition leaders (data chunks of the system
//! partition), then system map chunks (heights ascending), and the system
//! leader last. "The leader is written last during a checkpoint" — the log
//! before it is the checkpointed log, the leader and everything after is
//! the residual log.

use crate::descriptor::Descriptor;
use crate::engine::commit::COMMIT_CHUNK_ROOM;
use crate::errors::Result;
use crate::ids::{ChunkId, PartitionId, Position};
use crate::log::Superblock;
use crate::metrics::{self, counters, modules};
use crate::pipeline::{self, SealJob};
use crate::store::{Inner, ValidationMode};
use crate::version::{seal_version, sealed_version_len, CommitRecord, VersionHeader, VersionKind};

impl Inner {
    /// Runs a full checkpoint. Safe to call with no dirty state (used to
    /// format a fresh store).
    ///
    /// # Errors
    ///
    /// On a storage failure the in-memory state rolls back to the
    /// pre-checkpoint snapshot; the store degrades to read-only if any log
    /// bytes had been written, stays live otherwise. Integrity violations
    /// poison (see `Inner::fail_mutation`).
    pub(crate) fn checkpoint(&mut self) -> Result<()> {
        let snap = self.snapshot();
        self.wrote_log = false;
        let result = self.checkpoint_impl();
        if let Err(e) = &result {
            self.fail_mutation(snap, e, "checkpoint");
        }
        result
    }

    fn checkpoint_impl(&mut self) -> Result<()> {
        // Incremental accounting: levels that are cached but hold no dirty
        // chunk are never visited below (the dirty index hands out only
        // dirty levels), so a lightly dirtied tree checkpoints in O(dirty).
        let (levels_present, levels_dirty) = self.map_cache.level_counts();
        let skipped = levels_present.saturating_sub(levels_dirty) as u64;
        self.stats.dirty_map_levels_skipped += skipped;
        metrics::add(counters::DIRTY_MAP_LEVELS_SKIPPED, skipped);

        // 1. User-partition map chunks, bottom-up. Writing a chunk at height
        //    h dirties its parent at h+1 (or the partition leader), so
        //    re-collect keys per height until only system chunks remain.
        self.write_dirty_maps(false)?;

        // 2. Dirty partition leaders become system data chunks.
        let dirty_leaders: Vec<PartitionId> = self
            .leaders
            .iter()
            .filter(|(_, e)| e.dirty)
            .map(|(p, _)| *p)
            .collect();
        for p in dirty_leaders {
            let leader = self.leaders.get(&p).expect("listed above").leader.clone();
            self.write_partition_leader(p, leader)?;
        }

        // 3. System map chunks, bottom-up.
        self.write_dirty_maps(true)?;

        // 4. The system leader, last. Budget room for it plus the commit
        //    chunk so nothing after the hash boundary switches segments.
        self.sys_leader.checkpoint_seq += 1;
        let probe = self.sys_leader.encode();
        let budget = sealed_version_len(&self.system, &self.system, probe.len() + 64) as u32
            + COMMIT_CHUNK_ROOM;
        self.log.ensure_room(
            &mut self.sys_leader.log,
            &self.system,
            &mut self.hashes,
            budget,
        )?;

        let counter_mode = matches!(self.config.validation, ValidationMode::Counter { .. });
        if counter_mode {
            // The checkpoint's commit chunk covers the leader alone: "a
            // checkpoint is followed by a commit chunk containing the hash
            // of the leader chunk, as if the leader were the only chunk in
            // the commit set" (§4.8.2.2).
            self.hashes.begin_set();
        } else {
            // Direct validation: the chained hash restarts at the leader,
            // the head of the new residual log (§4.8.2.1).
            self.hashes.reset_chain();
        }

        // Re-encode after ensure_room (a segment switch changes log state).
        let body = self.sys_leader.encode();
        let sealed = {
            let _t = metrics::span(modules::ENCRYPTION);
            seal_version(
                &self.system,
                &self.system,
                VersionKind::Named,
                ChunkId::system_leader(),
                &body,
            )
        };
        let leader_loc = self.append(&sealed)?;

        // Utilization: retire the previous leader version, count this one.
        if let Some((old_loc, old_vlen)) = self.leader_version {
            let seg = self.log.segment_of(old_loc) as usize;
            if let Some(u) = self.sys_leader.log.utilization.get_mut(seg) {
                *u = u.saturating_sub(old_vlen);
            }
        }
        {
            let seg = self.log.segment_of(leader_loc) as usize;
            if let Some(u) = self.sys_leader.log.utilization.get_mut(seg) {
                *u += sealed.len() as u32;
            }
        }
        self.leader_version = Some((leader_loc, sealed.len() as u32));

        // 5. Seal the checkpoint per the validation protocol.
        match self.config.validation {
            ValidationMode::Counter { .. } => {
                let set_hash = self.hashes.end_set();
                let count = self.commit_count + 1;
                let body = CommitRecord::encode_signed(&self.system, count, set_hash.as_bytes());
                let sealed = {
                    let _t = metrics::span(modules::ENCRYPTION);
                    seal_version(
                        &self.system,
                        &self.system,
                        VersionKind::Commit,
                        VersionHeader::unnamed_id(),
                        &body,
                    )
                };
                self.append(&sealed)?;
                self.commit_count = count;
                self.flush_log()?;
                // A checkpoint always syncs the counter.
                self.advance_counter(count)?;
                self.write_superblock(leader_loc)?;
            }
            ValidationMode::DirectHash => {
                self.flush_log()?;
                // Superblock first, trusted record second: whichever leader
                // the register's chain matches is the one recovery accepts,
                // so both crash windows fall back cleanly (§4.9.2).
                self.write_superblock(leader_loc)?;
                self.write_direct_record()?;
            }
        }

        // 6. The residual log now starts at the leader.
        self.log.reset_residual();
        self.stats.checkpoints += 1;
        self.stats.commits += 1;
        Ok(())
    }

    /// Writes every dirty map chunk of user partitions (`system == false`)
    /// or the system partition (`system == true`), heights ascending.
    ///
    /// Incremental: each pass pulls exactly the lowest dirty level from
    /// the cache's dirty index — clean levels are never scanned. Writing a
    /// chunk at height h only dirties chunks at heights > h (its
    /// ancestors), so one whole level can be written per pass.
    fn write_dirty_maps(&mut self, system: bool) -> Result<()> {
        while let Some((_, level_keys)) = self.map_cache.min_dirty_level(system) {
            self.write_map_level(&level_keys)?;
        }
        Ok(())
    }

    /// Writes one height level of dirty map chunks. Chunks at the same
    /// height are independent (they dirty only their ancestors), so their
    /// hash+seal work fans across the crypto pipeline; the log appends
    /// stay sequential, in key order.
    fn write_map_level(&mut self, keys: &[(PartitionId, Position)]) -> Result<()> {
        let workers = pipeline::resolve_workers(self.config.crypto_workers);
        if workers < 2 || keys.len() < 2 {
            // One scratch buffer serves the whole level: each chunk's body
            // is encoded, sealed, and appended before the next is encoded.
            let mut scratch = Vec::new();
            for (p, pos) in keys {
                self.write_map_chunk(*p, *pos, &mut scratch)?;
            }
            return Ok(());
        }
        // Resolve cryptos and encode bodies sequentially (both may touch
        // engine caches), then seal the whole level in parallel.
        let mut cryptos = Vec::with_capacity(keys.len());
        let mut bodies = Vec::with_capacity(keys.len());
        for (p, pos) in keys {
            let crypto = self.crypto_for(*p)?;
            let body = self
                .map_cache
                .get(*p, *pos)
                .expect("dirty chunk must be cached")
                .encode(crypto.hash_kind().digest_len());
            cryptos.push(crypto);
            bodies.push(body);
        }
        let jobs: Vec<SealJob<'_>> = keys
            .iter()
            .zip(&cryptos)
            .zip(&bodies)
            .map(|(((p, pos), crypto), body)| {
                (
                    ChunkId::new(*p, *pos),
                    std::sync::Arc::clone(crypto),
                    body.as_slice(),
                )
            })
            .collect();
        // Map bodies are never compressed (`compress = false`): clients
        // verify proofs by hashing the *plain* map-chunk encodings, so the
        // parent's stored hash must cover those exact bytes. Data bodies
        // dominate log volume; the win lives in the commit path.
        let sealed = pipeline::seal_batch(&self.system, &jobs, workers, false);
        self.stats.parallel_crypto_batches += 1;
        self.stats.parallel_crypto_chunks += sealed.len() as u64;
        metrics::count(counters::PARALLEL_CRYPTO_BATCHES);
        metrics::add(counters::PARALLEL_CRYPTO_CHUNKS, sealed.len() as u64);
        for ((p, pos), pre) in keys.iter().zip(sealed) {
            let id = ChunkId::new(*p, *pos);
            let location = self.append(&pre.sealed)?;
            let desc =
                Descriptor::written(location, pre.sealed.len() as u32, pre.body_len, pre.hash);
            self.set_descriptor(id, desc)?;
            self.map_cache.mark_clean(*p, *pos);
        }
        Ok(())
    }

    fn write_map_chunk(
        &mut self,
        p: PartitionId,
        pos: Position,
        scratch: &mut Vec<u8>,
    ) -> Result<()> {
        let hash_len = self.crypto_for(p)?.hash_kind().digest_len();
        self.map_cache
            .get(p, pos)
            .expect("dirty chunk must be cached")
            .encode_into(hash_len, scratch);
        let id = ChunkId::new(p, pos);
        let desc = self.write_named(VersionKind::Named, id, scratch)?;
        self.set_descriptor(id, desc)?;
        self.map_cache.mark_clean(p, pos);
        Ok(())
    }

    fn write_superblock(&mut self, leader_loc: u64) -> Result<()> {
        let sb = Superblock {
            epoch: self.superblock.epoch + 1,
            current_leader: leader_loc,
            prev_leader: self.superblock.current_leader,
        };
        sb.write(self.log.store())?;
        self.superblock = sb;
        Ok(())
    }
}
