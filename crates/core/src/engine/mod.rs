//! The decomposed chunk-store engine.
//!
//! [`crate::store`] keeps the public facade, the health state machine, and
//! the lock/publication protocol; the engine logic behind the mutex lives
//! here, split by responsibility:
//!
//! - [`commit`] — atomic commits: validation, the apply loop, presealing
//!   through the crypto pipeline, commit sealing (commit chunks / direct
//!   records), and group-commit batches.
//! - [`map`] — the chunk map: descriptor reads and writes, map-chunk
//!   caching, tree growth, and validated chunk reads (§4.3, §4.5).
//! - [`partitions`] — partition bookkeeping: leader cache, allocation,
//!   create/copy/dealloc, diffs, and written-rank scans (§5).
//! - [`checkpoint`] — checkpointing (§4.7): consolidating buffered map
//!   updates bottom-up, leader last.
//! - [`maintenance`] — the log cleaner (§4.9.5, §5.5), including the
//!   bounded-slice variant driven by the background maintenance runtime
//!   ([`crate::maintenance`]).
//! - [`dirty`] — the dirty-tree accumulator behind the `lazy_integrity`
//!   knob: memoized effective subtree hashes with O(height) spine
//!   invalidation per descriptor write.
//!
//! Every module extends the same `pub(crate) Inner` with `impl` blocks; no
//! on-disk format or locking change is implied by the decomposition.

//! - [`proof`] — client-verifiable read proofs: effective (dirty-aware)
//!   map bodies, root digests, and Merkle-path extraction.

pub(crate) mod checkpoint;
pub(crate) mod commit;
pub(crate) mod dirty;
pub(crate) mod maintenance;
pub(crate) mod map;
pub(crate) mod partitions;
pub(crate) mod proof;
