//! Partition bookkeeping (§5): the leader cache, allocation, partition
//! create/copy/dealloc support, diffs, and written-rank scans.
//!
//! A partition's persistent state is its *leader* — a data chunk of the
//! system partition holding the crypto parameters, map root, allocation
//! high-water, free list, and copy links. The engine caches decoded
//! leaders with session-only allocation state layered on top.

use std::sync::Arc;

use crate::descriptor::{ChunkStatus, Descriptor};
use crate::errors::{CoreError, Result};
use crate::ids::{ChunkId, PartitionId, Position};
use crate::leader::PartitionLeader;
use crate::params::PartitionCrypto;
use crate::store::Inner;
use crate::version::VersionKind;

/// How a chunk position changed between two partitions (§5.1 `Diff`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffChange {
    /// Written in `new` but not in `old`.
    Created,
    /// Written in both with different state.
    Updated,
    /// Written in `old` but not in `new`.
    Deallocated,
}

/// One entry of a partition diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffEntry {
    /// Data-chunk position that changed.
    pub pos: Position,
    /// Kind of change.
    pub change: DiffChange,
}

/// Cached per-partition state: decoded leader, runtime crypto, and session
/// allocation state.
#[derive(Clone)]
pub(crate) struct LeaderEntry {
    pub leader: PartitionLeader,
    pub crypto: Arc<PartitionCrypto>,
    /// Session-only allocation high-water (≥ `leader.next_rank`).
    pub alloc_next: u64,
    /// Session view of the free list (ranks handed out are removed here
    /// but stay in `leader.free_ranks` until the write commits).
    pub alloc_free: Vec<u64>,
    /// Session-allocated ranks not yet written. Purely in-memory: "id
    /// allocation is not persistent until the chunk is written" (§4.4), so
    /// allocation touches no map state at all.
    pub reserved: std::collections::HashSet<u64>,
    /// True when committed leader state changed since its last version was
    /// written; checkpoints persist dirty leaders.
    pub dirty: bool,
}

impl LeaderEntry {
    pub(crate) fn new(leader: PartitionLeader) -> Result<LeaderEntry> {
        let crypto = Arc::new(leader.params.runtime()?);
        let alloc_next = leader.next_rank;
        let alloc_free = leader.free_ranks.clone();
        Ok(LeaderEntry {
            leader,
            crypto,
            alloc_next,
            alloc_free,
            reserved: std::collections::HashSet::new(),
            dirty: false,
        })
    }
}

impl Inner {
    // -- Leader and crypto access --------------------------------------------

    /// Loads (if needed) and returns the cached state for a user partition.
    pub(crate) fn leader_entry(&mut self, p: PartitionId) -> Result<&mut LeaderEntry> {
        if p.is_system() {
            return Err(CoreError::NoSuchPartition(p));
        }
        if !self.leaders.contains_key(&p) {
            let id = ChunkId::leader_chunk(p);
            let desc = self.get_descriptor(id)?;
            if desc.status != ChunkStatus::Written {
                return Err(CoreError::NoSuchPartition(p));
            }
            let body = self.read_validated(id, &desc)?;
            let leader = PartitionLeader::decode(&body)?;
            self.leaders.insert(p, LeaderEntry::new(leader)?);
        }
        Ok(self.leaders.get_mut(&p).expect("just inserted"))
    }

    /// Runtime crypto for a partition (system partition included).
    pub(crate) fn crypto_for(&mut self, p: PartitionId) -> Result<Arc<PartitionCrypto>> {
        if p.is_system() {
            Ok(Arc::clone(&self.system))
        } else {
            Ok(Arc::clone(&self.leader_entry(p)?.crypto))
        }
    }

    /// The tree height of a partition's position map.
    pub(crate) fn tree_height(&mut self, p: PartitionId) -> Result<u8> {
        if p.is_system() {
            Ok(self.sys_leader.map.height)
        } else {
            Ok(self.leader_entry(p)?.leader.height)
        }
    }

    pub(crate) fn root_descriptor(&mut self, p: PartitionId) -> Result<Descriptor> {
        if p.is_system() {
            Ok(self.sys_leader.map.root)
        } else {
            Ok(self.leader_entry(p)?.leader.root)
        }
    }

    pub(crate) fn set_root_descriptor(&mut self, p: PartitionId, desc: Descriptor) -> Result<()> {
        if p.is_system() {
            self.sys_leader.map.root = desc;
        } else {
            let entry = self.leader_entry(p)?;
            entry.leader.root = desc;
            entry.dirty = true;
        }
        Ok(())
    }

    // -- Allocation (§4.4) ----------------------------------------------------

    pub(crate) fn allocate_partition(&mut self) -> Result<PartitionId> {
        // Partition ids are ranks in the system partition's data space.
        // Allocation is purely in-memory: "this operation does not change
        // the persistent state" (§9.2.2).
        let rank = match self.sys_alloc_free.pop() {
            Some(r) => r,
            None => {
                let r = self.sys_alloc_next;
                self.sys_alloc_next += 1;
                r
            }
        };
        self.sys_reserved.insert(rank);
        Ok(PartitionId::from_leader_rank(rank))
    }

    pub(crate) fn allocate_chunk(&mut self, p: PartitionId) -> Result<ChunkId> {
        let entry = self.leader_entry(p)?;
        let rank = match entry.alloc_free.pop() {
            Some(r) => r,
            None => {
                let r = entry.alloc_next;
                entry.alloc_next += 1;
                r
            }
        };
        entry.reserved.insert(rank);
        Ok(ChunkId::data(p, rank))
    }

    /// Reserves a *specific* rank in `p` (session-only, like
    /// [`Inner::allocate_chunk`]): restore paths use this to write delta
    /// chunks at ranks the target partition has never allocated.
    pub(crate) fn reserve_rank(&mut self, p: PartitionId, rank: u64) -> Result<()> {
        let entry = self.leader_entry(p)?;
        entry.alloc_next = entry.alloc_next.max(rank + 1);
        entry.alloc_free.retain(|r| *r != rank);
        entry.reserved.insert(rank);
        Ok(())
    }

    /// Encodes and writes a partition leader as a system data chunk,
    /// refreshing the leaders cache.
    pub(crate) fn write_partition_leader(
        &mut self,
        p: PartitionId,
        leader: PartitionLeader,
    ) -> Result<()> {
        let id = ChunkId::leader_chunk(p);
        self.ensure_capacity(PartitionId::SYSTEM, id.pos.rank)?;
        let body = leader.encode();
        let desc = self.write_named(VersionKind::Named, id, &body)?;
        self.set_descriptor(id, desc)?;
        self.sys_leader.map.next_rank = self.sys_leader.map.next_rank.max(id.pos.rank + 1);
        self.sys_alloc_next = self.sys_alloc_next.max(self.sys_leader.map.next_rank);
        self.sys_leader.map.unfree(id.pos.rank);
        self.sys_alloc_free.retain(|r| *r != id.pos.rank);
        self.sys_reserved.remove(&id.pos.rank);
        match self.leaders.get_mut(&p) {
            Some(entry) => {
                // Preserve session allocation state across the rewrite.
                let alloc_next = entry.alloc_next.max(leader.next_rank);
                let alloc_free = entry.alloc_free.clone();
                entry.leader = leader;
                entry.alloc_next = alloc_next;
                entry.alloc_free = alloc_free;
                entry.dirty = false;
            }
            None => {
                self.leaders.insert(p, LeaderEntry::new(leader)?);
            }
        }
        Ok(())
    }

    /// Deallocates `p` and (recursively) all of its copies (§5.1).
    pub(crate) fn dealloc_partition(
        &mut self,
        p: PartitionId,
        dealloc_ids: &mut Vec<ChunkId>,
    ) -> Result<()> {
        // Gather the closure of copies first.
        let mut closure = vec![p];
        let mut i = 0;
        while i < closure.len() {
            let q = closure[i];
            i += 1;
            if let Ok(entry) = self.leader_entry(q) {
                for c in entry.leader.copies.clone() {
                    if !closure.contains(&c) {
                        closure.push(c);
                    }
                }
            }
        }
        // Detach from a surviving source, if any.
        let source = self.leader_entry(p)?.leader.source;
        if let Some(src) = source {
            if !closure.contains(&src) {
                if let Ok(entry) = self.leader_entry(src) {
                    entry.leader.copies.retain(|c| *c != p);
                    let updated = entry.leader.clone();
                    self.write_partition_leader(src, updated)?;
                }
            }
        }
        for q in closure {
            let id = ChunkId::leader_chunk(q);
            dealloc_ids.push(id);
            self.set_descriptor(id, Descriptor::unallocated())?;
            self.sys_leader.map.push_free(id.pos.rank);
            self.sys_alloc_free.push(id.pos.rank);
            self.leaders.remove(&q);
            self.map_cache.purge_partition(q);
            self.lazy.invalidate_partition(q);
        }
        Ok(())
    }

    // -- Diff (§5.3) ----------------------------------------------------------

    pub(crate) fn diff(&mut self, old: PartitionId, new: PartitionId) -> Result<Vec<DiffEntry>> {
        let old_height = self.leader_entry(old)?.leader.height;
        let new_height = self.leader_entry(new)?.leader.height;
        let old_next = self.leader_entry(old)?.leader.next_rank;
        let new_next = self.leader_entry(new)?.leader.next_rank;
        let mut out = Vec::new();
        // Fast path: equal heights allow subtree pruning by comparing map
        // descriptors ("traversing their position maps and comparing the
        // descriptors of the corresponding chunks").
        if old_height == new_height {
            let root = Position::map(old_height, 0);
            self.diff_subtree(old, new, root, &mut out)?;
        } else {
            let max_rank = old_next.max(new_next);
            for rank in 0..max_rank {
                self.diff_leaf(old, new, Position::data(rank), &mut out)?;
            }
        }
        Ok(out)
    }

    fn diff_subtree(
        &mut self,
        old: PartitionId,
        new: PartitionId,
        pos: Position,
        out: &mut Vec<DiffEntry>,
    ) -> Result<()> {
        let d_old = self.get_descriptor(ChunkId::new(old, pos))?;
        let d_new = self.get_descriptor(ChunkId::new(new, pos))?;
        // Identical subtrees are pruned — but only when neither side has
        // buffered overrides anywhere below: dirty cached map chunks are
        // not yet reflected in ancestor descriptors (that is the §4.7
        // deferral), so a clean-looking match here can hide changes.
        let dirty = self.subtree_has_dirty(old, pos) || self.subtree_has_dirty(new, pos);
        if d_old.same_state(&d_new) && !dirty {
            return Ok(());
        }
        for slot in 0..self.fanout() as usize {
            let child = pos.child(self.fanout(), slot);
            if child.is_data() {
                self.diff_leaf(old, new, child, out)?;
            } else {
                self.diff_subtree(old, new, child, out)?;
            }
        }
        Ok(())
    }

    /// True when `p` has any dirty cached map chunk inside the subtree
    /// rooted at `pos` (including `pos` itself). One ordered range probe
    /// per level of the dirty index — O(height · log dirty) — instead of
    /// scanning every dirty key per call.
    pub(crate) fn subtree_has_dirty(&self, p: PartitionId, pos: Position) -> bool {
        self.map_cache.subtree_dirty(p, pos, self.fanout())
    }

    fn diff_leaf(
        &mut self,
        old: PartitionId,
        new: PartitionId,
        pos: Position,
        out: &mut Vec<DiffEntry>,
    ) -> Result<()> {
        let d_old = self.get_descriptor(ChunkId::new(old, pos))?;
        let d_new = self.get_descriptor(ChunkId::new(new, pos))?;
        let change = match (d_old.is_written(), d_new.is_written()) {
            (false, true) => Some(DiffChange::Created),
            (true, false) => Some(DiffChange::Deallocated),
            (true, true) if !d_old.same_state(&d_new) => Some(DiffChange::Updated),
            _ => None,
        };
        if let Some(change) = change {
            out.push(DiffEntry { pos, change });
        }
        Ok(())
    }

    pub(crate) fn written_ranks(&mut self, p: PartitionId) -> Result<Vec<u64>> {
        let next = self.leader_entry(p)?.leader.next_rank;
        let mut out = Vec::new();
        for rank in 0..next {
            let desc = self.get_descriptor(ChunkId::data(p, rank))?;
            if desc.is_written() {
                out.push(rank);
            }
        }
        Ok(out)
    }
}
