//! The shard manager: N independent chunk stores as isolated fault
//! domains, with crash-safe online partition migration between them.
//!
//! The paper's store is a single fault domain — one poisoned
//! [`ChunkStore`] takes the whole database down. The manager scales that
//! out: each shard is a complete, independent store (its own trusted
//! counter, log, read path, and maintenance thread, all sharing one
//! platform secret), and callers address *logical* partitions
//! ([`LogicalId`]) that the manager routes to a `(shard, partition)` pair.
//! A shard entering `Degraded` or `Poisoned` (the PR-1 health machine)
//! flips only its partitions to read-only or unavailable; every other
//! shard keeps serving.
//!
//! Routing lives in a durable, tamper-evident [`journal::Journal`]; the
//! in-memory table is replayed from it on open. Partition migration — the
//! mechanism behind both load movement and degraded-shard evacuation — is
//! an explicit journaled state machine (see [`migration`]) built on the
//! backup store's validated snapshot streams: every shipped chunk is
//! decrypted and signature-verified on ingest, so a tampered or truncated
//! transfer is detected, never installed.

pub mod journal;
pub mod migration;

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use tdb_crypto::SecretKey;
use tdb_storage::{ArchivalStore, SharedUntrusted};

use crate::backup::{ApproveAll, BackupSpec, BackupStore};
use crate::errors::{CoreError, Result};
use crate::ids::{ChunkId, PartitionId};
use crate::metrics::{self, counters};
use crate::params::CryptoParams;
use crate::store::{
    ChunkStore, ChunkStoreConfig, ChunkStoreStats, CommitOp, StoreHealth, TrustedBackend,
};

use journal::{Journal, JournalRecord};
use migration::{
    MigrationObserver, MigrationOutcome, MigrationRecord, MigrationState, MigrationStep,
};

/// Identifies one shard (one independent chunk store) in the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// A logical partition id, stable across migrations. Callers hold these;
/// the manager maps them to whatever `(shard, partition)` currently backs
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogicalId(pub u64);

impl std::fmt::Display for LogicalId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Everything needed to create or open one shard's store.
pub struct ShardSpec {
    /// The shard's untrusted store.
    pub untrusted: SharedUntrusted,
    /// The shard's own trusted counter or register.
    pub trusted: TrustedBackend,
    /// Store configuration. All shards must agree on the system cipher
    /// and hash (one trusted platform signs for the whole fleet).
    pub config: ChunkStoreConfig,
}

/// A mutation routed to a logical partition.
#[derive(Debug, Clone)]
pub enum ShardOp {
    /// Set the chunk at `rank` to `bytes`.
    Write {
        /// Chunk rank within the logical partition.
        rank: u64,
        /// New chunk contents.
        bytes: Vec<u8>,
    },
    /// Deallocate the chunk at `rank`.
    Dealloc {
        /// Chunk rank within the logical partition.
        rank: u64,
    },
}

/// One shard slot: an open store, or the reason it could not open. A
/// failed open does not fail the manager — that is the whole point of
/// fault isolation — it just makes that shard's partitions unavailable.
enum ShardSlot {
    Open {
        store: Arc<ChunkStore>,
        backups: BackupStore,
    },
    Failed(String),
}

/// Where a logical partition currently lives. Writers hold the read lock
/// across their shard commit; a migration cutover takes the write lock to
/// pause new writes (draining in-flight ones) and later to flip the route.
struct RouteCell {
    route: RwLock<Route>,
}

#[derive(Debug, Clone, Copy)]
struct Route {
    shard: ShardId,
    pid: PartitionId,
    /// True while a migration drains the write delta: commits return
    /// [`CoreError::Busy`] (transient — retry after the cutover).
    paused: bool,
}

/// In-memory routing and migration state, replayed from the journal.
struct ManagerState {
    routes: BTreeMap<u64, Arc<RouteCell>>,
    next_logical: u64,
    migrations: BTreeMap<u64, MigrationRecord>,
    next_migration: u64,
    /// Last observed health per shard, for transition counting.
    last_health: Vec<StoreHealth>,
}

/// The shard manager. See the [module docs](self) for the architecture.
pub struct ShardManager {
    shards: Vec<ShardSlot>,
    journal: Mutex<Journal>,
    state: Mutex<ManagerState>,
    /// Serializes migrations (one at a time keeps the journal's state
    /// machine linear; migrations are rare, bulk operations).
    migration_gate: Mutex<()>,
    observer: Mutex<Option<Arc<MigrationObserver>>>,
    transfer: Arc<dyn ArchivalStore>,
}

impl ShardManager {
    /// Formats a fresh fleet: every shard store is created, and the
    /// journal (which must be empty) is initialized.
    ///
    /// # Errors
    ///
    /// Fails if any shard store cannot be created, configs disagree on
    /// the system cipher/hash, or the journal is not empty.
    pub fn create(
        specs: Vec<ShardSpec>,
        journal_store: SharedUntrusted,
        transfer: Arc<dyn ArchivalStore>,
        secret: SecretKey,
    ) -> Result<ShardManager> {
        check_specs(&specs)?;
        let journal_crypto = journal_params(&specs[0].config, &secret).runtime()?;
        let (journal, records) = Journal::open(journal_store, journal_crypto)?;
        if !records.is_empty() {
            return Err(CoreError::Corrupt(
                "journal not empty when creating a fresh shard fleet".into(),
            ));
        }
        let mut shards = Vec::with_capacity(specs.len());
        for spec in specs {
            let store = Arc::new(ChunkStore::create(
                spec.untrusted,
                spec.trusted,
                secret.clone(),
                spec.config,
            )?);
            let backups = BackupStore::new(Arc::clone(&store), Arc::clone(&transfer));
            shards.push(ShardSlot::Open { store, backups });
        }
        let shard_count = shards.len();
        Ok(ShardManager {
            shards,
            journal: Mutex::new(journal),
            state: Mutex::new(ManagerState {
                routes: BTreeMap::new(),
                next_logical: 0,
                migrations: BTreeMap::new(),
                next_migration: 0,
                last_health: vec![StoreHealth::Live; shard_count],
            }),
            migration_gate: Mutex::new(()),
            observer: Mutex::new(None),
            transfer,
        })
    }

    /// Opens an existing fleet: each shard store runs crash recovery
    /// independently — a shard that fails to open becomes an unavailable
    /// fault domain, not a failed fleet — the journal is replayed into the
    /// routing table, and interrupted migrations are resumed or rolled
    /// back.
    ///
    /// # Errors
    ///
    /// Fails only on journal errors (storage or tamper detection): the
    /// journal is the root of routing trust, so it has no degraded mode.
    pub fn open(
        specs: Vec<ShardSpec>,
        journal_store: SharedUntrusted,
        transfer: Arc<dyn ArchivalStore>,
        secret: SecretKey,
    ) -> Result<ShardManager> {
        check_specs(&specs)?;
        let journal_crypto = journal_params(&specs[0].config, &secret).runtime()?;
        let (journal, records) = Journal::open(journal_store, journal_crypto)?;
        let mut shards = Vec::with_capacity(specs.len());
        for (i, spec) in specs.into_iter().enumerate() {
            match ChunkStore::open(spec.untrusted, spec.trusted, secret.clone(), spec.config) {
                Ok(store) => {
                    let store = Arc::new(store);
                    let backups = BackupStore::new(Arc::clone(&store), Arc::clone(&transfer));
                    shards.push(ShardSlot::Open { store, backups });
                }
                Err(e) => {
                    metrics::count_labeled(counters::SHARD_POISONED, i as u64);
                    shards.push(ShardSlot::Failed(e.to_string()));
                }
            }
        }
        let mut state = ManagerState {
            routes: BTreeMap::new(),
            next_logical: 0,
            migrations: BTreeMap::new(),
            next_migration: 0,
            last_health: shards
                .iter()
                .map(|s| match s {
                    ShardSlot::Open { store, .. } => store.health(),
                    ShardSlot::Failed(reason) => StoreHealth::Poisoned {
                        reason: reason.clone(),
                    },
                })
                .collect(),
        };
        replay(&mut state, &records)?;
        let manager = ShardManager {
            shards,
            journal: Mutex::new(journal),
            state: Mutex::new(state),
            migration_gate: Mutex::new(()),
            observer: Mutex::new(None),
            transfer,
        };
        // Crash-safety: every non-terminal migration resumes (post-cutover)
        // or rolls back (pre-cutover) right now; unreachable shards leave
        // it Pending for a later resume_migrations().
        manager.resume_migrations();
        Ok(manager)
    }

    /// Installs (or clears) the migration fault-injection observer.
    pub fn set_migration_observer(&self, observer: Option<Arc<MigrationObserver>>) {
        *self.observer.lock() = observer;
    }

    /// Number of shard slots (including failed ones).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to one shard's store, for tests and tooling.
    ///
    /// # Errors
    ///
    /// Fails if the shard is out of range or failed to open.
    pub fn shard_store(&self, shard: ShardId) -> Result<Arc<ChunkStore>> {
        self.store(shard).cloned()
    }

    /// Creates a new logical partition, placed on the live shard with the
    /// fewest partitions.
    ///
    /// Ordering is commit-then-journal: the partition is first created on
    /// the shard, then the route is journaled. A crash between the two
    /// leaves an unrouted (and therefore harmless, reclaimable) partition
    /// on the shard — never a route pointing at nothing.
    ///
    /// # Errors
    ///
    /// Fails when no live shard exists, or on shard/journal errors.
    pub fn create_partition(&self, params: CryptoParams) -> Result<LogicalId> {
        let shard = self.pick_live_shard(None)?;
        let store = self.store(shard)?;
        let pid = store.allocate_partition()?;
        store.commit(vec![CommitOp::CreatePartition { id: pid, params }])?;
        self.note_shard_health(shard);
        let mut state = self.state.lock();
        let logical = LogicalId(state.next_logical);
        self.journal.lock().append(&JournalRecord::Assign {
            logical,
            shard,
            pid,
        })?;
        state.next_logical += 1;
        state.routes.insert(
            logical.0,
            Arc::new(RouteCell {
                route: RwLock::new(Route {
                    shard,
                    pid,
                    paused: false,
                }),
            }),
        );
        Ok(logical)
    }

    /// Allocates a chunk rank in the logical partition (§4.1 `Allocate`;
    /// like the underlying store's, the allocation is session-only and
    /// becomes persistent when written).
    ///
    /// # Errors
    ///
    /// Fails on unknown logicals or if the owning shard is not live.
    pub fn allocate_chunk(&self, logical: LogicalId) -> Result<u64> {
        let cell = self.cell(logical)?;
        let guard = cell.route.read();
        let store = self.store(guard.shard)?;
        let id = store.allocate_chunk(guard.pid)?;
        Ok(id.pos.rank)
    }

    /// Atomically applies `ops` to the logical partition on whatever shard
    /// currently backs it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Busy`] (transient — retry) while a migration
    /// cutover is draining this partition's writes; otherwise propagates
    /// shard errors (`DegradedMode`/`Poisoned` when the owning shard is
    /// down, which is the fault-isolation contract: only this shard's
    /// partitions are affected).
    pub fn commit(&self, logical: LogicalId, ops: Vec<ShardOp>) -> Result<()> {
        let cell = self.cell(logical)?;
        let guard = cell.route.read();
        if guard.paused {
            return Err(CoreError::Busy(format!(
                "{logical} is cutting over to another shard"
            )));
        }
        let (shard, pid) = (guard.shard, guard.pid);
        let store = self.store(shard)?;
        let ops = ops
            .into_iter()
            .map(|op| match op {
                ShardOp::Write { rank, bytes } => CommitOp::WriteChunk {
                    id: ChunkId::data(pid, rank),
                    bytes,
                },
                ShardOp::Dealloc { rank } => CommitOp::DeallocChunk {
                    id: ChunkId::data(pid, rank),
                },
            })
            .collect();
        let result = store.commit(ops);
        drop(guard);
        self.note_shard_health(shard);
        result
    }

    /// Reads one validated chunk of the logical partition. Reads are
    /// served even while a migration is draining (the source stays
    /// readable until cutover) and on Degraded shards (read-only is
    /// exactly what Degraded means).
    ///
    /// # Errors
    ///
    /// Fails on unknown logicals, unwritten chunks, or shard errors.
    pub fn read(&self, logical: LogicalId, rank: u64) -> Result<Vec<u8>> {
        let cell = self.cell(logical)?;
        let guard = cell.route.read();
        let store = self.store(guard.shard)?;
        store.read(ChunkId::data(guard.pid, rank))
    }

    /// Deallocates a logical partition and removes its route.
    ///
    /// # Errors
    ///
    /// Fails on unknown logicals, a paused route ([`CoreError::Busy`]), or
    /// shard/journal errors.
    pub fn dealloc_partition(&self, logical: LogicalId) -> Result<()> {
        let cell = self.cell(logical)?;
        let guard = cell.route.read();
        if guard.paused {
            return Err(CoreError::Busy(format!("{logical} is cutting over")));
        }
        let (shard, pid) = (guard.shard, guard.pid);
        let store = self.store(shard)?;
        store.commit(vec![CommitOp::DeallocPartition { id: pid }])?;
        drop(guard);
        self.note_shard_health(shard);
        let mut state = self.state.lock();
        self.journal
            .lock()
            .append(&JournalRecord::Remove { logical })?;
        state.routes.remove(&logical.0);
        Ok(())
    }

    /// Current health of every shard slot (failed slots report
    /// `Poisoned`). Polling this also drives the shard-level health
    /// transition counters.
    pub fn health_all(&self) -> Vec<(ShardId, StoreHealth)> {
        (0..self.shards.len() as u32)
            .map(|i| {
                let shard = ShardId(i);
                self.note_shard_health(shard);
                (shard, self.health_of(shard))
            })
            .collect()
    }

    /// Attempts to heal one degraded shard back to live service.
    ///
    /// # Errors
    ///
    /// Propagates the store's [`ChunkStore::try_heal`] errors.
    pub fn try_heal(&self, shard: ShardId) -> Result<()> {
        let result = self.store(shard)?.try_heal();
        self.note_shard_health(shard);
        result
    }

    /// Per-shard store stats (`None` for failed slots).
    pub fn shard_stats(&self) -> Vec<(ShardId, Option<ChunkStoreStats>)> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                let stats = match slot {
                    ShardSlot::Open { store, .. } => Some(store.stats()),
                    ShardSlot::Failed(_) => None,
                };
                (ShardId(i as u32), stats)
            })
            .collect()
    }

    /// The logical partitions currently routed to `shard`.
    pub fn logicals_on(&self, shard: ShardId) -> Vec<LogicalId> {
        let state = self.state.lock();
        state
            .routes
            .iter()
            .filter(|(_, cell)| cell.route.read().shard == shard)
            .map(|(l, _)| LogicalId(*l))
            .collect()
    }

    /// The `(shard, partition)` pair currently backing a logical
    /// partition.
    ///
    /// # Errors
    ///
    /// Fails on unknown logicals.
    pub fn locate(&self, logical: LogicalId) -> Result<(ShardId, PartitionId)> {
        let cell = self.cell(logical)?;
        let guard = cell.route.read();
        Ok((guard.shard, guard.pid))
    }

    /// Migrates a logical partition to `dst` through the journaled state
    /// machine (see [`migration`]). One migration runs at a time.
    ///
    /// A live source drains its write delta under a brief pause; a
    /// Degraded source is evacuated frozen (it is read-only, so there is
    /// no delta). On an inline failure before cutover the migration is
    /// rolled back immediately (best-effort — an unreachable shard leaves
    /// it for [`ShardManager::resume_migrations`]); after cutover it is
    /// completed.
    ///
    /// # Errors
    ///
    /// Fails on unknown logicals, a non-live destination, a poisoned
    /// source, or shard/journal errors during the transfer.
    pub fn migrate(&self, logical: LogicalId, dst: ShardId) -> Result<MigrationOutcome> {
        let _gate = self.migration_gate.lock();
        let cell = self.cell(logical)?;
        let (src_shard, src_pid) = {
            let guard = cell.route.read();
            if guard.paused {
                return Err(CoreError::Busy(format!("{logical} is already migrating")));
            }
            (guard.shard, guard.pid)
        };
        if src_shard == dst {
            return Ok(MigrationOutcome::Completed);
        }
        let dst_store = self.store(dst)?;
        if dst_store.health() != StoreHealth::Live {
            return Err(CoreError::DegradedMode(format!(
                "destination {dst} is not live"
            )));
        }
        let frozen = match self.health_of(src_shard) {
            StoreHealth::Live => false,
            StoreHealth::Degraded { .. } => true,
            StoreHealth::Poisoned { reason } => {
                return Err(CoreError::Poisoned(format!(
                    "source {src_shard} is poisoned: {reason}"
                )))
            }
        };
        let dst_pid = dst_store.allocate_partition()?;
        let mid = {
            let mut state = self.state.lock();
            let mid = state.next_migration;
            self.journal.lock().append(&JournalRecord::MigBegin {
                mid,
                logical,
                src_shard,
                src_pid,
                dst_shard: dst,
                dst_pid,
                frozen,
            })?;
            state.next_migration += 1;
            state.migrations.insert(
                mid,
                MigrationRecord {
                    mid,
                    logical,
                    src_shard,
                    src_pid,
                    dst_shard: dst,
                    dst_pid,
                    frozen,
                    snaps: Vec::new(),
                    state: MigrationState::Prepared,
                },
            );
            mid
        };
        metrics::count_labeled(counters::MIGRATIONS_STARTED, u64::from(src_shard.0));
        let observer = self.observer.lock().clone();
        let result = self.drive_migration(mid, &cell, observer.as_deref());
        match result {
            Ok(outcome) => Ok(outcome),
            Err(e) => {
                // A "crash…" observer message simulates process death: no
                // inline recovery, the journal speaks for us on resume.
                let simulated_crash = matches!(
                    &e,
                    CoreError::Store(tdb_storage::StoreError::Io(io))
                        if io.to_string().starts_with("crash")
                );
                if !simulated_crash {
                    self.recover_migration(mid);
                }
                Err(e)
            }
        }
    }

    /// Resumes or rolls back every non-terminal migration. Called
    /// automatically by [`ShardManager::open`]; call it again to retry
    /// migrations left `Pending` by unreachable shards.
    pub fn resume_migrations(&self) -> Vec<(u64, MigrationOutcome)> {
        let _gate = self.migration_gate.lock();
        let pending: Vec<u64> = {
            let state = self.state.lock();
            state
                .migrations
                .iter()
                .filter(|(_, r)| !r.state.is_terminal())
                .map(|(mid, _)| *mid)
                .collect()
        };
        pending
            .into_iter()
            .map(|mid| {
                metrics::count_labeled(counters::MIGRATIONS_RESUMED, {
                    let state = self.state.lock();
                    u64::from(state.migrations[&mid].src_shard.0)
                });
                (mid, self.recover_migration(mid))
            })
            .collect()
    }

    /// Evacuates every logical partition off `shard` (typically because it
    /// is Degraded), migrating each to the least-loaded live shard.
    /// Individual failures leave that partition `Pending`/in place and the
    /// evacuation continues — convergence comes from calling this (and
    /// [`ShardManager::resume_migrations`]) again.
    ///
    /// # Errors
    ///
    /// Fails only when no live destination shard exists at all.
    pub fn evacuate(&self, shard: ShardId) -> Result<Vec<(LogicalId, MigrationOutcome)>> {
        // Fail fast when there is nowhere to go.
        self.pick_live_shard(Some(shard))?;
        let logicals = self.logicals_on(shard);
        let mut out = Vec::with_capacity(logicals.len());
        for logical in logicals {
            let outcome = match self.pick_live_shard(Some(shard)) {
                Ok(dst) => self
                    .migrate(logical, dst)
                    .unwrap_or(MigrationOutcome::Pending),
                Err(_) => MigrationOutcome::Pending,
            };
            out.push((logical, outcome));
        }
        Ok(out)
    }

    /// The migration records (for tests and tooling).
    pub fn migrations(&self) -> Vec<MigrationRecord> {
        self.state.lock().migrations.values().cloned().collect()
    }

    /// Checkpoints and flushes every live shard; best-effort on the rest.
    ///
    /// # Errors
    ///
    /// Returns the first shard error encountered (after attempting all).
    pub fn close(&self) -> Result<()> {
        let mut first_err = None;
        for slot in &self.shards {
            if let ShardSlot::Open { store, .. } = slot {
                if store.health() == StoreHealth::Live {
                    if let Err(e) = store.close() {
                        first_err.get_or_insert(e);
                    }
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    // ---- internals ----

    fn cell(&self, logical: LogicalId) -> Result<Arc<RouteCell>> {
        self.state
            .lock()
            .routes
            .get(&logical.0)
            .cloned()
            .ok_or_else(|| CoreError::Corrupt(format!("unknown logical partition {logical}")))
    }

    fn store(&self, shard: ShardId) -> Result<&Arc<ChunkStore>> {
        match self.shards.get(shard.0 as usize) {
            Some(ShardSlot::Open { store, .. }) => Ok(store),
            Some(ShardSlot::Failed(reason)) => Err(CoreError::Poisoned(format!(
                "{shard} failed to open: {reason}"
            ))),
            None => Err(CoreError::Corrupt(format!("no such shard: {shard}"))),
        }
    }

    fn backups(&self, shard: ShardId) -> Result<&BackupStore> {
        match self.shards.get(shard.0 as usize) {
            Some(ShardSlot::Open { backups, .. }) => Ok(backups),
            Some(ShardSlot::Failed(reason)) => Err(CoreError::Poisoned(format!(
                "{shard} failed to open: {reason}"
            ))),
            None => Err(CoreError::Corrupt(format!("no such shard: {shard}"))),
        }
    }

    fn health_of(&self, shard: ShardId) -> StoreHealth {
        match self.shards.get(shard.0 as usize) {
            Some(ShardSlot::Open { store, .. }) => store.health(),
            Some(ShardSlot::Failed(reason)) => StoreHealth::Poisoned {
                reason: reason.clone(),
            },
            None => StoreHealth::Poisoned {
                reason: "no such shard".into(),
            },
        }
    }

    /// Records health transitions in the per-shard labelled counters.
    fn note_shard_health(&self, shard: ShardId) {
        let now = self.health_of(shard);
        let mut state = self.state.lock();
        let Some(prev) = state.last_health.get(shard.0 as usize) else {
            return;
        };
        let label = u64::from(shard.0);
        match (prev, &now) {
            (StoreHealth::Live, StoreHealth::Degraded { .. }) => {
                metrics::count_labeled(counters::SHARD_DEGRADED, label);
            }
            (StoreHealth::Live | StoreHealth::Degraded { .. }, StoreHealth::Poisoned { .. }) => {
                metrics::count_labeled(counters::SHARD_POISONED, label);
            }
            (StoreHealth::Degraded { .. }, StoreHealth::Live) => {
                metrics::count_labeled(counters::SHARD_HEALED, label);
            }
            _ => {}
        }
        state.last_health[shard.0 as usize] = now;
    }

    /// The live shard with the fewest routed partitions, excluding
    /// `not_this`.
    fn pick_live_shard(&self, not_this: Option<ShardId>) -> Result<ShardId> {
        let mut loads: Vec<usize> = vec![0; self.shards.len()];
        {
            let state = self.state.lock();
            for cell in state.routes.values() {
                let s = cell.route.read().shard.0 as usize;
                if s < loads.len() {
                    loads[s] += 1;
                }
            }
        }
        let mut best: Option<(usize, ShardId)> = None;
        for (i, &load) in loads.iter().enumerate() {
            let shard = ShardId(i as u32);
            if Some(shard) == not_this {
                continue;
            }
            if self.health_of(shard) != StoreHealth::Live {
                continue;
            }
            if best.map(|(best_load, _)| load < best_load).unwrap_or(true) {
                best = Some((load, shard));
            }
        }
        best.map(|(_, s)| s)
            .ok_or_else(|| CoreError::DegradedMode("no live shard available for placement".into()))
    }

    fn journal_state(&self, mid: u64, to: MigrationState) -> Result<()> {
        self.journal
            .lock()
            .append(&JournalRecord::MigState { mid, state: to })?;
        if let Some(rec) = self.state.lock().migrations.get_mut(&mid) {
            rec.state = to;
        }
        Ok(())
    }

    fn observe(observer: Option<&MigrationObserver>, mid: u64, step: MigrationStep) -> Result<()> {
        if let Some(obs) = observer {
            obs(mid, step).map_err(|msg| {
                CoreError::Store(tdb_storage::StoreError::Io(std::io::Error::other(msg)))
            })?;
        }
        Ok(())
    }

    /// Drives a freshly journaled migration from `Prepared` to
    /// `Completed`. Any error propagates to [`ShardManager::migrate`],
    /// which runs inline recovery.
    fn drive_migration(
        &self,
        mid: u64,
        cell: &RouteCell,
        observer: Option<&MigrationObserver>,
    ) -> Result<MigrationOutcome> {
        let rec = self.state.lock().migrations[&mid].clone();
        let src = self.store(rec.src_shard)?.clone();
        let src_backups = self.backups(rec.src_shard)?;
        let dst_backups = self.backups(rec.dst_shard)?;
        let [full_name, delta_name] = rec.transfer_names();

        Self::observe(observer, mid, MigrationStep::Prepared)?;

        if rec.frozen {
            // The source is read-only: pause route writes anyway (in case
            // the shard heals mid-migration) and stream it directly.
            cell.route.write().paused = true;
            src_backups.backup_frozen(rec.src_pid, &full_name)?;
            self.journal_state(mid, MigrationState::SnapshotShipped)?;
            Self::observe(observer, mid, MigrationStep::SnapshotShipped)?;
            dst_backups.restore_as(&[&full_name], &ApproveAll, rec.dst_pid)?;
            Self::observe(observer, mid, MigrationStep::Restored)?;
            // No delta exists, but the state machine stays uniform so
            // recovery has one shape.
            self.journal_state(mid, MigrationState::DeltaDraining)?;
            Self::observe(observer, mid, MigrationStep::DeltaDraining)?;
        } else {
            // 1. Consistent copy-on-write snapshot of the source.
            let snap = src.allocate_partition()?;
            src.commit(vec![CommitOp::CopyPartition {
                dst: snap,
                src: rec.src_pid,
            }])?;
            self.journal
                .lock()
                .append(&JournalRecord::MigSnap { mid, snap })?;
            if let Some(r) = self.state.lock().migrations.get_mut(&mid) {
                r.snaps.push(snap);
            }
            Self::observe(observer, mid, MigrationStep::SnapshotTaken)?;

            // 2. Ship the full backup; every chunk is validated on read
            //    and signature-bound into the stream.
            src_backups.backup_one(
                &BackupSpec {
                    source: rec.src_pid,
                    base: None,
                },
                snap,
                &full_name,
            )?;
            self.journal_state(mid, MigrationState::SnapshotShipped)?;
            Self::observe(observer, mid, MigrationStep::SnapshotShipped)?;

            // 3. Install on the destination (validates every chunk again
            //    on ingest — a tampered transfer is detected here, before
            //    anything is committed).
            dst_backups.restore_as(&[&full_name], &ApproveAll, rec.dst_pid)?;
            Self::observe(observer, mid, MigrationStep::Restored)?;

            // 4. Pause new writes; in-flight commits drain as the write
            //    lock is acquired.
            cell.route.write().paused = true;
            self.journal_state(mid, MigrationState::DeltaDraining)?;
            Self::observe(observer, mid, MigrationStep::DeltaDraining)?;

            // 5. Ship and apply the write delta (snapshot → pause point).
            let snap2 = src.allocate_partition()?;
            src.commit(vec![CommitOp::CopyPartition {
                dst: snap2,
                src: rec.src_pid,
            }])?;
            self.journal
                .lock()
                .append(&JournalRecord::MigSnap { mid, snap: snap2 })?;
            if let Some(r) = self.state.lock().migrations.get_mut(&mid) {
                r.snaps.push(snap2);
            }
            src_backups.backup_one(
                &BackupSpec {
                    source: rec.src_pid,
                    base: Some(snap),
                },
                snap2,
                &delta_name,
            )?;
            Self::observe(observer, mid, MigrationStep::DeltaShipped)?;
            dst_backups.apply_incremental(&delta_name, &ApproveAll, rec.dst_pid)?;
            Self::observe(observer, mid, MigrationStep::DeltaApplied)?;
        }

        // 6. Cutover: durable first, then the in-memory flip. From the
        //    journal append on, the destination is the authority.
        self.journal_state(mid, MigrationState::CutOver)?;
        {
            let mut route = cell.route.write();
            route.shard = rec.dst_shard;
            route.pid = rec.dst_pid;
            route.paused = false;
        }
        Self::observe(observer, mid, MigrationStep::CutOver)?;

        // 7. Garbage collection, then Completed.
        let rec_now = self.state.lock().migrations[&mid].clone();
        self.cleanup_source(&rec_now);
        self.journal_state(mid, MigrationState::Completed)?;
        metrics::count_labeled(counters::MIGRATIONS_COMPLETED, u64::from(rec.src_shard.0));
        Self::observe(observer, mid, MigrationStep::Completed)?;
        Ok(MigrationOutcome::Completed)
    }

    /// Best-effort source-side garbage collection: snapshots, the old
    /// partition, and the transfer objects. Failures (e.g. a Degraded
    /// source that cannot commit the deallocs) are tolerated — the space
    /// is leaked on a failing shard, which reformatting reclaims.
    fn cleanup_source(&self, rec: &MigrationRecord) {
        if let Ok(src) = self.store(rec.src_shard) {
            let mut ops = Vec::new();
            for &snap in &rec.snaps {
                if src.partition_exists(snap) {
                    ops.push(CommitOp::DeallocPartition { id: snap });
                }
            }
            if src.partition_exists(rec.src_pid) {
                ops.push(CommitOp::DeallocPartition { id: rec.src_pid });
            }
            if !ops.is_empty() {
                let _ = src.commit(ops);
            }
        }
        for name in rec.transfer_names() {
            let _ = self.transfer.delete(&name);
        }
    }

    /// Brings one non-terminal migration to a consistent end: roll back
    /// before `CutOver`, complete at or after it. Returns `Pending` when a
    /// shard needed for the *essential* step (discarding the destination
    /// copy on rollback) or the journal is unavailable.
    fn recover_migration(&self, mid: u64) -> MigrationOutcome {
        let Some(rec) = self.state.lock().migrations.get(&mid).cloned() else {
            return MigrationOutcome::Pending;
        };
        match rec.state {
            MigrationState::Completed => MigrationOutcome::Completed,
            MigrationState::RolledBack => MigrationOutcome::RolledBack,
            MigrationState::CutOver => {
                // The flip is durable: make the in-memory route agree,
                // collect garbage, and close the record.
                if let Ok(cell) = self.cell(rec.logical) {
                    let mut route = cell.route.write();
                    route.shard = rec.dst_shard;
                    route.pid = rec.dst_pid;
                    route.paused = false;
                }
                self.cleanup_source(&rec);
                if self.journal_state(mid, MigrationState::Completed).is_err() {
                    return MigrationOutcome::Pending;
                }
                metrics::count_labeled(counters::MIGRATIONS_COMPLETED, u64::from(rec.src_shard.0));
                MigrationOutcome::Completed
            }
            _ => {
                // Pre-cutover: the source is the authority. Unpause it and
                // discard the partial destination copy.
                if let Ok(cell) = self.cell(rec.logical) {
                    let mut route = cell.route.write();
                    route.shard = rec.src_shard;
                    route.pid = rec.src_pid;
                    route.paused = false;
                }
                // Discarding the destination copy is the essential step: a
                // future migration must be able to reuse the shard, and no
                // unrouted replica may linger. An unreachable destination
                // leaves the migration Pending for a later resume.
                match self.store(rec.dst_shard) {
                    Ok(dst) => {
                        if dst.partition_exists(rec.dst_pid)
                            && dst
                                .commit(vec![CommitOp::DeallocPartition { id: rec.dst_pid }])
                                .is_err()
                        {
                            self.note_shard_health(rec.dst_shard);
                            return MigrationOutcome::Pending;
                        }
                    }
                    Err(_) => return MigrationOutcome::Pending,
                }
                // Source-side snapshots and transfer objects are mere
                // garbage; collect best-effort.
                if let Ok(src) = self.store(rec.src_shard) {
                    let ops: Vec<CommitOp> = rec
                        .snaps
                        .iter()
                        .filter(|&&s| src.partition_exists(s))
                        .map(|&s| CommitOp::DeallocPartition { id: s })
                        .collect();
                    if !ops.is_empty() {
                        let _ = src.commit(ops);
                    }
                }
                for name in rec.transfer_names() {
                    let _ = self.transfer.delete(&name);
                }
                if self.journal_state(mid, MigrationState::RolledBack).is_err() {
                    return MigrationOutcome::Pending;
                }
                metrics::count_labeled(
                    counters::MIGRATIONS_ROLLED_BACK,
                    u64::from(rec.src_shard.0),
                );
                MigrationOutcome::RolledBack
            }
        }
    }
}

/// All shards must share the system cipher/hash: the fleet is one trusted
/// platform with N fault domains, and migration streams are sealed under
/// the system parameters.
fn check_specs(specs: &[ShardSpec]) -> Result<()> {
    let first = specs
        .first()
        .ok_or_else(|| CoreError::Corrupt("shard fleet needs at least one shard".into()))?;
    for (i, spec) in specs.iter().enumerate() {
        if spec.config.system_cipher != first.config.system_cipher
            || spec.config.system_hash != first.config.system_hash
        {
            return Err(CoreError::Corrupt(format!(
                "shard {i} disagrees on system cipher/hash"
            )));
        }
    }
    Ok(())
}

/// The journal signs with the same system parameters the shards use.
fn journal_params(config: &ChunkStoreConfig, secret: &SecretKey) -> CryptoParams {
    CryptoParams {
        cipher: config.system_cipher,
        hash: config.system_hash,
        key: secret.clone(),
    }
}

/// Rebuilds routing and migration state from the journal.
fn replay(state: &mut ManagerState, records: &[JournalRecord]) -> Result<()> {
    for rec in records {
        match rec {
            JournalRecord::Assign {
                logical,
                shard,
                pid,
            } => {
                state.routes.insert(
                    logical.0,
                    Arc::new(RouteCell {
                        route: RwLock::new(Route {
                            shard: *shard,
                            pid: *pid,
                            paused: false,
                        }),
                    }),
                );
                state.next_logical = state.next_logical.max(logical.0 + 1);
            }
            JournalRecord::Remove { logical } => {
                state.routes.remove(&logical.0);
            }
            JournalRecord::MigBegin {
                mid,
                logical,
                src_shard,
                src_pid,
                dst_shard,
                dst_pid,
                frozen,
            } => {
                state.migrations.insert(
                    *mid,
                    MigrationRecord {
                        mid: *mid,
                        logical: *logical,
                        src_shard: *src_shard,
                        src_pid: *src_pid,
                        dst_shard: *dst_shard,
                        dst_pid: *dst_pid,
                        frozen: *frozen,
                        snaps: Vec::new(),
                        state: MigrationState::Prepared,
                    },
                );
                state.next_migration = state.next_migration.max(*mid + 1);
            }
            JournalRecord::MigSnap { mid, snap } => {
                let r = state.migrations.get_mut(mid).ok_or_else(|| {
                    CoreError::Corrupt(format!("journal snapshot for unknown migration {mid}"))
                })?;
                r.snaps.push(*snap);
            }
            JournalRecord::MigState { mid, state: to } => {
                let r = state.migrations.get_mut(mid).ok_or_else(|| {
                    CoreError::Corrupt(format!("journal state for unknown migration {mid}"))
                })?;
                r.state = *to;
                if *to == MigrationState::CutOver {
                    // The routing flip is durable from this record on.
                    if let Some(cell) = state.routes.get(&r.logical.0) {
                        let mut route = cell.route.write();
                        route.shard = r.dst_shard;
                        route.pid = r.dst_pid;
                        route.paused = false;
                    }
                }
            }
        }
    }
    Ok(())
}
