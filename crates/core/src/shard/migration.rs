//! Migration state machine types.
//!
//! A partition migration moves one logical partition from a source shard to
//! a destination shard while the rest of the fleet keeps serving. The
//! manager drives it through an explicit, journaled state machine:
//!
//! ```text
//! Prepared ──► SnapshotShipped ──► DeltaDraining ──► CutOver ──► Completed
//!     │               │                  │              │
//!     └───────────────┴──────────────────┘              └─► (resume: finish
//!                     │                                      cleanup, then
//!                     ▼                                      Completed)
//!                RolledBack
//! ```
//!
//! Every arrow is crossed only after the corresponding journal record is
//! durable, so a crash at any point leaves the journal naming exactly one
//! consistent continuation: states before `CutOver` roll back (the source
//! remains the authority and the partially installed copy is discarded);
//! `CutOver` and later complete (the routing flip is already durable, so
//! the destination is the authority and only garbage collection remains).

use crate::errors::{CoreError, Result};
use crate::ids::PartitionId;

use super::{LogicalId, ShardId};

/// The durable states of a partition migration, in journal order.
///
/// Only these five states are journaled; the finer-grained progress points
/// a fault-injection test may want to interrupt at are [`MigrationStep`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MigrationState {
    /// The migration is journaled: source, destination, and the
    /// destination partition id are fixed. Nothing has shipped yet.
    Prepared,
    /// The full snapshot backup reached the transfer archive.
    SnapshotShipped,
    /// Writes to the logical partition are paused while the write delta
    /// (snapshot → pause point) ships and installs.
    DeltaDraining,
    /// The routing flip is durable: the destination copy is the authority.
    /// Only source-side garbage collection remains.
    CutOver,
    /// Terminal: the migration finished and its garbage was collected (or
    /// collection was abandoned on an unreachable source shard).
    Completed,
    /// Terminal: the migration was abandoned before `CutOver`; the source
    /// is untouched and the partial destination copy was discarded.
    RolledBack,
}

impl MigrationState {
    /// True for `Completed` and `RolledBack`.
    pub fn is_terminal(self) -> bool {
        matches!(self, MigrationState::Completed | MigrationState::RolledBack)
    }

    pub(crate) fn encode(self) -> u8 {
        match self {
            MigrationState::Prepared => 0,
            MigrationState::SnapshotShipped => 1,
            MigrationState::DeltaDraining => 2,
            MigrationState::CutOver => 3,
            MigrationState::Completed => 4,
            MigrationState::RolledBack => 5,
        }
    }

    pub(crate) fn decode(v: u8) -> Result<MigrationState> {
        Ok(match v {
            0 => MigrationState::Prepared,
            1 => MigrationState::SnapshotShipped,
            2 => MigrationState::DeltaDraining,
            3 => MigrationState::CutOver,
            4 => MigrationState::Completed,
            5 => MigrationState::RolledBack,
            other => {
                return Err(CoreError::Corrupt(format!(
                    "unknown migration state code {other}"
                )))
            }
        })
    }
}

impl std::fmt::Display for MigrationState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MigrationState::Prepared => "Prepared",
            MigrationState::SnapshotShipped => "SnapshotShipped",
            MigrationState::DeltaDraining => "DeltaDraining",
            MigrationState::CutOver => "CutOver",
            MigrationState::Completed => "Completed",
            MigrationState::RolledBack => "RolledBack",
        };
        f.write_str(s)
    }
}

/// Fine-grained progress points inside a running migration, in execution
/// order. A [`MigrationObserver`] sees each one and may inject a failure
/// there — the torture suite's handle for killing a migration at every
/// step without reaching into the manager's internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MigrationStep {
    /// `Prepared` is journaled.
    Prepared,
    /// The copy-on-write snapshot commit succeeded on the source.
    SnapshotTaken,
    /// The full backup reached the transfer archive (`SnapshotShipped`
    /// journaled).
    SnapshotShipped,
    /// The full backup restored into the destination partition.
    Restored,
    /// Writes paused; `DeltaDraining` journaled.
    DeltaDraining,
    /// The delta backup reached the transfer archive.
    DeltaShipped,
    /// The delta applied on the destination.
    DeltaApplied,
    /// `CutOver` journaled and routing flipped.
    CutOver,
    /// `Completed` journaled after garbage collection.
    Completed,
}

/// A hook called at every [`MigrationStep`] of a running migration.
///
/// Returning `Err(msg)` makes the migration fail at that step. If `msg`
/// starts with `"crash"`, the manager performs *no* inline recovery —
/// simulating the process dying at that instant — and the journaled state
/// is left for [`super::ShardManager::resume_migrations`] (or a reopen) to
/// pick up. Any other message aborts the step but lets the manager run its
/// normal inline recovery (rollback before `CutOver`, completion after).
pub type MigrationObserver =
    dyn Fn(u64, MigrationStep) -> std::result::Result<(), String> + Send + Sync;

/// How a migration (or a resume of one) ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationOutcome {
    /// The destination is the authority; the source copy is gone (or
    /// abandoned on an unreachable shard).
    Completed,
    /// The source is the authority; the destination copy is gone.
    RolledBack,
    /// Recovery could not finish — typically because a shard needed for
    /// cleanup is unavailable. The journaled state is unchanged and a
    /// later [`super::ShardManager::resume_migrations`] will retry.
    Pending,
}

/// The manager's in-memory record of one migration, reconstructed from the
/// journal on open.
#[derive(Debug, Clone)]
pub struct MigrationRecord {
    /// Journal-assigned migration id.
    pub mid: u64,
    /// The logical partition being moved.
    pub logical: LogicalId,
    /// Source shard.
    pub src_shard: ShardId,
    /// The partition id on the source shard.
    pub src_pid: PartitionId,
    /// Destination shard.
    pub dst_shard: ShardId,
    /// The partition id reserved on the destination shard.
    pub dst_pid: PartitionId,
    /// True for a degraded-source evacuation: the source is read-only, so
    /// the stream reads the partition directly and there is no delta.
    pub frozen: bool,
    /// Copy-on-write snapshots taken on the source (garbage to collect).
    pub snaps: Vec<PartitionId>,
    /// Last journaled state.
    pub state: MigrationState,
}

impl MigrationRecord {
    /// Names of this migration's objects in the transfer archive.
    pub(crate) fn transfer_names(&self) -> [String; 2] {
        [
            format!("mig-{}-full", self.mid),
            format!("mig-{}-delta", self.mid),
        ]
    }
}
