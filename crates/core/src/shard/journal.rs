//! The shard manager's durable routing journal.
//!
//! Routing assignments and migration state transitions are appended to a
//! dedicated untrusted store, one record at a time, each flushed before the
//! operation it describes is acknowledged. The framing mirrors the
//! engine's crash discipline:
//!
//! ```text
//! record ::= len:u32  crc:u32  payload
//! payload ::= plain  HMAC_s(plain)
//! plain ::= seq:u64  tag:u8  fields…
//! ```
//!
//! - The CRC-32 covers the payload; a record whose length or CRC does not
//!   check out is a *torn tail* — the crash happened mid-append — and
//!   replay stops there, exactly like the residual log's torn-tail rule.
//! - The HMAC (keyed by the platform secret, like commit chunks) and the
//!   strictly sequential `seq` make the journal tamper-evident: an
//!   attacker on the untrusted store can truncate it (indistinguishable
//!   from a crash, and recovered the same way: unfinished migrations roll
//!   back), but cannot forge, reorder, or splice records without
//!   detection.

use tdb_crypto::crc32::Crc32;
use tdb_storage::SharedUntrusted;

use crate::codec::{Dec, Enc};
use crate::errors::{CoreError, Result, TamperKind};
use crate::ids::PartitionId;
use crate::params::PartitionCrypto;

use super::migration::MigrationState;
use super::{LogicalId, ShardId};

/// Upper bound on one record's payload; anything larger is torn garbage.
const MAX_RECORD: u32 = 1 << 16;

/// One journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A logical partition now routes to `(shard, pid)`.
    Assign {
        /// The logical partition.
        logical: LogicalId,
        /// Owning shard.
        shard: ShardId,
        /// Partition id on that shard.
        pid: PartitionId,
    },
    /// A logical partition was deallocated.
    Remove {
        /// The logical partition.
        logical: LogicalId,
    },
    /// A migration begins (state `Prepared`); fixes both endpoints.
    MigBegin {
        /// Migration id.
        mid: u64,
        /// The logical partition being moved.
        logical: LogicalId,
        /// Source shard.
        src_shard: ShardId,
        /// Partition id on the source shard.
        src_pid: PartitionId,
        /// Destination shard.
        dst_shard: ShardId,
        /// Partition id reserved on the destination shard.
        dst_pid: PartitionId,
        /// True for a degraded-source evacuation.
        frozen: bool,
    },
    /// A copy-on-write snapshot was taken on the source for migration
    /// `mid` (journaled so rollback knows what to collect).
    MigSnap {
        /// Migration id.
        mid: u64,
        /// The snapshot partition on the source shard.
        snap: PartitionId,
    },
    /// Migration `mid` crossed into `state`.
    MigState {
        /// Migration id.
        mid: u64,
        /// The state just made durable.
        state: MigrationState,
    },
}

impl JournalRecord {
    fn encode(&self, seq: u64) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(seq);
        match self {
            JournalRecord::Assign {
                logical,
                shard,
                pid,
            } => {
                e.u8(1);
                e.u64(logical.0);
                e.u32(shard.0);
                e.u32(pid.0);
            }
            JournalRecord::Remove { logical } => {
                e.u8(2);
                e.u64(logical.0);
            }
            JournalRecord::MigBegin {
                mid,
                logical,
                src_shard,
                src_pid,
                dst_shard,
                dst_pid,
                frozen,
            } => {
                e.u8(3);
                e.u64(*mid);
                e.u64(logical.0);
                e.u32(src_shard.0);
                e.u32(src_pid.0);
                e.u32(dst_shard.0);
                e.u32(dst_pid.0);
                e.u8(u8::from(*frozen));
            }
            JournalRecord::MigSnap { mid, snap } => {
                e.u8(4);
                e.u64(*mid);
                e.u32(snap.0);
            }
            JournalRecord::MigState { mid, state } => {
                e.u8(5);
                e.u64(*mid);
                e.u8(state.encode());
            }
        }
        e.finish()
    }

    fn decode(plain: &[u8]) -> Result<(u64, JournalRecord)> {
        let mut d = Dec::new(plain);
        let seq = d.u64()?;
        let tag = d.u8()?;
        let rec = match tag {
            1 => JournalRecord::Assign {
                logical: LogicalId(d.u64()?),
                shard: ShardId(d.u32()?),
                pid: PartitionId(d.u32()?),
            },
            2 => JournalRecord::Remove {
                logical: LogicalId(d.u64()?),
            },
            3 => JournalRecord::MigBegin {
                mid: d.u64()?,
                logical: LogicalId(d.u64()?),
                src_shard: ShardId(d.u32()?),
                src_pid: PartitionId(d.u32()?),
                dst_shard: ShardId(d.u32()?),
                dst_pid: PartitionId(d.u32()?),
                frozen: d.u8()? != 0,
            },
            4 => JournalRecord::MigSnap {
                mid: d.u64()?,
                snap: PartitionId(d.u32()?),
            },
            5 => JournalRecord::MigState {
                mid: d.u64()?,
                state: MigrationState::decode(d.u8()?)?,
            },
            other => {
                return Err(bad_manifest(format!("unknown record tag {other}")));
            }
        };
        d.expect_done("journal record")?;
        Ok((seq, rec))
    }
}

fn bad_manifest(msg: String) -> CoreError {
    CoreError::TamperDetected(TamperKind::BadManifest(msg))
}

/// The append-only journal over an untrusted store.
pub struct Journal {
    store: SharedUntrusted,
    crypto: PartitionCrypto,
    sig_len: usize,
    tail: u64,
    next_seq: u64,
}

impl Journal {
    /// Opens the journal on `store`, replaying every valid record. A torn
    /// tail (bad length or CRC) ends replay, mirroring crash recovery; a
    /// record with intact framing but a bad signature or a non-sequential
    /// `seq` is tampering and fails the open.
    ///
    /// # Errors
    ///
    /// Storage errors, or tamper detection as above.
    pub fn open(
        store: SharedUntrusted,
        crypto: PartitionCrypto,
    ) -> Result<(Journal, Vec<JournalRecord>)> {
        let sig_len = crypto.hash(&[]).as_bytes().len();
        let store_len = store.len().map_err(CoreError::Store)?;
        let mut records = Vec::new();
        let mut pos = 0u64;
        let mut next_seq = 0u64;
        loop {
            if pos + 8 > store_len {
                break;
            }
            let mut head = [0u8; 8];
            store.read_at(pos, &mut head).map_err(CoreError::Store)?;
            let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(head[4..].try_into().expect("4 bytes"));
            if len == 0 || len > MAX_RECORD {
                break; // Zero-filled or torn tail.
            }
            if pos + 8 + u64::from(len) > store_len {
                break; // Torn: the payload never fully landed.
            }
            let mut payload = vec![0u8; len as usize];
            store
                .read_at(pos + 8, &mut payload)
                .map_err(CoreError::Store)?;
            if Crc32::checksum(&payload) != crc {
                break; // Torn write inside the payload.
            }
            if payload.len() < sig_len {
                return Err(bad_manifest(format!(
                    "record at {pos} too short for a signature"
                )));
            }
            let (plain, sig) = payload.split_at(payload.len() - sig_len);
            let expected = self_sign(&crypto, plain);
            if !tdb_crypto::ct_eq(&expected, sig) {
                return Err(bad_manifest(format!(
                    "record at {pos} failed signature verification"
                )));
            }
            let (seq, rec) = JournalRecord::decode(plain)?;
            if seq != next_seq {
                return Err(bad_manifest(format!(
                    "record at {pos}: expected seq {next_seq}, found {seq}"
                )));
            }
            next_seq += 1;
            records.push(rec);
            pos += 8 + u64::from(len);
        }
        Ok((
            Journal {
                store,
                crypto,
                sig_len,
                tail: pos,
                next_seq,
            },
            records,
        ))
    }

    /// Appends one record and flushes it to the device. The caller must
    /// not acknowledge the operation the record describes until this
    /// returns.
    ///
    /// # Errors
    ///
    /// Storage errors; on error the record may or may not have reached the
    /// device, which is exactly the torn-tail case replay tolerates.
    pub fn append(&mut self, rec: &JournalRecord) -> Result<()> {
        let plain = rec.encode(self.next_seq);
        let sig = self_sign(&self.crypto, &plain);
        debug_assert_eq!(sig.len(), self.sig_len);
        let mut payload = plain;
        payload.extend_from_slice(&sig);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&Crc32::checksum(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.store
            .write_at(self.tail, &frame)
            .map_err(CoreError::Store)?;
        self.store.flush().map_err(CoreError::Store)?;
        self.tail += frame.len() as u64;
        self.next_seq += 1;
        Ok(())
    }

    /// Number of records appended over the journal's lifetime.
    pub fn len(&self) -> u64 {
        self.next_seq
    }

    /// True when no record has ever been appended.
    pub fn is_empty(&self) -> bool {
        self.next_seq == 0
    }
}

/// Signs `plain` with the platform secret (HMAC via the system hasher).
fn self_sign(crypto: &PartitionCrypto, plain: &[u8]) -> Vec<u8> {
    crypto.sign(&[plain]).as_bytes().to_vec()
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use tdb_crypto::{CipherKind, HashKind, SecretKey};
    use tdb_storage::MemStore;

    use crate::params::CryptoParams;

    use super::*;

    fn crypto() -> PartitionCrypto {
        CryptoParams {
            cipher: CipherKind::Des,
            hash: HashKind::Sha1,
            key: SecretKey::new(vec![7u8; 8]),
        }
        .runtime()
        .unwrap()
    }

    fn recs() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Assign {
                logical: LogicalId(0),
                shard: ShardId(1),
                pid: PartitionId(9),
            },
            JournalRecord::MigBegin {
                mid: 0,
                logical: LogicalId(0),
                src_shard: ShardId(1),
                src_pid: PartitionId(9),
                dst_shard: ShardId(0),
                dst_pid: PartitionId(4),
                frozen: false,
            },
            JournalRecord::MigSnap {
                mid: 0,
                snap: PartitionId(11),
            },
            JournalRecord::MigState {
                mid: 0,
                state: MigrationState::CutOver,
            },
            JournalRecord::Remove {
                logical: LogicalId(3),
            },
        ]
    }

    #[test]
    fn roundtrip_and_replay() {
        let store: SharedUntrusted = Arc::new(MemStore::new());
        let (mut j, replayed) = Journal::open(Arc::clone(&store), crypto()).unwrap();
        assert!(replayed.is_empty());
        assert!(j.is_empty());
        for r in recs() {
            j.append(&r).unwrap();
        }
        assert_eq!(j.len(), 5);
        let (j2, replayed) = Journal::open(store, crypto()).unwrap();
        assert_eq!(replayed, recs());
        assert_eq!(j2.len(), 5);
    }

    #[test]
    fn torn_tail_is_tolerated_and_appendable() {
        let mem = Arc::new(MemStore::new());
        let store: SharedUntrusted = Arc::clone(&mem) as SharedUntrusted;
        let (mut j, _) = Journal::open(Arc::clone(&store), crypto()).unwrap();
        for r in recs() {
            j.append(&r).unwrap();
        }
        // Tear the last record: truncate mid-payload.
        let mut image = mem.image();
        image.truncate(image.len() - 3);
        let store2: SharedUntrusted = Arc::new(MemStore::from_bytes(image));
        let (mut j2, replayed) = Journal::open(Arc::clone(&store2), crypto()).unwrap();
        assert_eq!(replayed.len(), 4, "torn record dropped");
        assert_eq!(replayed, recs()[..4].to_vec());
        // The journal stays usable: the re-append lands over the torn tail.
        j2.append(&recs()[4]).unwrap();
        let (_, replayed) = Journal::open(store2, crypto()).unwrap();
        assert_eq!(replayed, recs());
    }

    #[test]
    fn bitflip_in_sealed_record_is_tamper() {
        let mem = Arc::new(MemStore::new());
        let store: SharedUntrusted = Arc::clone(&mem) as SharedUntrusted;
        let (mut j, _) = Journal::open(Arc::clone(&store), crypto()).unwrap();
        for r in recs() {
            j.append(&r).unwrap();
        }
        // Flip one bit in the *first* record's payload and fix up its CRC
        // so the framing still checks out: the HMAC must catch it.
        let mut image = mem.image();
        let len = u32::from_le_bytes(image[..4].try_into().unwrap()) as usize;
        image[8 + 9] ^= 0x01; // Somewhere in the record body.
        let crc = Crc32::checksum(&image[8..8 + len]);
        image[4..8].copy_from_slice(&crc.to_le_bytes());
        let store2: SharedUntrusted = Arc::new(MemStore::from_bytes(image));
        let err = Journal::open(store2, crypto())
            .err()
            .expect("tamper must fail open");
        assert!(
            matches!(&err, CoreError::TamperDetected(TamperKind::BadManifest(_))),
            "{err}"
        );
    }

    #[test]
    fn spliced_records_fail_sequence_check() {
        let mem = Arc::new(MemStore::new());
        let store: SharedUntrusted = Arc::clone(&mem) as SharedUntrusted;
        let (mut j, _) = Journal::open(Arc::clone(&store), crypto()).unwrap();
        for r in recs() {
            j.append(&r).unwrap();
        }
        // Delete the first record by shifting the rest down: every record
        // is individually authentic but the sequence numbers now start at
        // 1, which replay must reject.
        let image = mem.image();
        let len = u32::from_le_bytes(image[..4].try_into().unwrap()) as usize;
        let spliced = image[8 + len..].to_vec();
        let store2: SharedUntrusted = Arc::new(MemStore::from_bytes(spliced));
        let err = Journal::open(store2, crypto())
            .err()
            .expect("tamper must fail open");
        assert!(
            matches!(&err, CoreError::TamperDetected(TamperKind::BadManifest(_))),
            "{err}"
        );
    }
}
