//! The parallel crypto pipeline: fan per-chunk hash + seal work across a
//! scoped worker pool.
//!
//! The paper identifies cryptography as the dominant cost of the chunk
//! store (§9.3), and `seal_version` is location-independent: the sealed
//! bytes and the body hash of every `WriteChunk` in a commit set (and of
//! every dirty map chunk at one level of a checkpoint) can be computed
//! before any log offset is assigned. This module does exactly that —
//! workers race down a shared index over the job list — and the log
//! append then serializes only the already-ciphered buffers, preserving
//! append order and therefore the log hash chain.
//!
//! With one worker (`crypto_workers == 1`, or a single job) the batch is
//! sealed inline on the caller's thread: the sequential fallback.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use tdb_crypto::HashValue;

use crate::compress;
use crate::ids::ChunkId;
use crate::metrics::{self, modules};
use crate::params::PartitionCrypto;
use crate::version::{seal_version_flagged, sealed_version_len, VersionKind};

/// A chunk body hashed and sealed ahead of its log append.
pub(crate) struct Presealed {
    /// Hash of the *stored* body (the compressed envelope when
    /// `compressed`) under the partition's hash function.
    pub hash: HashValue,
    /// The sealed version (header + body ciphertext), ready to append.
    pub sealed: Vec<u8>,
    /// Logical (uncompressed) body length — what the descriptor's `size`
    /// records regardless of how the body is stored.
    pub body_len: u32,
    /// The body was stored as a compressed envelope.
    pub compressed: bool,
    /// Sealed bytes saved versus storing the body raw (0 when raw).
    pub saved: u64,
}

/// One seal job: `(id, partition crypto, plaintext body)`.
pub(crate) type SealJob<'a> = (ChunkId, Arc<PartitionCrypto>, &'a [u8]);

/// Resolves the configured worker count: `0` means auto (available
/// parallelism, capped at 8), anything else is taken literally.
pub(crate) fn resolve_workers(configured: usize) -> usize {
    match configured {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8),
        n => n,
    }
}

fn seal_one(system: &PartitionCrypto, job: &SealJob<'_>, compress: bool) -> Presealed {
    let (id, crypto, body) = job;
    // Compress before hashing, so the descriptor hash covers the stored
    // bytes and every reader verifies integrity before decompressing.
    // Only user-partition data bodies are eligible: map chunks are the
    // Merkle tree's proof preimages and leaders are recovery's decode
    // inputs, so both stay raw.
    let envelope = if compress && id.pos.is_data() && !id.partition.is_system() {
        compress::compress_body(body)
    } else {
        None
    };
    let (stored, compressed): (&[u8], bool) = match &envelope {
        Some(env) => (env.as_slice(), true),
        None => (body, false),
    };
    let hash = {
        let _t = metrics::span(modules::HASHING);
        crypto.hash(stored)
    };
    let sealed = {
        let _t = metrics::span(modules::ENCRYPTION);
        seal_version_flagged(system, crypto, VersionKind::Named, *id, stored, compressed)
    };
    let saved = if compressed {
        (sealed_version_len(system, crypto, body.len()) - sealed.len()) as u64
    } else {
        0
    };
    Presealed {
        hash,
        sealed,
        body_len: body.len() as u32,
        compressed,
        saved,
    }
}

/// Hashes and seals every job, in parallel when `workers >= 2` and the
/// batch is big enough to pay for thread spawns. Results come back in job
/// order. Panics in workers propagate to the caller (crossbeam scope).
pub(crate) fn seal_batch(
    system: &Arc<PartitionCrypto>,
    jobs: &[SealJob<'_>],
    workers: usize,
    compress: bool,
) -> Vec<Presealed> {
    let n = jobs.len();
    if workers < 2 || n < 2 {
        return jobs.iter().map(|j| seal_one(system, j, compress)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Presealed>>> = (0..n).map(|_| Mutex::new(None)).collect();
    crossbeam::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock() = Some(seal_one(system, &jobs[i], compress));
            });
        }
    })
    .expect("seal workers do not panic");
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("every slot sealed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CryptoParams;
    use tdb_crypto::{CipherKind, HashKind};

    fn crypto() -> Arc<PartitionCrypto> {
        Arc::new(
            CryptoParams::generate(CipherKind::Des, HashKind::Sha1)
                .runtime()
                .unwrap(),
        )
    }

    #[test]
    fn parallel_matches_sequential_hashes() {
        let system = crypto();
        let part = crypto();
        let bodies: Vec<Vec<u8>> = (0u8..16).map(|i| vec![i; 100 + usize::from(i)]).collect();
        let jobs: Vec<SealJob<'_>> = bodies
            .iter()
            .enumerate()
            .map(|(i, b)| {
                (
                    ChunkId::data(crate::ids::PartitionId(1), i as u64),
                    Arc::clone(&part),
                    b.as_slice(),
                )
            })
            .collect();
        let seq = seal_batch(&system, &jobs, 1, false);
        let par = seal_batch(&system, &jobs, 4, false);
        assert_eq!(seq.len(), par.len());
        for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
            // Hashes and lengths are deterministic; ciphertext differs
            // only by the random IVs.
            assert_eq!(s.hash, p.hash, "job {i}");
            assert_eq!(s.body_len, p.body_len, "job {i}");
            assert_eq!(s.sealed.len(), p.sealed.len(), "job {i}");
        }
    }

    #[test]
    fn compressed_parallel_matches_sequential() {
        let system = crypto();
        let part = crypto();
        // Highly repetitive bodies: all compress, and the deterministic
        // codec must give identical hashes on every worker count.
        let bodies: Vec<Vec<u8>> = (0u8..8).map(|i| vec![i; 600]).collect();
        let jobs: Vec<SealJob<'_>> = bodies
            .iter()
            .enumerate()
            .map(|(i, b)| {
                (
                    ChunkId::data(crate::ids::PartitionId(1), i as u64),
                    Arc::clone(&part),
                    b.as_slice(),
                )
            })
            .collect();
        let seq = seal_batch(&system, &jobs, 1, true);
        let par = seal_batch(&system, &jobs, 4, true);
        for (s, p) in seq.iter().zip(&par) {
            assert!(s.compressed && p.compressed);
            assert_eq!(s.hash, p.hash);
            assert_eq!(s.saved, p.saved);
            assert!(s.saved > 0);
            assert_eq!(s.body_len, 600);
        }
    }

    #[test]
    fn worker_resolution() {
        assert!(resolve_workers(0) >= 1);
        assert!(resolve_workers(0) <= 8);
        assert_eq!(resolve_workers(1), 1);
        assert_eq!(resolve_workers(3), 3);
    }
}
