//! Transparent chunk-body compression (ISSUE 9).
//!
//! The log-structured layout pays for every body byte three times — sealed
//! into the log, re-hashed at checkpoint, re-copied by the cleaner — so
//! shrinking bodies before sealing attacks log bytes, clean pressure, and
//! crypto cost at once. This module is a from-scratch LZ77 block codec in
//! the lz4 family (greedy hash-table match finder, token = literal-run +
//! back-reference), written like `crates/crypto`: no external crates, the
//! format fully specified here.
//!
//! # Block format
//!
//! A compressed *body envelope* is
//!
//! ```text
//! [u32 raw_len LE] [token stream]
//! ```
//!
//! and the token stream is a sequence of:
//!
//! ```text
//! token byte: high nibble = literal run length  (15 ⇒ extension bytes)
//!             low  nibble = match length − 4    (15 ⇒ extension bytes)
//! [extension bytes for literals: 255s, then a final byte < 255]
//! [literal bytes]
//! [u16 match offset LE, 1 ..= 65535]            (absent in the last token)
//! [extension bytes for the match length]
//! ```
//!
//! The stream ends after the literals of the last token, whose match
//! nibble must be zero. Offsets reach backwards into the output produced
//! so far; overlapping copies are the run-length idiom (offset 1 repeats
//! the previous byte).
//!
//! # Safety invariants
//!
//! The decoder never trusts the input: every literal copy and match copy
//! is bounds-checked against the *caller-supplied* expected length, so a
//! tampered stream can neither over-allocate (allocation is exactly
//! `expected_len`, which callers cap by the descriptor's logical size or
//! the log's maximum version length) nor write out of bounds, and any
//! malformation — truncation, bad offset, wrong final length, a declared
//! length disagreeing with the descriptor — is an `Err`, never a panic.
//!
//! In the chunk store, envelopes are hashed and sealed *as stored*: the
//! descriptor hash covers the compressed bytes, so integrity verification
//! always runs before the decompressor sees a single byte
//! (verify-then-decompress; see `docs/ARCHITECTURE.md`).

/// Bodies smaller than this are never worth a compression attempt: the
/// 4-byte envelope header plus cipher-block padding eats the savings.
pub const MIN_COMPRESS_BODY: usize = 64;

/// Smallest match the encoder emits (the classic lz4 minimum).
const MIN_MATCH: usize = 4;

/// Farthest back a match offset can reach (u16 on the wire).
const MAX_OFFSET: usize = 65535;

/// Match-finder hash table size (log2). 4096 u32 slots = 16 KiB of
/// scratch per compressed body.
const HASH_BITS: u32 = 12;

/// Why a compressed stream failed to decode. All variants are reachable
/// only through tampering or truncation — the encoder never produces them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressError {
    /// The stream ended mid-token, mid-literal-run, or mid-offset.
    Truncated,
    /// A match offset of zero or reaching before the output start.
    BadOffset,
    /// The output overran the expected decompressed length.
    TooLong,
    /// The stream ended with the wrong total output length.
    WrongLength,
    /// The envelope is too short to hold its own length header, or its
    /// declared length exceeds the caller's cap.
    BadEnvelope,
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Truncated => write!(f, "compressed stream truncated"),
            CompressError::BadOffset => write!(f, "compressed stream match offset out of range"),
            CompressError::TooLong => write!(f, "compressed stream longer than declared"),
            CompressError::WrongLength => write!(f, "compressed stream declared length mismatch"),
            CompressError::BadEnvelope => write!(f, "compressed body envelope malformed"),
        }
    }
}

fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Appends a literal-run / match token to `out`.
fn emit(out: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    let lit_len = literals.len();
    let match_code = m.map_or(0, |(_, len)| len - MIN_MATCH);
    let token = ((lit_len.min(15) as u8) << 4)
        | (if m.is_some() {
            match_code.min(15) as u8
        } else {
            0
        });
    out.push(token);
    if lit_len >= 15 {
        let mut rest = lit_len - 15;
        while rest >= 255 {
            out.push(255);
            rest -= 255;
        }
        out.push(rest as u8);
    }
    out.extend_from_slice(literals);
    if let Some((offset, _)) = m {
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        if match_code >= 15 {
            let mut rest = match_code - 15;
            while rest >= 255 {
                out.push(255);
                rest -= 255;
            }
            out.push(rest as u8);
        }
    }
}

/// Compresses `src` into a raw token stream (no envelope). Deterministic:
/// the same input always yields the same bytes.
pub fn compress_block(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 2 + 16);
    if src.len() < MIN_MATCH + 1 {
        emit(&mut out, src, None);
        return out;
    }
    let mut table = [u32::MAX; 1 << HASH_BITS];
    let mut anchor = 0usize;
    let mut i = 0usize;
    // Greedy single-probe search with lz4-style acceleration: every 32
    // consecutive misses widen the stride, so incompressible input is
    // skimmed rather than probed byte by byte.
    let mut misses = 0usize;
    let limit = src.len() - MIN_MATCH;
    while i <= limit {
        let h = hash4(&src[i..]);
        let candidate = table[h] as usize;
        table[h] = i as u32;
        let ok = candidate != u32::MAX as usize
            && i - candidate <= MAX_OFFSET
            && src[candidate..candidate + MIN_MATCH] == src[i..i + MIN_MATCH];
        if !ok {
            misses += 1;
            i += 1 + (misses >> 5);
            continue;
        }
        misses = 0;
        let mut len = MIN_MATCH;
        while i + len < src.len() && src[candidate + len] == src[i + len] {
            len += 1;
        }
        emit(&mut out, &src[anchor..i], Some((i - candidate, len)));
        // Seed the table inside the span just covered so runs chain.
        let next = i + len;
        if next <= limit {
            table[hash4(&src[next - 1..])] = (next - 1) as u32;
        }
        i = next;
        anchor = next;
    }
    emit(&mut out, &src[anchor..], None);
    out
}

/// Decompresses a raw token stream into exactly `expected_len` bytes.
///
/// # Errors
///
/// Any malformation yields a [`CompressError`]; the output allocation
/// never exceeds `expected_len`.
pub fn decompress_block(src: &[u8], expected_len: usize) -> Result<Vec<u8>, CompressError> {
    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    let mut i = 0usize;
    loop {
        let token = *src.get(i).ok_or(CompressError::Truncated)?;
        i += 1;
        let mut lit_len = usize::from(token >> 4);
        if lit_len == 15 {
            loop {
                let b = *src.get(i).ok_or(CompressError::Truncated)?;
                i += 1;
                lit_len += usize::from(b);
                if b < 255 {
                    break;
                }
            }
        }
        let lit_end = i.checked_add(lit_len).ok_or(CompressError::Truncated)?;
        if lit_end > src.len() {
            return Err(CompressError::Truncated);
        }
        if out.len() + lit_len > expected_len {
            return Err(CompressError::TooLong);
        }
        out.extend_from_slice(&src[i..lit_end]);
        i = lit_end;
        if i == src.len() {
            // Last token: literals only; a nonzero match nibble means the
            // stream was cut mid-sequence.
            if token & 0x0F != 0 {
                return Err(CompressError::Truncated);
            }
            if out.len() != expected_len {
                return Err(CompressError::WrongLength);
            }
            return Ok(out);
        }
        if i + 2 > src.len() {
            return Err(CompressError::Truncated);
        }
        let offset = usize::from(u16::from_le_bytes([src[i], src[i + 1]]));
        i += 2;
        if offset == 0 || offset > out.len() {
            return Err(CompressError::BadOffset);
        }
        let mut match_len = MIN_MATCH + usize::from(token & 0x0F);
        if token & 0x0F == 15 {
            loop {
                let b = *src.get(i).ok_or(CompressError::Truncated)?;
                i += 1;
                match_len += usize::from(b);
                if b < 255 {
                    break;
                }
            }
        }
        if out.len() + match_len > expected_len {
            return Err(CompressError::TooLong);
        }
        // Byte-by-byte so overlapping copies (offset < match_len) replicate
        // the run, exactly as the encoder meant.
        let start = out.len() - offset;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }
}

/// Compresses `body` into a `[u32 raw_len][stream]` envelope, or `None`
/// when the body is too small or the savings are below the store-raw
/// threshold — in that case the caller stores the body verbatim, with no
/// flag and no overhead, byte-identical to a store with the knob off.
///
/// The threshold demands at least `len/16 + 8` bytes saved: anything less
/// vanishes into cipher-block padding and is not worth a decompression on
/// every future read.
pub fn compress_body(body: &[u8]) -> Option<Vec<u8>> {
    if body.len() < MIN_COMPRESS_BODY || body.len() > u32::MAX as usize {
        return None;
    }
    let stream = compress_block(body);
    let envelope_len = 4 + stream.len();
    if envelope_len + body.len() / 16 + 8 > body.len() {
        return None;
    }
    let mut envelope = Vec::with_capacity(envelope_len);
    envelope.extend_from_slice(&(body.len() as u32).to_le_bytes());
    envelope.extend_from_slice(&stream);
    Some(envelope)
}

/// The decompressed length an envelope declares, without decompressing.
/// Recovery uses this to reconstruct a descriptor's logical size from the
/// stored bytes alone. `None` if the envelope cannot hold its own header.
pub fn declared_len(envelope: &[u8]) -> Option<usize> {
    let head = envelope.get(0..4)?;
    Some(u32::from_le_bytes(head.try_into().expect("4 bytes")) as usize)
}

/// Decompresses an envelope into exactly `expected_len` bytes (the
/// descriptor's logical size). The declared length must agree with
/// `expected_len`, so a tampered header can never drive the allocation.
///
/// # Errors
///
/// [`CompressError`] on any malformation.
pub fn decompress_body(envelope: &[u8], expected_len: usize) -> Result<Vec<u8>, CompressError> {
    let declared = declared_len(envelope).ok_or(CompressError::BadEnvelope)?;
    if declared != expected_len {
        return Err(CompressError::BadEnvelope);
    }
    decompress_block(&envelope[4..], expected_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(src: &[u8]) {
        let stream = compress_block(src);
        let back = decompress_block(&stream, src.len()).expect("decompress");
        assert_eq!(back, src);
    }

    #[test]
    fn round_trips_basic_shapes() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abcd");
        round_trip(&[0u8; 10_000]);
        round_trip(b"the quick brown fox jumps over the lazy dog, the quick brown fox");
        let mut long_run = vec![7u8; 5000];
        long_run.extend_from_slice(b"tail");
        round_trip(&long_run);
    }

    #[test]
    fn round_trips_pseudo_random() {
        // Incompressible input must still round-trip (as literals).
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut buf = Vec::new();
        for _ in 0..4096 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            buf.push(state as u8);
        }
        round_trip(&buf);
    }

    #[test]
    fn compresses_repetitive_bodies_well() {
        let body: Vec<u8> = b"field=value;".iter().copied().cycle().take(4096).collect();
        let env = compress_body(&body).expect("worth compressing");
        assert!(env.len() < body.len() / 4, "envelope {} bytes", env.len());
        assert_eq!(decompress_body(&env, body.len()).unwrap(), body);
    }

    #[test]
    fn stores_raw_when_not_worth_it() {
        // Random bytes: no matches, envelope would be bigger.
        let mut state = 1u64;
        let body: Vec<u8> = (0..1024)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        assert!(compress_body(&body).is_none());
        // Too small to bother, however compressible.
        assert!(compress_body(&[0u8; MIN_COMPRESS_BODY - 1]).is_none());
    }

    #[test]
    fn tampered_declared_length_is_rejected_without_allocation() {
        let body = vec![9u8; 1024];
        let mut env = compress_body(&body).expect("compressible");
        // Declare an absurd length: the caller's expected_len disagrees.
        env[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decompress_body(&env, body.len()),
            Err(CompressError::BadEnvelope)
        );
        // And even decoding the raw stream against a huge cap cannot
        // overshoot: output is checked against the expectation, which the
        // stream no longer matches.
        assert_eq!(
            decompress_block(&env[4..], 2048),
            Err(CompressError::WrongLength)
        );
    }

    #[test]
    fn truncated_and_garbage_streams_error_not_panic() {
        let body: Vec<u8> = b"abcabcabcabc".iter().copied().cycle().take(600).collect();
        let env = compress_body(&body).expect("compressible");
        for cut in 0..env.len() {
            let _ = decompress_body(&env[..cut], body.len());
        }
        // Every single-byte flip either still decodes to the wrong bytes
        // or errors; none may panic or over-produce.
        for i in 0..env.len() {
            let mut bad = env.clone();
            bad[i] ^= 0xFF;
            if let Ok(out) = decompress_body(&bad, body.len()) {
                assert_eq!(out.len(), body.len());
            }
        }
        // Pure garbage.
        let garbage: Vec<u8> = (0..=255u8).cycle().take(700).collect();
        let _ = decompress_block(&garbage, 512);
    }

    #[test]
    fn zero_offset_rejected() {
        // token: 0 literals, match nibble 0 (len 4), offset 0.
        let stream = [0x00u8, 0, 0, 0x00];
        assert_eq!(decompress_block(&stream, 4), Err(CompressError::BadOffset));
    }
}
