#![warn(missing_docs)]

//! # tdb-core — the trusted chunk store and backup store
//!
//! This crate is the heart of the TDB reproduction (Maheshwari, Vingralek,
//! Shapiro: *How to Build a Trusted Database System on Untrusted Storage*,
//! OSDI 2000): a log-structured store of encrypted, hash-validated chunks
//! that extends a few bytes of trusted storage into a scalable trusted
//! database substrate.
//!
//! ## Architecture (paper §3–§6)
//!
//! - [`store::ChunkStore`] manages named chunks grouped into partitions,
//!   each with its own cipher/hash/key ([`params::CryptoParams`]). Chunks
//!   live in a segmented log ([`log`]); their current versions are located
//!   *and validated* through the chunk map — a tree of map chunks whose
//!   descriptors ([`descriptor`]) carry both location and expected hash,
//!   i.e. a Merkle tree embedded in the location map.
//! - Updates buffer in the map cache ([`cache`]) and are consolidated by
//!   checkpoints; crashes roll forward through the residual log, validated
//!   either by a chained hash in the tamper-resistant store or by signed,
//!   counted commit chunks ([`store::ValidationMode`]).
//! - The log cleaner reclaims obsolete versions, respecting partition
//!   copies (snapshots).
//! - The backup store ([`backup::BackupStore`]) streams full and
//!   incremental partition backups to an archival store and restores them
//!   under chain, completeness, and policy constraints.
//! - [`metrics`] reproduces Figure 12's per-module accounting.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use tdb_core::store::{ChunkStore, ChunkStoreConfig, CommitOp, TrustedBackend};
//! use tdb_core::params::CryptoParams;
//! use tdb_crypto::{CipherKind, HashKind, SecretKey};
//! use tdb_storage::{CounterOverTrusted, MemStore, MemTrustedStore};
//!
//! let untrusted = Arc::new(MemStore::new());
//! let counter = Arc::new(CounterOverTrusted::new(Arc::new(MemTrustedStore::new(16))));
//! let store = ChunkStore::create(
//!     untrusted,
//!     TrustedBackend::Counter(counter),
//!     SecretKey::random(24),
//!     ChunkStoreConfig::default(),
//! ).unwrap();
//!
//! // Create a partition and write a chunk atomically.
//! let p = store.allocate_partition().unwrap();
//! store.commit(vec![CommitOp::CreatePartition {
//!     id: p,
//!     params: CryptoParams::generate(CipherKind::Des, HashKind::Sha1),
//! }]).unwrap();
//! let c = store.allocate_chunk(p).unwrap();
//! store.commit(vec![CommitOp::WriteChunk { id: c, bytes: b"pay-per-use state".to_vec() }]).unwrap();
//! assert_eq!(store.read(c).unwrap(), b"pay-per-use state");
//! ```

pub mod backup;
mod batcher;
pub mod cache;
pub mod codec;
pub mod compress;
pub mod descriptor;
mod engine;
pub mod errors;
pub mod ids;
pub mod leader;
pub mod log;
mod maintenance;
pub mod metrics;
pub mod params;
mod pipeline;
pub mod proof;
mod readpath;
mod recovery;
pub mod shard;
pub mod store;
pub mod version;

pub use backup::{ApproveAll, BackupSetInfo, BackupSpec, BackupStore, RestorePolicy};
pub use errors::{CoreError, FaultClass, Result, TamperKind};
pub use ids::{ChunkId, PartitionId, Position};
pub use params::CryptoParams;
pub use proof::{verify_read_proof, ProofLevel, ReadProof};
pub use shard::migration::{MigrationOutcome, MigrationState, MigrationStep};
pub use shard::{LogicalId, ShardId, ShardManager, ShardOp, ShardSpec};
pub use store::{
    ChunkStore, ChunkStoreConfig, ChunkStoreStats, CommitOp, DiffChange, DiffEntry, StoreHealth,
    TrustedBackend, ValidationMode,
};
