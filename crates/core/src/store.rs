//! The chunk store (§4, §5): TDB's trusted storage engine.
//!
//! The chunk store keeps a set of named, variable-sized chunks in a
//! log-structured untrusted store, validated through a Merkle tree embedded
//! in the chunk map and rooted — via the residual-log hash or signed commit
//! counts — in the tamper-resistant store. See the paper §4.2 for the
//! implementation overview this module follows.
//!
//! Concurrency: "serializability of operations is provided through mutual
//! exclusion, which does not overlap I/O and computation, but is simple and
//! acceptable when concurrency is low" (§4.2) — a single mutex around the
//! whole engine.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use tdb_crypto::{HashValue, SecretKey};
use tdb_storage::{MonotonicCounter, SharedUntrusted, TrustedStore};

use crate::cache::MapCache;
use crate::codec::{Dec, Enc};
use crate::descriptor::{ChunkStatus, Descriptor, MapChunk};
use crate::errors::{CoreError, FaultClass, Result, TamperKind};
use crate::ids::{capacity, ChunkId, PartitionId, Position};
use crate::leader::{PartitionLeader, SystemLeader};
use crate::log::{LogHashes, SegmentedLog, Superblock};
use crate::metrics::{self, counters, modules};
use crate::params::{CryptoParams, PartitionCrypto};
use crate::pipeline::{self, Presealed, SealJob};
use crate::readpath::ReadPath;
use crate::version::{
    parse_version, seal_version, CommitRecord, DeallocRecord, RawVersion, VersionHeader,
    VersionKind,
};

/// Conservative byte budget reserved for a commit chunk, so finalizing a
/// commit set never forces a segment switch after the set hash is taken.
pub(crate) const COMMIT_CHUNK_ROOM: u32 = 256;

/// How the tamper-resistant store is used (§4.8.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationMode {
    /// Direct hash validation (§4.8.2.1): the tamper-resistant store holds
    /// a chained hash of the residual log plus the log-tail location, and
    /// is updated on every commit.
    DirectHash,
    /// Counter-based validation (§4.8.2.2): signed, counted commit chunks
    /// in the log; the tamper-resistant store holds only a monotonic
    /// counter, flushed lazily.
    Counter {
        /// Allowed lag of the trusted counter behind the log (the paper ran
        /// with Δut = 5, flushing the counter once every 5 commits).
        delta_ut: u64,
        /// Allowed lead of the trusted counter over the log (for lazily
        /// flushed untrusted stores; the paper ran with Δtu = 0).
        delta_tu: u64,
    },
}

/// The tamper-resistant store backend matching the [`ValidationMode`].
#[derive(Clone)]
pub enum TrustedBackend {
    /// A small writable register (for [`ValidationMode::DirectHash`]).
    Register(Arc<dyn TrustedStore>),
    /// A non-decrementable counter (for [`ValidationMode::Counter`]).
    Counter(Arc<dyn MonotonicCounter>),
}

/// Chunk store configuration.
#[derive(Clone)]
pub struct ChunkStoreConfig {
    /// Descriptors per map chunk (the paper's experiments use 64, §9.2.2).
    pub fanout: u32,
    /// Log segment size in bytes (§4.9.4 suggests ~100 KB for disks).
    pub segment_size: u32,
    /// Soft cap on cached map chunks.
    pub map_cache_capacity: usize,
    /// Dirty map chunks that trigger an automatic checkpoint (§4.7).
    pub checkpoint_threshold: usize,
    /// Validation protocol.
    pub validation: ValidationMode,
    /// When true the cleaner decrypts, revalidates, and re-hashes the
    /// chunks it moves (the variant the paper implemented, §4.9.5).
    pub cleaner_revalidates: bool,
    /// Hard cap on segments (0 = unbounded).
    pub max_segments: u32,
    /// System-partition cipher and hash (the paper fixes 3DES + SHA-1).
    pub system_cipher: tdb_crypto::CipherKind,
    /// System-partition hash.
    pub system_hash: tdb_crypto::HashKind,
    /// Shards of the concurrent read path (rounded up to a power of two).
    /// `0` disables the sharded fast path entirely, restoring the paper's
    /// single-lock read model (the benchmark baseline).
    pub read_shards: usize,
    /// Total validated plaintext bodies cached across all read shards.
    pub read_cache_chunks: usize,
    /// Worker threads for the parallel crypto pipeline (commit and
    /// checkpoint hash+seal fan-out). `0` means auto (available
    /// parallelism, capped at 8); `1` forces the sequential fallback.
    pub crypto_workers: usize,
    /// Group commit: concurrent committers are batched by a leader thread
    /// that preseals every member, coalesces their log appends into
    /// segment-sized writes, and issues one flush for the whole batch.
    /// `false` restores the paper's one-flush-per-commit write path
    /// bit-for-bit on the log.
    pub group_commit: bool,
    /// Most commits a group-commit leader drains into one batch. Values
    /// `<= 1` disable batching just like `group_commit = false`.
    pub commit_batch_max: usize,
}

impl Default for ChunkStoreConfig {
    fn default() -> Self {
        ChunkStoreConfig {
            fanout: 64,
            segment_size: 128 * 1024,
            map_cache_capacity: 1024,
            checkpoint_threshold: 128,
            validation: ValidationMode::Counter {
                delta_ut: 5,
                delta_tu: 0,
            },
            cleaner_revalidates: true,
            max_segments: 0,
            system_cipher: tdb_crypto::CipherKind::TripleDes,
            system_hash: tdb_crypto::HashKind::Sha1,
            read_shards: 16,
            read_cache_chunks: 1024,
            crypto_workers: 0,
            group_commit: true,
            commit_batch_max: 64,
        }
    }
}

/// One operation inside an atomic commit (§4.1, §5.1).
#[derive(Debug)]
pub enum CommitOp {
    /// Sets the state of an allocated chunk.
    WriteChunk {
        /// Target chunk (allocated via [`ChunkStore::allocate_chunk`]).
        id: ChunkId,
        /// New state, of any size.
        bytes: Vec<u8>,
    },
    /// Deallocates a chunk.
    DeallocChunk {
        /// Target chunk.
        id: ChunkId,
    },
    /// Writes an empty partition with the given parameters
    /// (`Write(partitionId, secretKey, cipher, hashFunction)` of §5.1).
    CreatePartition {
        /// Target id (allocated via [`ChunkStore::allocate_partition`]).
        id: PartitionId,
        /// Cryptographic parameters (cipher, hash, key).
        params: CryptoParams,
    },
    /// Copies the current state of `src` to `dst`
    /// (`Write(partitionId, sourcePId)` of §5.1). Cheap: copy-on-write.
    CopyPartition {
        /// Target id (allocated, unwritten).
        dst: PartitionId,
        /// Source partition.
        src: PartitionId,
    },
    /// Deallocates a partition, all of its copies, and all their chunks.
    DeallocPartition {
        /// Target partition.
        id: PartitionId,
    },
}

/// How a chunk position changed between two partitions (§5.1 `Diff`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffChange {
    /// Written in `new` but not in `old`.
    Created,
    /// Written in both with different state.
    Updated,
    /// Written in `old` but not in `new`.
    Deallocated,
}

/// One entry of a partition diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffEntry {
    /// Data-chunk position that changed.
    pub pos: Position,
    /// Kind of change.
    pub change: DiffChange,
}

/// Aggregate counters exposed for benchmarks and experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChunkStoreStats {
    /// Commits performed (including checkpoints and cleaner commits).
    pub commits: u64,
    /// Checkpoints performed.
    pub checkpoints: u64,
    /// Segments reclaimed by the cleaner.
    pub segments_cleaned: u64,
    /// Versions relocated by the cleaner.
    pub chunks_relocated: u64,
    /// Bytes appended to the log.
    pub bytes_appended: u64,
    /// Times this store entered read-only degraded mode.
    pub degraded_entries: u64,
    /// Times this store hard-poisoned on an integrity violation.
    pub poison_events: u64,
    /// [`ChunkStore::try_heal`] attempts.
    pub heal_attempts: u64,
    /// Successful heals (degraded back to live).
    pub heals: u64,
    /// Reads served by the sharded fast path without the engine lock.
    pub read_fast_hits: u64,
    /// Reads served by the engine-locked fallback path.
    pub read_fallbacks: u64,
    /// Fast reads that found their shard write-locked and had to block.
    pub read_shard_contention: u64,
    /// Commit/checkpoint batches whose hash+seal work ran in parallel.
    pub parallel_crypto_batches: u64,
    /// Chunks sealed by those parallel batches.
    pub parallel_crypto_chunks: u64,
    /// Group-commit batches executed by a leader thread.
    pub commit_batches: u64,
    /// Commits that rode in a group-commit batch (of any size).
    pub batched_commits: u64,
    /// Histogram of group-commit batch sizes. Bucket `i` counts batches of
    /// size in `(2^(i-1), 2^i]`: 1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, >64.
    pub batch_size_hist: [u64; 8],
    /// Device flushes issued by the log (commit, checkpoint, and batch
    /// barriers). With batching, many commits share one flush.
    pub flushes: u64,
    /// Bytes written through coalesced (buffered) log runs.
    pub log_coalesced_bytes: u64,
    /// Device writes saved by coalescing: buffered appends minus the
    /// contiguous runs actually written.
    pub log_writes_coalesced: u64,
    /// Map-tree levels a checkpoint skipped because nothing in them was
    /// dirty (incremental checkpointing).
    pub dirty_map_levels_skipped: u64,
}

/// Externally visible health of the engine.
///
/// Failure handling follows the error taxonomy
/// ([`crate::errors::FaultClass`]): storage failures during a mutation roll
/// the in-memory state back to the pre-mutation snapshot and, if any bytes
/// had already reached the log, drop to `Degraded`; only integrity
/// violations (`TamperDetected` on a mutation path) hard-poison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreHealth {
    /// Fully operational.
    Live,
    /// Read-only: a storage failure interrupted a mutation after bytes had
    /// reached the log. Validated reads are still served; mutations are
    /// rejected until [`ChunkStore::try_heal`] succeeds or the store is
    /// reopened.
    Degraded {
        /// Human-readable cause.
        reason: String,
    },
    /// Failed closed: an integrity violation was detected during a
    /// mutation. Every operation is rejected; the store must be reopened,
    /// which revalidates everything against the tamper-resistant store.
    Poisoned {
        /// Human-readable cause.
        reason: String,
    },
}

impl StoreHealth {
    /// True when fully operational.
    pub fn is_live(&self) -> bool {
        matches!(self, StoreHealth::Live)
    }

    /// True when serving reads only.
    pub fn is_degraded(&self) -> bool {
        matches!(self, StoreHealth::Degraded { .. })
    }

    /// True when failed closed.
    pub fn is_poisoned(&self) -> bool {
        matches!(self, StoreHealth::Poisoned { .. })
    }
}

/// Cached per-partition state: decoded leader, runtime crypto, and session
/// allocation state.
#[derive(Clone)]
pub(crate) struct LeaderEntry {
    pub leader: PartitionLeader,
    pub crypto: Arc<PartitionCrypto>,
    /// Session-only allocation high-water (≥ `leader.next_rank`).
    pub alloc_next: u64,
    /// Session view of the free list (ranks handed out are removed here
    /// but stay in `leader.free_ranks` until the write commits).
    pub alloc_free: Vec<u64>,
    /// Session-allocated ranks not yet written. Purely in-memory: "id
    /// allocation is not persistent until the chunk is written" (§4.4), so
    /// allocation touches no map state at all.
    pub reserved: std::collections::HashSet<u64>,
    /// True when committed leader state changed since its last version was
    /// written; checkpoints persist dirty leaders.
    pub dirty: bool,
}

impl LeaderEntry {
    pub(crate) fn new(leader: PartitionLeader) -> Result<LeaderEntry> {
        let crypto = Arc::new(leader.params.runtime()?);
        let alloc_next = leader.next_rank;
        let alloc_free = leader.free_ranks.clone();
        Ok(LeaderEntry {
            leader,
            crypto,
            alloc_next,
            alloc_free,
            reserved: std::collections::HashSet::new(),
            dirty: false,
        })
    }
}

/// The engine state behind the mutex.
pub(crate) struct Inner {
    pub config: ChunkStoreConfig,
    pub system: Arc<PartitionCrypto>,
    pub trusted: TrustedBackend,
    pub log: SegmentedLog,
    pub hashes: LogHashes,
    pub sys_leader: SystemLeader,
    /// Session allocation state for the system partition (partition ids).
    pub sys_alloc_next: u64,
    pub sys_alloc_free: Vec<u64>,
    /// Session-allocated (unwritten) partition-leader ranks.
    pub sys_reserved: std::collections::HashSet<u64>,
    pub map_cache: MapCache,
    pub leaders: HashMap<PartitionId, LeaderEntry>,
    /// Last commit count appended to the log (counter mode).
    pub commit_count: u64,
    /// Last count pushed to the trusted counter.
    pub trusted_count: u64,
    /// Location and on-log length of the current system leader version
    /// (for utilization accounting across checkpoints).
    pub leader_version: Option<(u64, u32)>,
    pub superblock: Superblock,
    pub stats: ChunkStoreStats,
    /// Live / degraded / poisoned state machine (see [`StoreHealth`]).
    pub health: StoreHealth,
    /// True once the current mutation has appended bytes to the log;
    /// distinguishes "failed before any durable append" (roll back and stay
    /// live) from "failed after a partial append" (degrade).
    pub wrote_log: bool,
}

/// Everything needed to roll the in-memory engine back to the instant a
/// mutation began. Device bytes written by the failed mutation lie past the
/// restored log tail, where the next append overwrites them and recovery
/// treats them as a torn tail.
pub(crate) struct EngineSnapshot {
    map_cache: MapCache,
    leaders: HashMap<PartitionId, LeaderEntry>,
    sys_leader: SystemLeader,
    sys_alloc_next: u64,
    sys_alloc_free: Vec<u64>,
    sys_reserved: std::collections::HashSet<u64>,
    chain: HashValue,
    tail: crate::log::TailState,
    commit_count: u64,
    trusted_count: u64,
    leader_version: Option<(u64, u32)>,
    superblock: Superblock,
    stats: ChunkStoreStats,
}

/// The trusted chunk store.
///
/// Mutations are serialized behind one lock, per the paper's simple
/// mutual-exclusion concurrency model. Reads additionally take a sharded
/// fast path ([`crate::readpath`]) that serves validated chunks without
/// the engine lock; any miss or anomaly falls back to the locked path.
pub struct ChunkStore {
    pub(crate) inner: Mutex<Inner>,
    pub(crate) reads: ReadPath,
    /// Group-commit coordinator; `None` runs the paper's one-commit-one-
    /// flush path (`group_commit = false` or `commit_batch_max <= 1`).
    pub(crate) batcher: Option<crate::batcher::CommitBatcher>,
}

impl std::fmt::Debug for ChunkStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkStore").finish_non_exhaustive()
    }
}

impl ChunkStore {
    /// Formats a fresh store on `store` and returns it ready for use.
    ///
    /// # Errors
    ///
    /// Fails on storage or key-length errors.
    pub fn create(
        store: SharedUntrusted,
        trusted: TrustedBackend,
        secret: SecretKey,
        config: ChunkStoreConfig,
    ) -> Result<ChunkStore> {
        let sys_params = CryptoParams {
            cipher: config.system_cipher,
            hash: config.system_hash,
            key: secret,
        };
        let system = Arc::new(sys_params.runtime()?);
        let mut sys_leader = SystemLeader::new(sys_params, config.segment_size);
        sys_leader.log.num_segments = 1;
        sys_leader.log.utilization.push(0);
        let log = SegmentedLog::new(
            Arc::clone(&store),
            &system,
            config.segment_size,
            config.max_segments,
            0,
            0,
        );
        let hashes = LogHashes::new(config.system_hash);
        // Continue from any pre-existing trusted counter so reformatting a
        // platform with a used (non-decrementable) counter still works.
        let base_count = match (&config.validation, &trusted) {
            (ValidationMode::Counter { .. }, TrustedBackend::Counter(c)) => c.get()?,
            _ => 0,
        };
        let mut inner = Inner {
            map_cache: MapCache::new(config.map_cache_capacity),
            config,
            system,
            trusted,
            log,
            hashes,
            sys_alloc_next: sys_leader.map.next_rank,
            sys_alloc_free: sys_leader.map.free_ranks.clone(),
            sys_reserved: std::collections::HashSet::new(),
            sys_leader,
            leaders: HashMap::new(),
            commit_count: base_count,
            trusted_count: base_count,
            leader_version: None,
            superblock: Superblock {
                epoch: 0,
                current_leader: 0,
                prev_leader: 0,
            },
            stats: ChunkStoreStats::default(),
            health: StoreHealth::Live,
            wrote_log: false,
        };
        // The initial checkpoint materializes the empty database: leader,
        // commit chunk / trusted hash, and superblock.
        inner.checkpoint()?;
        Ok(ChunkStore::assemble(inner))
    }

    /// Wraps a fully built engine with its concurrent read path.
    fn assemble(inner: Inner) -> ChunkStore {
        let reads = ReadPath::new(
            Arc::clone(inner.log.store()),
            Arc::clone(&inner.system),
            inner.config.read_shards,
            inner.config.read_cache_chunks,
        );
        reads.set_health(&inner.health);
        let batcher = if inner.config.group_commit && inner.config.commit_batch_max > 1 {
            Some(crate::batcher::CommitBatcher::new(
                inner.config.commit_batch_max,
            ))
        } else {
            None
        };
        ChunkStore {
            inner: Mutex::new(inner),
            reads,
            batcher,
        }
    }

    /// Opens an existing store, running crash recovery (§4.8) and
    /// validating the residual log against the tamper-resistant store.
    ///
    /// # Errors
    ///
    /// Returns a tamper-detection error when validation fails, or storage
    /// errors.
    pub fn open(
        store: SharedUntrusted,
        trusted: TrustedBackend,
        secret: SecretKey,
        config: ChunkStoreConfig,
    ) -> Result<ChunkStore> {
        let inner = crate::recovery::recover(store, trusted, secret, config)?;
        Ok(ChunkStore::assemble(inner))
    }

    /// Returns an unallocated partition id (§5.1 `Allocate`). The
    /// allocation is not persistent until the partition is written.
    ///
    /// # Errors
    ///
    /// Fails if the store is not live (degraded or poisoned).
    pub fn allocate_partition(&self) -> Result<PartitionId> {
        let _t = metrics::span(modules::CHUNK_STORE);
        let mut inner = self.inner.lock();
        inner.check_writable()?;
        inner.allocate_partition()
    }

    /// Returns an unallocated chunk id in `partition` (§4.1 `Allocate`).
    ///
    /// # Errors
    ///
    /// Fails if the partition does not exist.
    pub fn allocate_chunk(&self, partition: PartitionId) -> Result<ChunkId> {
        let _t = metrics::span(modules::CHUNK_STORE);
        let mut inner = self.inner.lock();
        inner.check_writable()?;
        inner.allocate_chunk(partition)
    }

    /// Reads the last written state of a chunk, locating and validating it
    /// through the chunk map (§4.5).
    ///
    /// # Errors
    ///
    /// Signals if the chunk is not written, and tamper detection if
    /// validation fails.
    pub fn read(&self, id: ChunkId) -> Result<Vec<u8>> {
        let _t = metrics::span(modules::CHUNK_STORE);
        // Fast path: shard caches only, no engine lock. Any miss or
        // anomaly (including benign races with the cleaner) falls through
        // to the authoritative locked path below.
        if let Some(body) = self.reads.try_fast(id) {
            return Ok(body);
        }
        let mut inner = self.inner.lock();
        inner.check_readable()?;
        let body = inner.read_chunk(id)?;
        self.reads.note_fallback();
        // Publish for future fast reads while the engine lock is still
        // held, so the published descriptor is current at this instant.
        if let (Ok(desc), Ok(crypto)) = (inner.get_descriptor(id), inner.crypto_for(id.partition)) {
            self.reads.publish(id, desc, &crypto, Some(&body));
        }
        Ok(body)
    }

    /// Atomically applies a group of operations (§4.1 `Commit`).
    ///
    /// # Errors
    ///
    /// Validation errors leave the store unchanged and live. A storage
    /// failure mid-commit rolls the in-memory state back to the pre-commit
    /// snapshot; if any bytes had already reached the log the store drops
    /// to read-only degraded mode (see [`ChunkStore::try_heal`]), otherwise
    /// it stays live. Only integrity violations poison the store.
    pub fn commit(&self, ops: Vec<CommitOp>) -> Result<()> {
        let _t = metrics::span(modules::CHUNK_STORE);
        if self.batcher.is_some() {
            // Group commit: enqueue and let a leader thread batch this
            // commit with its contemporaries (see `crate::batcher`).
            return self.commit_batched(ops);
        }
        // Collect the chunk ids this commit can change *before* the ops
        // are consumed; partition deallocations can invalidate arbitrary
        // shard entries (ids may be reused), so they clear everything.
        let mut touched: Vec<ChunkId> = Vec::new();
        let mut clear_all = false;
        for op in &ops {
            match op {
                CommitOp::WriteChunk { id, .. } | CommitOp::DeallocChunk { id } => {
                    touched.push(*id);
                }
                CommitOp::DeallocPartition { .. } => clear_all = true,
                CommitOp::CreatePartition { .. } | CommitOp::CopyPartition { .. } => {}
            }
        }
        let mut inner = self.inner.lock();
        inner.check_writable()?;
        let result = inner.commit(ops);
        // Scrub shard state while still holding the engine lock, on every
        // outcome: a commit can be durably applied even when the call
        // returns an error (e.g. the follow-on checkpoint failed), so the
        // only safe rule is "touched ids never survive a commit attempt".
        if clear_all {
            self.reads.clear_all();
        } else {
            for id in &touched {
                self.reads.invalidate(*id);
            }
        }
        if result.is_ok() {
            for id in &touched {
                if let (Ok(desc), Ok(crypto)) =
                    (inner.get_descriptor(*id), inner.crypto_for(id.partition))
                {
                    self.reads.publish(*id, desc, &crypto, None);
                }
            }
        }
        self.reads.set_health(&inner.health);
        result
    }

    /// Forces a checkpoint (§4.7), consolidating buffered chunk-map updates.
    ///
    /// # Errors
    ///
    /// A storage failure rolls back and degrades or stays live exactly as
    /// in [`ChunkStore::commit`]; integrity violations poison.
    pub fn checkpoint(&self) -> Result<()> {
        let _t = metrics::span(modules::CHUNK_STORE);
        let mut inner = self.inner.lock();
        inner.check_writable()?;
        // A checkpoint rewrites map chunks and leaders but never changes a
        // data chunk's state, so published shard entries stay valid.
        let result = inner.checkpoint();
        self.reads.set_health(&inner.health);
        result
    }

    /// Runs the log cleaner over up to `max_segments` segments (§4.9.5),
    /// returning how many were reclaimed.
    ///
    /// # Errors
    ///
    /// A storage failure rolls back and degrades or stays live exactly as
    /// in [`ChunkStore::commit`]; revalidation failures signal tamper and
    /// poison the store.
    pub fn clean(&self, max_segments: usize) -> Result<usize> {
        let _t = metrics::span(modules::CHUNK_STORE);
        let mut inner = self.inner.lock();
        inner.check_writable()?;
        let result = inner.clean(max_segments);
        // Cleaning may relocate versions and reuse reclaimed segments, so
        // published descriptors (which carry log locations) are stale.
        self.reads.clear_shards();
        self.reads.set_health(&inner.health);
        result
    }

    /// Chunk positions whose state differs between two partitions (§5.1
    /// `Diff`). Commonly both are snapshots of the same partition.
    ///
    /// # Errors
    ///
    /// Fails if either partition does not exist.
    pub fn diff(&self, old: PartitionId, new: PartitionId) -> Result<Vec<DiffEntry>> {
        let _t = metrics::span(modules::CHUNK_STORE);
        let mut inner = self.inner.lock();
        inner.check_readable()?;
        inner.diff(old, new)
    }

    /// The written data-chunk ranks of a partition, ascending (used by full
    /// backups and integrity sweeps).
    ///
    /// # Errors
    ///
    /// Fails if the partition does not exist.
    pub fn written_ranks(&self, partition: PartitionId) -> Result<Vec<u64>> {
        let _t = metrics::span(modules::CHUNK_STORE);
        let mut inner = self.inner.lock();
        inner.check_readable()?;
        inner.written_ranks(partition)
    }

    /// The cryptographic parameters of a partition (cipher and hash kinds
    /// only; the key is not exposed).
    ///
    /// # Errors
    ///
    /// Fails if the partition does not exist.
    pub fn partition_kinds(
        &self,
        partition: PartitionId,
    ) -> Result<(tdb_crypto::CipherKind, tdb_crypto::HashKind)> {
        let mut inner = self.inner.lock();
        inner.check_readable()?;
        let entry = inner.leader_entry(partition)?;
        Ok((entry.leader.params.cipher, entry.leader.params.hash))
    }

    /// Whether `partition` currently exists (is written).
    pub fn partition_exists(&self, partition: PartitionId) -> bool {
        let mut inner = self.inner.lock();
        if inner.check_readable().is_err() {
            return false;
        }
        inner.leader_entry(partition).is_ok()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ChunkStoreStats {
        let mut stats = {
            let inner = self.inner.lock();
            let mut stats = inner.stats;
            let (appends, runs, bytes) = inner.log.coalesce_counters();
            stats.log_coalesced_bytes = bytes;
            stats.log_writes_coalesced = appends.saturating_sub(runs);
            stats
        };
        let (hits, fallbacks, contention) = self.reads.counters();
        stats.read_fast_hits = hits;
        stats.read_fallbacks = fallbacks;
        stats.read_shard_contention = contention;
        stats
    }

    /// Current health: live, degraded (read-only), or poisoned.
    pub fn health(&self) -> StoreHealth {
        self.inner.lock().health.clone()
    }

    /// Drops every cached descriptor and validated body from the read
    /// shards (partition crypto handles are kept). Until the shards
    /// re-warm, reads fall back to the locked, storage-backed path. For
    /// tests and benchmarks that need every read to touch untrusted
    /// storage, and for callers shedding memory.
    pub fn drop_read_cache(&self) {
        self.reads.clear_shards();
    }

    /// Attempts to return a degraded store to live service without the
    /// full reopen-and-revalidate path: the region between the validated
    /// log tail and the end of the tail segment (where a failed mutation
    /// may have left torn bytes) is scrubbed to zero and read back. On
    /// success the store is live again; the in-memory state was already
    /// rolled back to the last successful mutation when degradation was
    /// entered.
    ///
    /// A no-op on a live store.
    ///
    /// # Errors
    ///
    /// Fails if the store is poisoned (reopen instead) or the device still
    /// refuses I/O — the store stays degraded and the call can be retried.
    pub fn try_heal(&self) -> Result<()> {
        let _t = metrics::span(modules::CHUNK_STORE);
        let mut inner = self.inner.lock();
        let result = inner.try_heal();
        self.reads.set_health(&inner.health);
        result
    }

    /// Total bytes the store occupies (superblock + all segments).
    pub fn stored_size(&self) -> u64 {
        let inner = self.inner.lock();
        crate::log::SEGMENT_BASE
            + u64::from(inner.sys_leader.log.num_segments)
                * u64::from(inner.sys_leader.log.segment_size)
    }

    /// Live (current-version) bytes per segment, for space experiments.
    pub fn utilization(&self) -> Vec<u32> {
        self.inner.lock().sys_leader.log.utilization.clone()
    }

    /// Checkpoints and flushes; call before dropping for a clean shutdown.
    ///
    /// # Errors
    ///
    /// Fails like [`ChunkStore::checkpoint`].
    pub fn close(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.check_writable()?;
        let result = inner.checkpoint();
        self.reads.set_health(&inner.health);
        result
    }

    /// Runs `f` with the engine lock held (crate-internal escape hatch for
    /// the backup store).
    pub(crate) fn with_inner<R>(&self, f: impl FnOnce(&mut Inner) -> Result<R>) -> Result<R> {
        let mut inner = self.inner.lock();
        inner.check_readable()?;
        f(&mut inner)
    }
}

impl Inner {
    /// Gate for mutating operations: only a live store may mutate.
    pub(crate) fn check_writable(&self) -> Result<()> {
        match &self.health {
            StoreHealth::Live => Ok(()),
            StoreHealth::Degraded { reason } => Err(CoreError::DegradedMode(reason.clone())),
            StoreHealth::Poisoned { reason } => Err(CoreError::Poisoned(reason.clone())),
        }
    }

    /// Gate for read-only operations: reads stay available in degraded
    /// mode (every read is still validated through the map tree), and are
    /// refused only once integrity is in doubt.
    pub(crate) fn check_readable(&self) -> Result<()> {
        match &self.health {
            StoreHealth::Poisoned { reason } => Err(CoreError::Poisoned(reason.clone())),
            _ => Ok(()),
        }
    }

    /// Captures the in-memory engine state at the start of a mutation.
    pub(crate) fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            map_cache: self.map_cache.clone(),
            leaders: self.leaders.clone(),
            sys_leader: self.sys_leader.clone(),
            sys_alloc_next: self.sys_alloc_next,
            sys_alloc_free: self.sys_alloc_free.clone(),
            sys_reserved: self.sys_reserved.clone(),
            chain: self.hashes.chain,
            tail: self.log.tail_state(),
            commit_count: self.commit_count,
            trusted_count: self.trusted_count,
            leader_version: self.leader_version,
            superblock: self.superblock,
            stats: self.stats,
        }
    }

    /// Rolls the in-memory engine back to `snap`. Log bytes written by the
    /// failed mutation lie past the restored tail and are never served:
    /// the next append overwrites them, and recovery parses them as a torn
    /// tail.
    pub(crate) fn restore(&mut self, snap: EngineSnapshot) {
        self.map_cache = snap.map_cache;
        self.leaders = snap.leaders;
        self.sys_leader = snap.sys_leader;
        self.sys_alloc_next = snap.sys_alloc_next;
        self.sys_alloc_free = snap.sys_alloc_free;
        self.sys_reserved = snap.sys_reserved;
        self.hashes.abort_set();
        self.hashes.chain = snap.chain;
        self.log.restore_tail_state(snap.tail);
        self.commit_count = snap.commit_count;
        self.trusted_count = snap.trusted_count;
        self.leader_version = snap.leader_version;
        self.superblock = snap.superblock;
        self.stats = snap.stats;
    }

    /// Classifies a failed mutation and moves the health state machine:
    /// integrity violations poison; storage failures roll back to `snap`
    /// and degrade only when log bytes were already written.
    pub(crate) fn fail_mutation(&mut self, snap: EngineSnapshot, e: &CoreError, what: &str) {
        if e.fault_class() == FaultClass::Integrity {
            // The in-memory state is rolled back for hygiene, but no
            // validated path may run again until a reopen revalidates.
            self.restore(snap);
            self.enter_poisoned(format!("integrity violation during {what}: {e}"));
            return;
        }
        let wrote = self.wrote_log;
        self.restore(snap);
        if wrote {
            self.enter_degraded(format!(
                "storage failure during {what} after log bytes were written: {e}"
            ));
        }
    }

    fn enter_degraded(&mut self, reason: String) {
        if self.health.is_poisoned() {
            return;
        }
        self.stats.degraded_entries += 1;
        metrics::count(counters::DEGRADED_ENTRIES);
        self.health = StoreHealth::Degraded { reason };
    }

    fn enter_poisoned(&mut self, reason: String) {
        self.stats.poison_events += 1;
        metrics::count(counters::POISON_EVENTS);
        self.health = StoreHealth::Poisoned { reason };
    }

    /// Fast-path repair of a degraded store: instead of a full reopen
    /// (which replays and revalidates the whole residual log), scrub the
    /// possibly-torn region between the validated tail and the end of the
    /// tail segment, verify the device takes writes again, and go live.
    fn try_heal(&mut self) -> Result<()> {
        match &self.health {
            StoreHealth::Live => return Ok(()),
            StoreHealth::Poisoned { reason } => return Err(CoreError::Poisoned(reason.clone())),
            StoreHealth::Degraded { .. } => {}
        }
        self.stats.heal_attempts += 1;
        metrics::count(counters::HEAL_ATTEMPTS);
        // Scrubbing drops the durable-but-unacknowledged log suffix. In
        // counter mode that is only sound while the trusted counter has not
        // already counted that suffix: with the counter ahead of the
        // rolled-back commit count, dropping it would make the next
        // validation read as a replay (§4.8.2.2). Such a store needs the
        // full reopen, which *adopts* the suffix by rolling forward.
        if let TrustedBackend::Counter(c) = &self.trusted {
            let actual = {
                let _t = metrics::span(modules::TRUSTED_STORE);
                c.get()?
            };
            if actual > self.commit_count {
                return Err(CoreError::DegradedMode(format!(
                    "trusted counter ({actual}) is ahead of the rolled-back \
                     commit count ({}); reopen to roll the log forward",
                    self.commit_count
                )));
            }
        }
        let tail = self.log.tail_location();
        let seg_start = self.log.segment_offset(self.log.tail_segment());
        let scrub_len = (u64::from(self.log.segment_size()) - (tail - seg_start)) as usize;
        if scrub_len > 0 {
            let store = Arc::clone(self.log.store());
            let zeros = vec![0u8; scrub_len];
            store.write_at(tail, &zeros)?;
            store.flush()?;
            let mut back = vec![0u8; scrub_len];
            store.read_at(tail, &mut back)?;
            if back.iter().any(|b| *b != 0) {
                return Err(CoreError::Corrupt(
                    "tail scrub read-back mismatch; device unreliable".into(),
                ));
            }
        }
        self.health = StoreHealth::Live;
        self.stats.heals += 1;
        metrics::count(counters::HEALS);
        Ok(())
    }

    fn fanout(&self) -> u64 {
        u64::from(self.config.fanout)
    }

    // -- Leader and crypto access --------------------------------------------

    /// Loads (if needed) and returns the cached state for a user partition.
    pub(crate) fn leader_entry(&mut self, p: PartitionId) -> Result<&mut LeaderEntry> {
        if p.is_system() {
            return Err(CoreError::NoSuchPartition(p));
        }
        if !self.leaders.contains_key(&p) {
            let id = ChunkId::leader_chunk(p);
            let desc = self.get_descriptor(id)?;
            if desc.status != ChunkStatus::Written {
                return Err(CoreError::NoSuchPartition(p));
            }
            let body = self.read_validated(id, &desc)?;
            let leader = PartitionLeader::decode(&body)?;
            self.leaders.insert(p, LeaderEntry::new(leader)?);
        }
        Ok(self.leaders.get_mut(&p).expect("just inserted"))
    }

    /// Runtime crypto for a partition (system partition included).
    pub(crate) fn crypto_for(&mut self, p: PartitionId) -> Result<Arc<PartitionCrypto>> {
        if p.is_system() {
            Ok(Arc::clone(&self.system))
        } else {
            Ok(Arc::clone(&self.leader_entry(p)?.crypto))
        }
    }

    /// The tree height of a partition's position map.
    fn tree_height(&mut self, p: PartitionId) -> Result<u8> {
        if p.is_system() {
            Ok(self.sys_leader.map.height)
        } else {
            Ok(self.leader_entry(p)?.leader.height)
        }
    }

    fn root_descriptor(&mut self, p: PartitionId) -> Result<Descriptor> {
        if p.is_system() {
            Ok(self.sys_leader.map.root)
        } else {
            Ok(self.leader_entry(p)?.leader.root)
        }
    }

    fn set_root_descriptor(&mut self, p: PartitionId, desc: Descriptor) -> Result<()> {
        if p.is_system() {
            self.sys_leader.map.root = desc;
        } else {
            let entry = self.leader_entry(p)?;
            entry.leader.root = desc;
            entry.dirty = true;
        }
        Ok(())
    }

    // -- Chunk map (§4.3, §4.5) ----------------------------------------------

    /// Fetches the descriptor for `id`, walking the map bottom-up from the
    /// deepest cached ancestor (§4.5).
    pub(crate) fn get_descriptor(&mut self, id: ChunkId) -> Result<Descriptor> {
        let height = self.tree_height(id.partition)?;
        if id.pos.height > height {
            return Ok(Descriptor::unallocated());
        }
        if id.pos.height == height && id.pos.rank == 0 {
            return self.root_descriptor(id.partition);
        }
        let parent = id.pos.parent(self.fanout());
        self.ensure_map_chunk(id.partition, parent)?;
        let slot = id.pos.slot(self.fanout());
        Ok(self
            .map_cache
            .get(id.partition, parent)
            .expect("ensured above")
            .slots[slot])
    }

    /// Ensures the map chunk at `(p, pos)` is decoded in the cache,
    /// validating it against its descriptor on the way in.
    fn ensure_map_chunk(&mut self, p: PartitionId, pos: Position) -> Result<()> {
        if self.map_cache.contains(p, pos) {
            return Ok(());
        }
        let desc = self.get_descriptor(ChunkId::new(p, pos))?;
        let fanout = self.fanout() as usize;
        let chunk = if desc.is_written() {
            let body = self.read_validated(ChunkId::new(p, pos), &desc)?;
            let hash_len = self.crypto_for(p)?.hash_kind().digest_len();
            MapChunk::decode(&body, fanout, hash_len)?
        } else {
            // Never written: synthesize an empty map chunk.
            MapChunk::empty(fanout)
        };
        self.map_cache.insert(p, pos, chunk, false);
        Ok(())
    }

    /// Updates the descriptor for `id`, dirtying its parent map chunk (the
    /// §4.6 deferral) and maintaining segment utilization.
    pub(crate) fn set_descriptor(&mut self, id: ChunkId, desc: Descriptor) -> Result<()> {
        let old = self.get_descriptor(id)?;
        // Utilization: the old version becomes obsolete, the new is live.
        if old.is_written() {
            let seg = self.log.segment_of(old.location) as usize;
            if let Some(u) = self.sys_leader.log.utilization.get_mut(seg) {
                *u = u.saturating_sub(old.vlen);
            }
        }
        if desc.is_written() {
            let seg = self.log.segment_of(desc.location) as usize;
            if let Some(u) = self.sys_leader.log.utilization.get_mut(seg) {
                *u += desc.vlen;
            }
        }
        let height = self.tree_height(id.partition)?;
        debug_assert!(
            id.pos.height < height || (id.pos.height == height && id.pos.rank == 0),
            "descriptor write outside tree: {id} at height {height}"
        );
        if id.pos.height == height && id.pos.rank == 0 {
            return self.set_root_descriptor(id.partition, desc);
        }
        let parent = id.pos.parent(self.fanout());
        self.ensure_map_chunk(id.partition, parent)?;
        let slot = id.pos.slot(self.fanout());
        self.map_cache
            .get_mut_dirty(id.partition, parent)
            .expect("ensured above")
            .slots[slot] = desc;
        Ok(())
    }

    /// Grows `p`'s tree until `rank` is addressable (§4.3: "as the tree
    /// grows, new chunks are added to the right and to the top").
    pub(crate) fn ensure_capacity(&mut self, p: PartitionId, rank: u64) -> Result<()> {
        loop {
            let height = self.tree_height(p)?;
            if rank < capacity(self.fanout(), height) {
                return Ok(());
            }
            let old_root = self.root_descriptor(p)?;
            let new_height = height + 1;
            let mut chunk = MapChunk::empty(self.fanout() as usize);
            chunk.slots[0] = old_root;
            self.map_cache
                .insert(p, Position::map(new_height, 0), chunk, true);
            if p.is_system() {
                self.sys_leader.map.height = new_height;
                self.sys_leader.map.root = Descriptor::unwritten();
            } else {
                let entry = self.leader_entry(p)?;
                entry.leader.height = new_height;
                entry.leader.root = Descriptor::unwritten();
                entry.dirty = true;
            }
        }
    }

    /// Reads and validates the version a descriptor points at, returning
    /// the plaintext body (§4.5: located, decrypted, hashed, compared).
    pub(crate) fn read_validated(&mut self, id: ChunkId, desc: &Descriptor) -> Result<Vec<u8>> {
        debug_assert!(desc.is_written());
        let buf = self.log.read_at(desc.location, desc.vlen as usize)?;
        let raw = self.parse_at(&buf, desc.location)?;
        if !matches!(raw.header.kind, VersionKind::Named | VersionKind::Relocated)
            || raw.header.id.pos != id.pos
        {
            return Err(CoreError::TamperDetected(TamperKind::MisdirectedChunk {
                expected: id,
                location: desc.location,
            }));
        }
        let crypto = self.crypto_for(id.partition)?;
        let body = {
            let _t = metrics::span(modules::ENCRYPTION);
            raw.open_body(&crypto, desc.location)?
        };
        let hash = {
            let _t = metrics::span(modules::HASHING);
            crypto.hash(&body)
        };
        if hash != desc.hash {
            return Err(CoreError::TamperDetected(TamperKind::ChunkHashMismatch(id)));
        }
        Ok(body)
    }

    fn parse_at(&self, buf: &[u8], location: u64) -> Result<RawVersion> {
        let parsed = {
            let _t = metrics::span(modules::ENCRYPTION);
            parse_version(&self.system, buf, location)?
        };
        parsed.ok_or(CoreError::TamperDetected(TamperKind::UndecryptableChunk {
            location,
        }))
    }

    // -- Allocation (§4.4) ----------------------------------------------------

    pub(crate) fn allocate_partition(&mut self) -> Result<PartitionId> {
        // Partition ids are ranks in the system partition's data space.
        // Allocation is purely in-memory: "this operation does not change
        // the persistent state" (§9.2.2).
        let rank = match self.sys_alloc_free.pop() {
            Some(r) => r,
            None => {
                let r = self.sys_alloc_next;
                self.sys_alloc_next += 1;
                r
            }
        };
        self.sys_reserved.insert(rank);
        Ok(PartitionId::from_leader_rank(rank))
    }

    pub(crate) fn allocate_chunk(&mut self, p: PartitionId) -> Result<ChunkId> {
        let entry = self.leader_entry(p)?;
        let rank = match entry.alloc_free.pop() {
            Some(r) => r,
            None => {
                let r = entry.alloc_next;
                entry.alloc_next += 1;
                r
            }
        };
        entry.reserved.insert(rank);
        Ok(ChunkId::data(p, rank))
    }

    /// Effective allocation status of a data chunk id, folding in
    /// session-only reservations.
    pub(crate) fn effective_status(&mut self, id: ChunkId) -> Result<ChunkStatus> {
        let desc = self.get_descriptor(id)?;
        if desc.status == ChunkStatus::Unallocated {
            let reserved = self
                .leader_entry(id.partition)?
                .reserved
                .contains(&id.pos.rank);
            if reserved {
                return Ok(ChunkStatus::Unwritten);
            }
        }
        Ok(desc.status)
    }

    // -- Read (§4.5) ----------------------------------------------------------

    pub(crate) fn read_chunk(&mut self, id: ChunkId) -> Result<Vec<u8>> {
        if id.partition.is_system() || !id.pos.is_data() {
            return Err(CoreError::NotAllocated(id));
        }
        let desc = self.get_descriptor(id)?;
        match desc.status {
            ChunkStatus::Unallocated => {
                if self
                    .leader_entry(id.partition)?
                    .reserved
                    .contains(&id.pos.rank)
                {
                    Err(CoreError::NotWritten(id))
                } else {
                    Err(CoreError::NotAllocated(id))
                }
            }
            ChunkStatus::Unwritten => Err(CoreError::NotWritten(id)),
            ChunkStatus::Written => self.read_validated(id, &desc),
        }
    }

    // -- Commit (§4.6) --------------------------------------------------------

    pub(crate) fn commit(&mut self, ops: Vec<CommitOp>) -> Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        // Validation is read-only: a failure here (including a transient
        // read fault resolving a descriptor) leaves the store untouched
        // and live.
        self.validate_ops(&ops)?;
        let snap = self.snapshot();
        self.wrote_log = false;
        let result = self.apply_and_finish(ops);
        match &result {
            Err(e) => self.fail_mutation(snap, e, "commit"),
            Ok(()) => self.maybe_checkpoint()?,
        }
        result
    }

    fn validate_ops(&mut self, ops: &[CommitOp]) -> Result<()> {
        // Validation runs against pre-commit state plus the effects of
        // earlier ops in the same set (e.g. create-then-write).
        let mut created: Vec<PartitionId> = Vec::new();
        let mut deallocated: Vec<PartitionId> = Vec::new();
        for op in ops {
            match op {
                CommitOp::WriteChunk { id, bytes } => {
                    if id.partition.is_system() || !id.pos.is_data() {
                        return Err(CoreError::NotAllocated(*id));
                    }
                    if !created.contains(&id.partition)
                        && self.effective_status(*id)? == ChunkStatus::Unallocated
                    {
                        return Err(CoreError::NotAllocated(*id));
                    }
                    let max = self.log.max_version_len() as usize;
                    if bytes.len() + 512 > max {
                        return Err(CoreError::ChunkTooLarge {
                            size: bytes.len(),
                            max: max - 512,
                        });
                    }
                }
                CommitOp::DeallocChunk { id } => {
                    if id.partition.is_system() || !id.pos.is_data() {
                        return Err(CoreError::NotAllocated(*id));
                    }
                    if self.effective_status(*id)? == ChunkStatus::Unallocated {
                        return Err(CoreError::NotAllocated(*id));
                    }
                }
                CommitOp::CreatePartition { id, params } => {
                    let exists = self.leader_entry(*id).is_ok() && !deallocated.contains(id);
                    if id.is_system() || exists {
                        return Err(CoreError::PartitionExists(*id));
                    }
                    params.runtime()?; // Key length check.
                    created.push(*id);
                }
                CommitOp::CopyPartition { dst, src } => {
                    let exists = self.leader_entry(*dst).is_ok() && !deallocated.contains(dst);
                    if dst.is_system() || exists {
                        return Err(CoreError::PartitionExists(*dst));
                    }
                    if !created.contains(src) {
                        self.leader_entry(*src)?;
                    }
                    created.push(*dst);
                }
                CommitOp::DeallocPartition { id } => {
                    if deallocated.contains(id) {
                        return Err(CoreError::NoSuchPartition(*id));
                    }
                    self.leader_entry(*id)?;
                    deallocated.push(*id);
                }
            }
        }
        Ok(())
    }

    fn apply_and_finish(&mut self, ops: Vec<CommitOp>) -> Result<()> {
        if matches!(self.config.validation, ValidationMode::Counter { .. }) {
            self.hashes.begin_set();
        }
        // Hash+seal every WriteChunk body up front, fanning the crypto
        // across workers; the appends below then serialize only the
        // already-ciphered buffers (in op order, so the hash chain is
        // unchanged). Purely read-only: a failure here rolls back clean.
        let presealed = self.preseal_writes(&ops)?;
        self.apply_ops(ops, presealed)?;
        self.finish_commit()
    }

    /// Applies a validated op set: appends every version and installs the
    /// descriptors, consuming presealed slots where the pipeline produced
    /// them. Shared by the unbatched and group-commit paths.
    fn apply_ops(
        &mut self,
        ops: Vec<CommitOp>,
        mut presealed: Vec<Option<Presealed>>,
    ) -> Result<()> {
        let mut dealloc_ids: Vec<ChunkId> = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            let pre = presealed.get_mut(i).and_then(Option::take);
            self.apply_op(op, pre, &mut dealloc_ids)?;
        }
        if !dealloc_ids.is_empty() {
            self.append_dealloc_chunk(&dealloc_ids)?;
        }
        Ok(())
    }

    /// Precomputes `(hash, sealed bytes)` for every `WriteChunk` in the
    /// set via the parallel crypto pipeline. Returns per-op slots; ops
    /// without preseal work (or batches too small to parallelize) get
    /// `None` and are sealed inline by [`Inner::apply_op`].
    fn preseal_writes(&mut self, ops: &[CommitOp]) -> Result<Vec<Option<Presealed>>> {
        let mut out: Vec<Option<Presealed>> = ops.iter().map(|_| None).collect();
        let workers = pipeline::resolve_workers(self.config.crypto_workers);
        if workers < 2 {
            return Ok(out);
        }
        // Resolve each write's partition crypto sequentially (this may
        // load leaders through the engine's caches). Partitions created
        // earlier in the same set derive their crypto from the op params.
        let mut created: HashMap<PartitionId, Arc<PartitionCrypto>> = HashMap::new();
        let mut jobs: Vec<SealJob<'_>> = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                CommitOp::CreatePartition { id, params } => {
                    created.insert(*id, Arc::new(params.runtime()?));
                }
                CommitOp::CopyPartition { dst, src } => {
                    let crypto = match created.get(src) {
                        Some(c) => Arc::clone(c),
                        None => self.crypto_for(*src)?,
                    };
                    created.insert(*dst, crypto);
                }
                CommitOp::WriteChunk { id, bytes } => {
                    let crypto = match created.get(&id.partition) {
                        Some(c) => Arc::clone(c),
                        None => self.crypto_for(id.partition)?,
                    };
                    jobs.push((*id, crypto, bytes.as_slice()));
                    slots.push(i);
                }
                CommitOp::DeallocChunk { .. } | CommitOp::DeallocPartition { .. } => {}
            }
        }
        if jobs.len() < 2 {
            return Ok(out);
        }
        let sealed = pipeline::seal_batch(&self.system, &jobs, workers);
        self.stats.parallel_crypto_batches += 1;
        self.stats.parallel_crypto_chunks += sealed.len() as u64;
        metrics::count(counters::PARALLEL_CRYPTO_BATCHES);
        metrics::add(counters::PARALLEL_CRYPTO_CHUNKS, sealed.len() as u64);
        for (slot, pre) in slots.into_iter().zip(sealed) {
            out[slot] = Some(pre);
        }
        Ok(out)
    }

    /// Preseals every `WriteChunk` across a whole group-commit batch in
    /// one pipeline pass. Crypto-resolution failures are swallowed (the
    /// slot stays `None`): such a member either seals inline later or —
    /// more likely — fails its own validation without touching batch-mates.
    ///
    /// Unlike [`Inner::preseal_writes`], partitions created by one member
    /// are *not* visible to later members here: a member's create can
    /// still fail validation (e.g. the partition already exists), and a
    /// later member's write must then be sealed under the surviving
    /// partition's real key, not the failed create's.
    fn preseal_batch(&mut self, sets: &[Vec<CommitOp>]) -> Vec<Vec<Option<Presealed>>> {
        let mut out: Vec<Vec<Option<Presealed>>> = sets
            .iter()
            .map(|ops| ops.iter().map(|_| None).collect())
            .collect();
        let workers = pipeline::resolve_workers(self.config.crypto_workers);
        if workers < 2 {
            return out;
        }
        let mut jobs: Vec<SealJob<'_>> = Vec::new();
        let mut slots: Vec<(usize, usize)> = Vec::new();
        for (m, ops) in sets.iter().enumerate() {
            let mut created: HashMap<PartitionId, Arc<PartitionCrypto>> = HashMap::new();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    CommitOp::CreatePartition { id, params } => {
                        if let Ok(rt) = params.runtime() {
                            created.insert(*id, Arc::new(rt));
                        }
                    }
                    CommitOp::CopyPartition { dst, src } => {
                        let crypto = match created.get(src) {
                            Some(c) => Some(Arc::clone(c)),
                            None => self.crypto_for(*src).ok(),
                        };
                        if let Some(c) = crypto {
                            created.insert(*dst, c);
                        }
                    }
                    CommitOp::WriteChunk { id, bytes } => {
                        let crypto = match created.get(&id.partition) {
                            Some(c) => Some(Arc::clone(c)),
                            None => self.crypto_for(id.partition).ok(),
                        };
                        if let Some(c) = crypto {
                            jobs.push((*id, c, bytes.as_slice()));
                            slots.push((m, i));
                        }
                    }
                    CommitOp::DeallocChunk { .. } | CommitOp::DeallocPartition { .. } => {}
                }
            }
        }
        if jobs.len() < 2 {
            return out;
        }
        let sealed = pipeline::seal_batch(&self.system, &jobs, workers);
        self.stats.parallel_crypto_batches += 1;
        self.stats.parallel_crypto_chunks += sealed.len() as u64;
        metrics::count(counters::PARALLEL_CRYPTO_BATCHES);
        metrics::add(counters::PARALLEL_CRYPTO_CHUNKS, sealed.len() as u64);
        for ((m, i), pre) in slots.into_iter().zip(sealed) {
            out[m][i] = Some(pre);
        }
        out
    }

    /// Appends a sealed named version and installs its descriptor.
    pub(crate) fn write_named(
        &mut self,
        kind: VersionKind,
        id: ChunkId,
        body: &[u8],
    ) -> Result<Descriptor> {
        let crypto = self.crypto_for(id.partition)?;
        let hash = {
            let _t = metrics::span(modules::HASHING);
            crypto.hash(body)
        };
        let sealed = {
            let _t = metrics::span(modules::ENCRYPTION);
            seal_version(&self.system, &crypto, kind, id, body)
        };
        let location = self.append(&sealed)?;
        let desc = Descriptor::written(location, sealed.len() as u32, body.len() as u32, hash);
        Ok(desc)
    }

    pub(crate) fn append(&mut self, sealed: &[u8]) -> Result<u64> {
        let loc = self.log.append(
            &mut self.sys_leader.log,
            &self.system,
            &mut self.hashes,
            sealed,
        )?;
        // Only set after a *successful* device append: a failed first write
        // left nothing durable, so the mutation can roll back and stay
        // live. While the log is coalescing, appends only buffer in memory;
        // `flush_log` flips `wrote_log` once runs actually hit the device.
        if !self.log.coalescing() {
            self.wrote_log = true;
        }
        self.stats.bytes_appended += sealed.len() as u64;
        Ok(loc)
    }

    /// Flushes the log, writing out any coalesced runs first, and keeps the
    /// `wrote_log` rollback marker honest: it is set as soon as buffered
    /// bytes reach the device, whether or not the flush itself succeeds.
    pub(crate) fn flush_log(&mut self) -> Result<()> {
        let runs_before = self.log.coalesce_counters().1;
        let result = self.log.flush();
        if self.log.coalesce_counters().1 > runs_before {
            self.wrote_log = true;
        }
        if result.is_ok() {
            self.stats.flushes += 1;
        }
        result
    }

    fn apply_op(
        &mut self,
        op: CommitOp,
        pre: Option<Presealed>,
        dealloc_ids: &mut Vec<ChunkId>,
    ) -> Result<()> {
        match op {
            CommitOp::WriteChunk { id, bytes } => {
                self.ensure_capacity(id.partition, id.pos.rank)?;
                let desc = match pre {
                    // Pipeline already hashed + sealed this body; only the
                    // append is left on the serial path.
                    Some(p) => {
                        let location = self.append(&p.sealed)?;
                        Descriptor::written(location, p.sealed.len() as u32, p.body_len, p.hash)
                    }
                    None => self.write_named(VersionKind::Named, id, &bytes)?,
                };
                self.set_descriptor(id, desc)?;
                let entry = self.leader_entry(id.partition)?;
                entry.leader.next_rank = entry.leader.next_rank.max(id.pos.rank + 1);
                entry.alloc_next = entry.alloc_next.max(entry.leader.next_rank);
                entry.leader.unfree(id.pos.rank);
                entry.alloc_free.retain(|r| *r != id.pos.rank);
                entry.reserved.remove(&id.pos.rank);
                entry.dirty = true;
            }
            CommitOp::DeallocChunk { id } => {
                // Deallocating a reserved-but-unwritten id is purely an
                // in-memory affair: there is no persistent state to undo.
                let was_written = self.get_descriptor(id)?.is_written();
                if was_written {
                    dealloc_ids.push(id);
                    self.set_descriptor(id, Descriptor::unallocated())?;
                    let entry = self.leader_entry(id.partition)?;
                    entry.leader.push_free(id.pos.rank);
                    entry.alloc_free.push(id.pos.rank);
                    entry.dirty = true;
                } else {
                    let entry = self.leader_entry(id.partition)?;
                    entry.reserved.remove(&id.pos.rank);
                    entry.alloc_free.push(id.pos.rank);
                }
            }
            CommitOp::CreatePartition { id, params } => {
                let leader = PartitionLeader::new(params);
                self.write_partition_leader(id, leader)?;
            }
            CommitOp::CopyPartition { dst, src } => {
                let src_entry = self.leader_entry(src)?;
                let dst_leader = src_entry.leader.copied(src);
                src_entry.leader.copies.push(dst);
                let src_leader = src_entry.leader.clone();
                // Persist the source's updated copies list.
                self.write_partition_leader(src, src_leader)?;
                self.write_partition_leader(dst, dst_leader)?;
                // Clone buffered (dirty) map state so dst sees post-
                // checkpoint updates of src (§5.3).
                self.map_cache.clone_dirty(src, dst);
            }
            CommitOp::DeallocPartition { id } => {
                self.dealloc_partition(id, dealloc_ids)?;
            }
        }
        Ok(())
    }

    /// Encodes and writes a partition leader as a system data chunk,
    /// refreshing the leaders cache.
    pub(crate) fn write_partition_leader(
        &mut self,
        p: PartitionId,
        leader: PartitionLeader,
    ) -> Result<()> {
        let id = ChunkId::leader_chunk(p);
        self.ensure_capacity(PartitionId::SYSTEM, id.pos.rank)?;
        let body = leader.encode();
        let desc = self.write_named(VersionKind::Named, id, &body)?;
        self.set_descriptor(id, desc)?;
        self.sys_leader.map.next_rank = self.sys_leader.map.next_rank.max(id.pos.rank + 1);
        self.sys_alloc_next = self.sys_alloc_next.max(self.sys_leader.map.next_rank);
        self.sys_leader.map.unfree(id.pos.rank);
        self.sys_alloc_free.retain(|r| *r != id.pos.rank);
        self.sys_reserved.remove(&id.pos.rank);
        match self.leaders.get_mut(&p) {
            Some(entry) => {
                // Preserve session allocation state across the rewrite.
                let alloc_next = entry.alloc_next.max(leader.next_rank);
                let alloc_free = entry.alloc_free.clone();
                entry.leader = leader;
                entry.alloc_next = alloc_next;
                entry.alloc_free = alloc_free;
                entry.dirty = false;
            }
            None => {
                self.leaders.insert(p, LeaderEntry::new(leader)?);
            }
        }
        Ok(())
    }

    /// Deallocates `p` and (recursively) all of its copies (§5.1).
    fn dealloc_partition(&mut self, p: PartitionId, dealloc_ids: &mut Vec<ChunkId>) -> Result<()> {
        // Gather the closure of copies first.
        let mut closure = vec![p];
        let mut i = 0;
        while i < closure.len() {
            let q = closure[i];
            i += 1;
            if let Ok(entry) = self.leader_entry(q) {
                for c in entry.leader.copies.clone() {
                    if !closure.contains(&c) {
                        closure.push(c);
                    }
                }
            }
        }
        // Detach from a surviving source, if any.
        let source = self.leader_entry(p)?.leader.source;
        if let Some(src) = source {
            if !closure.contains(&src) {
                if let Ok(entry) = self.leader_entry(src) {
                    entry.leader.copies.retain(|c| *c != p);
                    let updated = entry.leader.clone();
                    self.write_partition_leader(src, updated)?;
                }
            }
        }
        for q in closure {
            let id = ChunkId::leader_chunk(q);
            dealloc_ids.push(id);
            self.set_descriptor(id, Descriptor::unallocated())?;
            self.sys_leader.map.push_free(id.pos.rank);
            self.sys_alloc_free.push(id.pos.rank);
            self.leaders.remove(&q);
            self.map_cache.purge_partition(q);
        }
        Ok(())
    }

    fn append_dealloc_chunk(&mut self, ids: &[ChunkId]) -> Result<()> {
        let record = DeallocRecord { ids: ids.to_vec() };
        let sealed = {
            let _t = metrics::span(modules::ENCRYPTION);
            seal_version(
                &self.system,
                &self.system,
                VersionKind::Dealloc,
                VersionHeader::unnamed_id(),
                &record.encode(),
            )
        };
        self.append(&sealed)?;
        Ok(())
    }

    /// Seals the commit: commit chunk or chained hash, flush, trusted-store
    /// update (§4.6, §4.8.2).
    pub(crate) fn finish_commit(&mut self) -> Result<()> {
        match self.config.validation {
            ValidationMode::Counter { delta_ut, .. } => {
                // Reserve room so the commit chunk follows its set in the
                // same segment (the set hash must cover any next-segment
                // chunk, so no switch may happen after end_set).
                self.log.ensure_room(
                    &mut self.sys_leader.log,
                    &self.system,
                    &mut self.hashes,
                    COMMIT_CHUNK_ROOM,
                )?;
                let set_hash = self.hashes.end_set();
                let count = self.commit_count + 1;
                let record = CommitRecord::signed(&self.system, count, set_hash.as_bytes());
                let sealed = {
                    let _t = metrics::span(modules::ENCRYPTION);
                    seal_version(
                        &self.system,
                        &self.system,
                        VersionKind::Commit,
                        VersionHeader::unnamed_id(),
                        &record.encode(),
                    )
                };
                self.append(&sealed)?;
                self.commit_count = count;
                // "A commit operation waits until the commit set is written
                // to the untrusted store reliably" (§4.8.2.1).
                self.flush_log()?;
                if count - self.trusted_count > delta_ut.saturating_sub(1) {
                    self.advance_counter(count)?;
                }
            }
            ValidationMode::DirectHash => {
                self.flush_log()?;
                self.write_direct_record()?;
            }
        }
        self.stats.commits += 1;
        Ok(())
    }

    /// Batched variant of [`Inner::finish_commit`]: appends the member's
    /// commit chunk (counter mode) but defers the device flush to the
    /// batch finalizer, flushing early only when the counter-lag window
    /// (Δut) demands an advance — the trusted counter must never count a
    /// commit that is not yet durable, so the flush always precedes the
    /// advance. Returns whether a flush happened (everything appended so
    /// far, this member included, is durable).
    fn finish_commit_batched(&mut self) -> Result<bool> {
        let mut flushed = false;
        if let ValidationMode::Counter { delta_ut, .. } = self.config.validation {
            self.log.ensure_room(
                &mut self.sys_leader.log,
                &self.system,
                &mut self.hashes,
                COMMIT_CHUNK_ROOM,
            )?;
            let set_hash = self.hashes.end_set();
            let count = self.commit_count + 1;
            let record = CommitRecord::signed(&self.system, count, set_hash.as_bytes());
            let sealed = {
                let _t = metrics::span(modules::ENCRYPTION);
                seal_version(
                    &self.system,
                    &self.system,
                    VersionKind::Commit,
                    VersionHeader::unnamed_id(),
                    &record.encode(),
                )
            };
            self.append(&sealed)?;
            self.commit_count = count;
            if count - self.trusted_count > delta_ut.saturating_sub(1) {
                self.flush_log()?;
                self.advance_counter(count)?;
                flushed = true;
            }
        }
        // Direct-hash mode needs nothing per member: the register write at
        // the batch's durability point is "the real commit point", and it
        // covers every member at once.
        self.stats.commits += 1;
        Ok(flushed)
    }

    /// Rolls back to a batch's last durable snapshot while keeping the
    /// monotone health-event counters a failure handler may have bumped
    /// after that snapshot was taken.
    fn restore_durable(&mut self, snap: EngineSnapshot) {
        let degraded = self.stats.degraded_entries;
        let poisons = self.stats.poison_events;
        self.restore(snap);
        self.stats.degraded_entries = self.stats.degraded_entries.max(degraded);
        self.stats.poison_events = self.stats.poison_events.max(poisons);
    }

    /// Executes a group-commit batch: every member is validated, sealed,
    /// and applied independently (per-commit atomicity), their log appends
    /// coalesce in the log's run buffer, and one flush at the end makes
    /// the whole batch durable.
    ///
    /// Failure policy per member:
    /// - validation errors fail the member alone, before any state change;
    /// - apply errors with no device write roll just that member back and
    ///   the batch continues live;
    /// - integrity violations poison and abort the batch;
    /// - storage failures after bytes reached the device degrade and abort
    ///   (remaining members get [`CoreError::BatchAborted`]).
    ///
    /// On abort or a failed final flush, members applied after the last
    /// durable point are demoted to `BatchAborted` — no caller is ever
    /// acknowledged before its bytes are flushed.
    pub(crate) fn commit_batch(&mut self, sets: Vec<Vec<CommitOp>>) -> Vec<Result<()>> {
        let n = sets.len();
        self.stats.commit_batches += 1;
        self.stats.batched_commits += n as u64;
        self.stats.batch_size_hist[batch_size_bucket(n)] += 1;
        metrics::count(counters::COMMIT_BATCHES);
        metrics::add(counters::BATCHED_COMMITS, n as u64);

        // Pool the whole batch's seal work through the crypto pipeline
        // before any member mutates state.
        let presealed = self.preseal_batch(&sets);
        self.log.set_coalescing(true);

        let mut results: Vec<Result<()>> = Vec::with_capacity(n);
        // Members in `results[..durable]` are covered by a device flush;
        // `durable_snap` is the engine state at that point. `None` once
        // consumed by an abort (no further members run after that).
        let mut durable = 0usize;
        let mut durable_snap = Some(self.snapshot());
        let mut abort: Option<String> = None;

        for (ops, pre) in sets.into_iter().zip(presealed) {
            if let Some(reason) = &abort {
                results.push(Err(CoreError::BatchAborted(reason.clone())));
                continue;
            }
            if ops.is_empty() {
                results.push(Ok(()));
                continue;
            }
            if let Err(e) = self.validate_ops(&ops) {
                // Read-only failure: the member dies alone, batch-mates
                // are untouched.
                results.push(Err(e));
                continue;
            }
            let snap = self.snapshot();
            self.wrote_log = false;
            let counter_mode = matches!(self.config.validation, ValidationMode::Counter { .. });
            if counter_mode {
                self.hashes.begin_set();
            }
            let result = self
                .apply_ops(ops, pre)
                .and_then(|()| self.finish_commit_batched());
            match result {
                Ok(flushed) => {
                    results.push(Ok(()));
                    if flushed {
                        durable = results.len();
                        durable_snap = Some(self.snapshot());
                    }
                    // Threshold-driven checkpoint, as on the unbatched
                    // path. A successful checkpoint flushes and syncs the
                    // trusted store, so it is a durable point too.
                    let checkpoints_before = self.stats.checkpoints;
                    match self.maybe_checkpoint() {
                        Ok(()) => {
                            if self.stats.checkpoints > checkpoints_before {
                                durable = results.len();
                                durable_snap = Some(self.snapshot());
                            }
                        }
                        Err(e) => {
                            // The member was applied but its follow-on
                            // checkpoint failed (and did its own rollback
                            // and health transition) — surface the error
                            // as the member's result, exactly like the
                            // unbatched path.
                            let msg = e.to_string();
                            *results.last_mut().expect("just pushed") = Err(e);
                            if !self.health.is_live() {
                                let snap = durable_snap.take().expect("unconsumed");
                                self.restore_durable(snap);
                                demote_unflushed(&mut results, durable, &msg);
                                abort = Some(msg);
                            }
                        }
                    }
                }
                Err(e) => {
                    let integrity = e.fault_class() == FaultClass::Integrity;
                    if integrity || self.wrote_log {
                        // Bytes reached the device (or integrity is in
                        // doubt): everything since the last durable point
                        // is unrecoverable in place. Roll back to it,
                        // demote the members it does not cover, and stop.
                        let msg = e.to_string();
                        let snap = durable_snap.take().expect("unconsumed");
                        self.restore_durable(snap);
                        demote_unflushed(&mut results, durable, &msg);
                        if integrity {
                            self.enter_poisoned(format!(
                                "integrity violation during batched commit: {msg}"
                            ));
                        } else {
                            self.enter_degraded(format!(
                                "storage failure during batched commit after \
                                 log bytes were written: {msg}"
                            ));
                        }
                        results.push(Err(e));
                        abort = Some(msg);
                    } else {
                        // Nothing durable happened: this member rolls back
                        // clean and the batch continues live.
                        self.restore(snap);
                        results.push(Err(e));
                    }
                }
            }
        }

        // Finalize: one shared durability point for everything the batch
        // buffered since the last flush.
        if abort.is_none() && self.log.buffered_len() > 0 {
            self.wrote_log = false;
            let fin = match self.config.validation {
                ValidationMode::Counter { .. } => self.flush_log(),
                ValidationMode::DirectHash => {
                    self.flush_log().and_then(|()| self.write_direct_record())
                }
            };
            if let Err(e) = fin {
                let msg = e.to_string();
                let wrote = self.wrote_log;
                let snap = durable_snap.take().expect("unconsumed");
                self.restore_durable(snap);
                demote_unflushed(&mut results, durable, &msg);
                if wrote {
                    self.enter_degraded(format!(
                        "storage failure flushing a commit batch after log \
                         bytes were written: {msg}"
                    ));
                }
            }
        }
        self.log.set_coalescing(false);
        results
    }

    pub(crate) fn advance_counter(&mut self, count: u64) -> Result<()> {
        let _t = metrics::span(modules::TRUSTED_STORE);
        match &self.trusted {
            TrustedBackend::Counter(c) => c.advance_to(count)?,
            TrustedBackend::Register(_) => {
                return Err(CoreError::Corrupt(
                    "counter validation configured with a register backend".into(),
                ))
            }
        }
        self.trusted_count = count;
        Ok(())
    }

    /// Writes `{chain, tail}` to the tamper-resistant register — "the real
    /// commit point" of direct hash validation (§4.8.2.1).
    pub(crate) fn write_direct_record(&mut self) -> Result<()> {
        let record = DirectRecord {
            chain: self.hashes.chain,
            tail: self.log.tail_location(),
        };
        let _t = metrics::span(modules::TRUSTED_STORE);
        match &self.trusted {
            TrustedBackend::Register(r) => r.write(&record.encode())?,
            TrustedBackend::Counter(_) => {
                return Err(CoreError::Corrupt(
                    "direct validation configured with a counter backend".into(),
                ))
            }
        }
        Ok(())
    }

    fn maybe_checkpoint(&mut self) -> Result<()> {
        if self.map_cache.dirty_count() >= self.config.checkpoint_threshold {
            self.checkpoint()?;
        }
        Ok(())
    }

    // -- Diff (§5.3) ----------------------------------------------------------

    pub(crate) fn diff(&mut self, old: PartitionId, new: PartitionId) -> Result<Vec<DiffEntry>> {
        let old_height = self.leader_entry(old)?.leader.height;
        let new_height = self.leader_entry(new)?.leader.height;
        let old_next = self.leader_entry(old)?.leader.next_rank;
        let new_next = self.leader_entry(new)?.leader.next_rank;
        let mut out = Vec::new();
        // Fast path: equal heights allow subtree pruning by comparing map
        // descriptors ("traversing their position maps and comparing the
        // descriptors of the corresponding chunks").
        if old_height == new_height {
            let root = Position::map(old_height, 0);
            self.diff_subtree(old, new, root, &mut out)?;
        } else {
            let max_rank = old_next.max(new_next);
            for rank in 0..max_rank {
                self.diff_leaf(old, new, Position::data(rank), &mut out)?;
            }
        }
        Ok(out)
    }

    fn diff_subtree(
        &mut self,
        old: PartitionId,
        new: PartitionId,
        pos: Position,
        out: &mut Vec<DiffEntry>,
    ) -> Result<()> {
        let d_old = self.get_descriptor(ChunkId::new(old, pos))?;
        let d_new = self.get_descriptor(ChunkId::new(new, pos))?;
        // Identical subtrees are pruned — but only when neither side has
        // buffered overrides anywhere below: dirty cached map chunks are
        // not yet reflected in ancestor descriptors (that is the §4.7
        // deferral), so a clean-looking match here can hide changes.
        let dirty = self.subtree_has_dirty(old, pos) || self.subtree_has_dirty(new, pos);
        if d_old.same_state(&d_new) && !dirty {
            return Ok(());
        }
        for slot in 0..self.fanout() as usize {
            let child = pos.child(self.fanout(), slot);
            if child.is_data() {
                self.diff_leaf(old, new, child, out)?;
            } else {
                self.diff_subtree(old, new, child, out)?;
            }
        }
        Ok(())
    }

    /// True when `p` has any dirty cached map chunk inside the subtree
    /// rooted at `pos` (including `pos` itself).
    fn subtree_has_dirty(&self, p: PartitionId, pos: Position) -> bool {
        let fanout = u64::from(self.config.fanout);
        self.map_cache.dirty_keys().into_iter().any(|(q, dp)| {
            if q != p || dp.height > pos.height {
                return false;
            }
            // Climb dp to pos.height; ancestor ranks divide by fanout per
            // level.
            let levels = u32::from(pos.height - dp.height);
            dp.rank / fanout.saturating_pow(levels) == pos.rank
        })
    }

    fn diff_leaf(
        &mut self,
        old: PartitionId,
        new: PartitionId,
        pos: Position,
        out: &mut Vec<DiffEntry>,
    ) -> Result<()> {
        let d_old = self.get_descriptor(ChunkId::new(old, pos))?;
        let d_new = self.get_descriptor(ChunkId::new(new, pos))?;
        let change = match (d_old.is_written(), d_new.is_written()) {
            (false, true) => Some(DiffChange::Created),
            (true, false) => Some(DiffChange::Deallocated),
            (true, true) if !d_old.same_state(&d_new) => Some(DiffChange::Updated),
            _ => None,
        };
        if let Some(change) = change {
            out.push(DiffEntry { pos, change });
        }
        Ok(())
    }

    pub(crate) fn written_ranks(&mut self, p: PartitionId) -> Result<Vec<u64>> {
        let next = self.leader_entry(p)?.leader.next_rank;
        let mut out = Vec::new();
        for rank in 0..next {
            let desc = self.get_descriptor(ChunkId::data(p, rank))?;
            if desc.is_written() {
                out.push(rank);
            }
        }
        Ok(out)
    }
}

/// Histogram bucket for a group-commit batch of `n` members: bucket `i`
/// covers sizes in `(2^(i-1), 2^i]` (1, 2, 3–4, 5–8, …), capped at 7.
fn batch_size_bucket(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        ((usize::BITS - (n - 1).leading_zeros()) as usize).min(7)
    }
}

/// Demotes every `Ok` result at or past `durable` to [`CoreError::BatchAborted`]:
/// those members were applied but never covered by a flush, so they must
/// not be acknowledged.
fn demote_unflushed(results: &mut [Result<()>], durable: usize, reason: &str) {
    for r in results.iter_mut().skip(durable) {
        if r.is_ok() {
            *r = Err(CoreError::BatchAborted(reason.to_string()));
        }
    }
}

/// The direct-validation record kept in the tamper-resistant register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DirectRecord {
    /// Chained hash over the residual log.
    pub chain: HashValue,
    /// Exact end of the validated log.
    pub tail: u64,
}

impl DirectRecord {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(self.chain.len() + 12);
        e.bytes(self.chain.as_bytes());
        e.u64(self.tail);
        e.finish()
    }

    pub(crate) fn decode(buf: &[u8]) -> Result<DirectRecord> {
        let mut d = Dec::new(buf);
        let chain = HashValue::new(d.bytes()?);
        let tail = d.u64()?;
        d.expect_done("trusted direct record")?;
        Ok(DirectRecord { chain, tail })
    }
}

impl ChunkStore {
    /// Test-only descriptor peek (debug builds).
    #[doc(hidden)]
    pub fn debug_descriptor(&self, id: ChunkId) -> Result<Descriptor> {
        let mut inner = self.inner.lock();
        inner.get_descriptor(id)
    }
}
