//! The chunk store (§4, §5): TDB's trusted storage engine.
//!
//! The chunk store keeps a set of named, variable-sized chunks in a
//! log-structured untrusted store, validated through a Merkle tree embedded
//! in the chunk map and rooted — via the residual-log hash or signed commit
//! counts — in the tamper-resistant store. See the paper §4.2 for the
//! implementation overview this module follows.
//!
//! This module holds the public facade, the engine state struct, the
//! health state machine, and the lock/publication protocol. The engine
//! logic itself lives in the [`crate::engine`] layer: commit processing
//! (`engine::commit`), the chunk map (`engine::map`), checkpointing
//! (`engine::checkpoint`), partition bookkeeping (`engine::partitions`),
//! and the log cleaner (`engine::maintenance`). The optional background
//! maintenance runtime is [`crate::maintenance`].
//!
//! Concurrency: "serializability of operations is provided through mutual
//! exclusion, which does not overlap I/O and computation, but is simple and
//! acceptable when concurrency is low" (§4.2) — a single mutex around the
//! whole engine.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use parking_lot::Mutex;

use tdb_crypto::SecretKey;
use tdb_storage::{MonotonicCounter, SharedUntrusted, TrustedStore};

use crate::cache::MapCache;
use crate::descriptor::Descriptor;
use crate::errors::{CoreError, FaultClass, Result};
use crate::ids::{ChunkId, PartitionId};
use crate::leader::SystemLeader;
use crate::log::{LogHashes, SegmentedLog, Superblock};
use crate::maintenance::{MaintenanceService, MaintenanceShared};
use crate::metrics::{self, counters, modules};
use crate::params::{CryptoParams, PartitionCrypto};
use crate::readpath::ReadPath;

pub use crate::engine::commit::CommitOp;
pub(crate) use crate::engine::commit::{DirectRecord, EngineSnapshot};
pub(crate) use crate::engine::partitions::LeaderEntry;
pub use crate::engine::partitions::{DiffChange, DiffEntry};

/// How the tamper-resistant store is used (§4.8.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationMode {
    /// Direct hash validation (§4.8.2.1): the tamper-resistant store holds
    /// a chained hash of the residual log plus the log-tail location, and
    /// is updated on every commit.
    DirectHash,
    /// Counter-based validation (§4.8.2.2): signed, counted commit chunks
    /// in the log; the tamper-resistant store holds only a monotonic
    /// counter, flushed lazily.
    Counter {
        /// Allowed lag of the trusted counter behind the log (the paper ran
        /// with Δut = 5, flushing the counter once every 5 commits).
        delta_ut: u64,
        /// Allowed lead of the trusted counter over the log (for lazily
        /// flushed untrusted stores; the paper ran with Δtu = 0).
        delta_tu: u64,
    },
}

/// The tamper-resistant store backend matching the [`ValidationMode`].
#[derive(Clone)]
pub enum TrustedBackend {
    /// A small writable register (for [`ValidationMode::DirectHash`]).
    Register(Arc<dyn TrustedStore>),
    /// A non-decrementable counter (for [`ValidationMode::Counter`]).
    Counter(Arc<dyn MonotonicCounter>),
}

/// Chunk store configuration.
#[derive(Clone)]
pub struct ChunkStoreConfig {
    /// Descriptors per map chunk (the paper's experiments use 64, §9.2.2).
    pub fanout: u32,
    /// Log segment size in bytes (§4.9.4 suggests ~100 KB for disks).
    pub segment_size: u32,
    /// Soft cap on cached map chunks.
    pub map_cache_capacity: usize,
    /// Dirty map chunks that trigger an automatic checkpoint (§4.7).
    pub checkpoint_threshold: usize,
    /// Validation protocol.
    pub validation: ValidationMode,
    /// When true the cleaner decrypts, revalidates, and re-hashes the
    /// chunks it moves (the variant the paper implemented, §4.9.5).
    pub cleaner_revalidates: bool,
    /// Hard cap on segments (0 = unbounded).
    pub max_segments: u32,
    /// System-partition cipher and hash (the paper fixes 3DES + SHA-1).
    pub system_cipher: tdb_crypto::CipherKind,
    /// System-partition hash.
    pub system_hash: tdb_crypto::HashKind,
    /// Shards of the concurrent read path (rounded up to a power of two).
    /// `0` disables the sharded fast path entirely, restoring the paper's
    /// single-lock read model (the benchmark baseline).
    pub read_shards: usize,
    /// Total validated plaintext bodies cached across all read shards.
    pub read_cache_chunks: usize,
    /// Worker threads for the parallel crypto pipeline (commit and
    /// checkpoint hash+seal fan-out). `0` means auto (available
    /// parallelism, capped at 8); `1` forces the sequential fallback.
    pub crypto_workers: usize,
    /// Group commit: concurrent committers are batched by a leader thread
    /// that preseals every member, coalesces their log appends into
    /// segment-sized writes, and issues one flush for the whole batch.
    /// `false` restores the paper's one-flush-per-commit write path
    /// bit-for-bit on the log.
    pub group_commit: bool,
    /// Most commits a group-commit leader drains into one batch. Values
    /// `<= 1` disable batching just like `group_commit = false`.
    pub commit_batch_max: usize,
    /// Run cleaning and threshold checkpoints on a background maintenance
    /// thread ([`crate::maintenance`]) instead of inside commits and
    /// explicit [`ChunkStore::clean`] calls. `false` (the default)
    /// reproduces the paper's caller-driven behavior exactly.
    pub background_maintenance: bool,
    /// Segments the background cleaner processes per engine-lock hold
    /// (one *slice*); between slices the lock is released so committers
    /// interleave. Ignored without `background_maintenance`.
    pub clean_slice_segments: usize,
    /// Free-segment low-water mark of a bounded log: below it, committers
    /// are throttled (bounded wait) until the background cleaner frees
    /// space. `0` disables throttling.
    pub clean_low_water: u32,
    /// Free-segment high-water mark of a bounded log: the background
    /// cleaner runs while free segments are below it.
    pub clean_high_water: u32,
    /// Lazy Merkle materialization: memoize effective subtree hashes in a
    /// dirty-tree accumulator so `snapshot_root` / `read_with_proof` only
    /// recompute the spine invalidated since the last query, instead of
    /// re-hashing every dirty subtree eagerly on every call. Pure CPU-side
    /// memoization — results and device traffic are identical either way.
    /// `false` (the default) reproduces the paper's eager recompute.
    pub lazy_integrity: bool,
    /// Transparent chunk-body compression ([`crate::compress`]): data-chunk
    /// bodies are LZ77-compressed *before* hashing and sealing, so the
    /// descriptor hash covers the stored bytes and every read verifies
    /// integrity before the decompressor runs. Incompressible bodies are
    /// stored raw with zero overhead. Map chunks, leaders, and unnamed
    /// records stay uncompressed (their bytes are the Merkle tree's proof
    /// preimages and recovery's decode inputs). `false` (the default)
    /// reproduces the paper's byte-exact device-op shape.
    pub compression: bool,
}

impl Default for ChunkStoreConfig {
    fn default() -> Self {
        ChunkStoreConfig {
            fanout: 64,
            segment_size: 128 * 1024,
            map_cache_capacity: 1024,
            checkpoint_threshold: 128,
            validation: ValidationMode::Counter {
                delta_ut: 5,
                delta_tu: 0,
            },
            cleaner_revalidates: true,
            max_segments: 0,
            system_cipher: tdb_crypto::CipherKind::TripleDes,
            system_hash: tdb_crypto::HashKind::Sha1,
            read_shards: 16,
            read_cache_chunks: 1024,
            crypto_workers: 0,
            group_commit: true,
            commit_batch_max: 64,
            background_maintenance: false,
            clean_slice_segments: 2,
            clean_low_water: 2,
            clean_high_water: 4,
            lazy_integrity: false,
            compression: false,
        }
    }
}

/// Aggregate counters exposed for benchmarks and experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChunkStoreStats {
    /// Commits performed (including checkpoints and cleaner commits).
    pub commits: u64,
    /// Checkpoints performed.
    pub checkpoints: u64,
    /// Segments reclaimed by the cleaner.
    pub segments_cleaned: u64,
    /// Versions relocated by the cleaner.
    pub chunks_relocated: u64,
    /// Obsolete bytes reclaimed by the cleaner (segment size minus live
    /// bytes, summed over reclaimed segments).
    pub bytes_reclaimed: u64,
    /// Bounded cleaning slices run by the background maintenance thread.
    pub clean_slices: u64,
    /// Times the background maintenance thread woke and ran a pass.
    pub maintenance_wakeups: u64,
    /// Commits that hit the low-water admission gate and waited for the
    /// cleaner.
    pub commit_throttle_waits: u64,
    /// Bytes appended to the log.
    pub bytes_appended: u64,
    /// Times this store entered read-only degraded mode.
    pub degraded_entries: u64,
    /// Times this store hard-poisoned on an integrity violation.
    pub poison_events: u64,
    /// [`ChunkStore::try_heal`] attempts.
    pub heal_attempts: u64,
    /// Successful heals (degraded back to live).
    pub heals: u64,
    /// Reads served by the sharded fast path without the engine lock.
    pub read_fast_hits: u64,
    /// Reads served by the engine-locked fallback path.
    pub read_fallbacks: u64,
    /// Fast reads that found their shard write-locked and had to block.
    pub read_shard_contention: u64,
    /// Commit/checkpoint batches whose hash+seal work ran in parallel.
    pub parallel_crypto_batches: u64,
    /// Chunks sealed by those parallel batches.
    pub parallel_crypto_chunks: u64,
    /// Group-commit batches executed by a leader thread.
    pub commit_batches: u64,
    /// Commits that rode in a group-commit batch (of any size).
    pub batched_commits: u64,
    /// Histogram of group-commit batch sizes. Bucket `i` counts batches of
    /// size in `(2^(i-1), 2^i]`: 1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, >64.
    pub batch_size_hist: [u64; 8],
    /// Device flushes issued by the log (commit, checkpoint, and batch
    /// barriers). With batching, many commits share one flush.
    pub flushes: u64,
    /// Bytes written through coalesced (buffered) log runs.
    pub log_coalesced_bytes: u64,
    /// Device writes saved by coalescing: buffered appends minus the
    /// contiguous runs actually written.
    pub log_writes_coalesced: u64,
    /// Map-tree levels a checkpoint skipped because nothing in them was
    /// dirty (incremental checkpointing).
    pub dirty_map_levels_skipped: u64,
    /// Effective-subtree-hash lookups served from the lazy-integrity memo
    /// (no re-encode, no re-hash).
    pub lazy_hash_hits: u64,
    /// Effective-subtree-hash lookups that recomputed and filled the memo.
    pub lazy_hash_recomputes: u64,
    /// Lazy-integrity memo entries dropped by spine or partition
    /// invalidation (descriptor writes, growth, dealloc, restore).
    pub lazy_invalidations: u64,
    /// Bodies stored as compressed envelopes (the knob on and the
    /// savings above the store-raw threshold).
    pub bodies_compressed: u64,
    /// Bodies the compression knob examined but stored raw (too small or
    /// savings below the threshold).
    pub bodies_stored_raw: u64,
    /// Sealed log bytes saved by compression: the raw sealed size each
    /// compressed body would have had, minus the size actually appended.
    pub log_bytes_saved: u64,
    /// Fast-path reads that failed to decompress a hash-verified body and
    /// fell back to the engine-locked path (anomaly accounting; the locked
    /// path alone judges integrity).
    pub decompress_fallbacks: u64,
}

/// Externally visible health of the engine.
///
/// Failure handling follows the error taxonomy
/// ([`crate::errors::FaultClass`]): storage failures during a mutation roll
/// the in-memory state back to the pre-mutation snapshot and, if any bytes
/// had already reached the log, drop to `Degraded`; only integrity
/// violations (`TamperDetected` on a mutation path) hard-poison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreHealth {
    /// Fully operational.
    Live,
    /// Read-only: a storage failure interrupted a mutation after bytes had
    /// reached the log. Validated reads are still served; mutations are
    /// rejected until [`ChunkStore::try_heal`] succeeds or the store is
    /// reopened.
    Degraded {
        /// Human-readable cause.
        reason: String,
    },
    /// Failed closed: an integrity violation was detected during a
    /// mutation. Every operation is rejected; the store must be reopened,
    /// which revalidates everything against the tamper-resistant store.
    Poisoned {
        /// Human-readable cause.
        reason: String,
    },
}

impl StoreHealth {
    /// True when fully operational.
    pub fn is_live(&self) -> bool {
        matches!(self, StoreHealth::Live)
    }

    /// True when serving reads only.
    pub fn is_degraded(&self) -> bool {
        matches!(self, StoreHealth::Degraded { .. })
    }

    /// True when failed closed.
    pub fn is_poisoned(&self) -> bool {
        matches!(self, StoreHealth::Poisoned { .. })
    }
}

/// The engine state behind the mutex.
pub(crate) struct Inner {
    pub config: ChunkStoreConfig,
    pub system: Arc<PartitionCrypto>,
    pub trusted: TrustedBackend,
    pub log: SegmentedLog,
    pub hashes: LogHashes,
    pub sys_leader: SystemLeader,
    /// Session allocation state for the system partition (partition ids).
    pub sys_alloc_next: u64,
    pub sys_alloc_free: Vec<u64>,
    /// Session-allocated (unwritten) partition-leader ranks.
    pub sys_reserved: std::collections::HashSet<u64>,
    pub map_cache: MapCache,
    pub leaders: HashMap<PartitionId, LeaderEntry>,
    /// Last commit count appended to the log (counter mode).
    pub commit_count: u64,
    /// Last count pushed to the trusted counter.
    pub trusted_count: u64,
    /// Location and on-log length of the current system leader version
    /// (for utilization accounting across checkpoints).
    pub leader_version: Option<(u64, u32)>,
    pub superblock: Superblock,
    pub stats: ChunkStoreStats,
    /// Live / degraded / poisoned state machine (see [`StoreHealth`]).
    pub health: StoreHealth,
    /// True once the current mutation has appended bytes to the log;
    /// distinguishes "failed before any durable append" (roll back and stay
    /// live) from "failed after a partial append" (degrade).
    pub wrote_log: bool,
    /// Dirty-tree accumulator for lazy Merkle materialization (no-op when
    /// `config.lazy_integrity` is off).
    pub lazy: crate::engine::dirty::DirtyTreeAccumulator,
}

/// The sharable core of a chunk store: the engine behind its mutex, the
/// lock-free read path, the group-commit coordinator, and the maintenance
/// rendezvous state. The facade and the background maintenance thread each
/// hold an `Arc` of this. Public only because it is [`ChunkStore`]'s
/// `Deref` target; every field and method is crate-private.
#[doc(hidden)]
pub struct StoreCore {
    pub(crate) inner: Mutex<Inner>,
    pub(crate) reads: ReadPath,
    /// Group-commit coordinator; `None` runs the paper's one-commit-one-
    /// flush path (`group_commit = false` or `commit_batch_max <= 1`).
    pub(crate) batcher: Option<crate::batcher::CommitBatcher>,
    /// Shared state of the background maintenance runtime (present even
    /// when disabled; the flags inside make everything a no-op then).
    pub(crate) maint: MaintenanceShared,
}

/// The trusted chunk store.
///
/// Mutations are serialized behind one lock, per the paper's simple
/// mutual-exclusion concurrency model. Reads additionally take a sharded
/// fast path ([`crate::readpath`]) that serves validated chunks without
/// the engine lock; any miss or anomaly falls back to the locked path.
pub struct ChunkStore {
    /// Background maintenance thread; declared before `core` so shutdown
    /// and join happen before the facade's core reference goes away.
    maintenance: Option<MaintenanceService>,
    core: Arc<StoreCore>,
}

impl std::ops::Deref for ChunkStore {
    type Target = StoreCore;

    fn deref(&self) -> &StoreCore {
        &self.core
    }
}

impl std::fmt::Debug for ChunkStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkStore").finish_non_exhaustive()
    }
}

impl ChunkStore {
    /// Formats a fresh store on `store` and returns it ready for use.
    ///
    /// # Errors
    ///
    /// Fails on storage or key-length errors.
    pub fn create(
        store: SharedUntrusted,
        trusted: TrustedBackend,
        secret: SecretKey,
        config: ChunkStoreConfig,
    ) -> Result<ChunkStore> {
        let sys_params = CryptoParams {
            cipher: config.system_cipher,
            hash: config.system_hash,
            key: secret,
        };
        let system = Arc::new(sys_params.runtime()?);
        let mut sys_leader = SystemLeader::new(sys_params, config.segment_size);
        sys_leader.log.num_segments = 1;
        sys_leader.log.utilization.push(0);
        let log = SegmentedLog::new(
            Arc::clone(&store),
            &system,
            config.segment_size,
            config.max_segments,
            0,
            0,
        );
        let hashes = LogHashes::new(config.system_hash);
        // Continue from any pre-existing trusted counter so reformatting a
        // platform with a used (non-decrementable) counter still works.
        let base_count = match (&config.validation, &trusted) {
            (ValidationMode::Counter { .. }, TrustedBackend::Counter(c)) => c.get()?,
            _ => 0,
        };
        let mut inner = Inner {
            map_cache: MapCache::new(config.map_cache_capacity),
            lazy: crate::engine::dirty::DirtyTreeAccumulator::new(config.lazy_integrity),
            config,
            system,
            trusted,
            log,
            hashes,
            sys_alloc_next: sys_leader.map.next_rank,
            sys_alloc_free: sys_leader.map.free_ranks.clone(),
            sys_reserved: std::collections::HashSet::new(),
            sys_leader,
            leaders: HashMap::new(),
            commit_count: base_count,
            trusted_count: base_count,
            leader_version: None,
            superblock: Superblock {
                epoch: 0,
                current_leader: 0,
                prev_leader: 0,
            },
            stats: ChunkStoreStats::default(),
            health: StoreHealth::Live,
            wrote_log: false,
        };
        // The initial checkpoint materializes the empty database: leader,
        // commit chunk / trusted hash, and superblock.
        inner.checkpoint()?;
        Ok(ChunkStore::assemble(inner))
    }

    /// Wraps a fully built engine with its concurrent read path and (when
    /// configured) the background maintenance thread.
    fn assemble(inner: Inner) -> ChunkStore {
        let reads = ReadPath::new(
            Arc::clone(inner.log.store()),
            Arc::clone(&inner.system),
            inner.config.read_shards,
            inner.config.read_cache_chunks,
        );
        reads.set_health(&inner.health);
        let batcher = if inner.config.group_commit && inner.config.commit_batch_max > 1 {
            Some(crate::batcher::CommitBatcher::new(
                inner.config.commit_batch_max,
            ))
        } else {
            None
        };
        let maint = MaintenanceShared::new(&inner.config);
        let background = inner.config.background_maintenance;
        let core = Arc::new(StoreCore {
            inner: Mutex::new(inner),
            reads,
            batcher,
            maint,
        });
        {
            // Seed the maintenance mirrors from the freshly built engine.
            let inner = core.inner.lock();
            core.note_engine_state(&inner);
        }
        let maintenance = if background {
            Some(MaintenanceService::spawn(Arc::clone(&core)))
        } else {
            None
        };
        ChunkStore { maintenance, core }
    }

    /// Opens an existing store, running crash recovery (§4.8) and
    /// validating the residual log against the tamper-resistant store.
    ///
    /// # Errors
    ///
    /// Returns a tamper-detection error when validation fails, or storage
    /// errors.
    pub fn open(
        store: SharedUntrusted,
        trusted: TrustedBackend,
        secret: SecretKey,
        config: ChunkStoreConfig,
    ) -> Result<ChunkStore> {
        let inner = crate::recovery::recover(store, trusted, secret, config)?;
        Ok(ChunkStore::assemble(inner))
    }

    /// Returns an unallocated partition id (§5.1 `Allocate`). The
    /// allocation is not persistent until the partition is written.
    ///
    /// # Errors
    ///
    /// Fails if the store is not live (degraded or poisoned).
    pub fn allocate_partition(&self) -> Result<PartitionId> {
        let _t = metrics::span(modules::CHUNK_STORE);
        let mut inner = self.inner.lock();
        inner.check_writable()?;
        inner.allocate_partition()
    }

    /// Returns an unallocated chunk id in `partition` (§4.1 `Allocate`).
    ///
    /// # Errors
    ///
    /// Fails if the partition does not exist.
    pub fn allocate_chunk(&self, partition: PartitionId) -> Result<ChunkId> {
        let _t = metrics::span(modules::CHUNK_STORE);
        let mut inner = self.inner.lock();
        inner.check_writable()?;
        inner.allocate_chunk(partition)
    }

    /// Reads the last written state of a chunk, locating and validating it
    /// through the chunk map (§4.5).
    ///
    /// # Errors
    ///
    /// Signals if the chunk is not written, and tamper detection if
    /// validation fails.
    pub fn read(&self, id: ChunkId) -> Result<Vec<u8>> {
        let _t = metrics::span(modules::CHUNK_STORE);
        // Fast path: shard caches only, no engine lock. Any miss or
        // anomaly (including benign races with the cleaner) falls through
        // to the authoritative locked path below.
        if let Some(body) = self.reads.try_fast(id) {
            return Ok(body);
        }
        let mut inner = self.inner.lock();
        inner.check_readable()?;
        let body = inner.read_chunk(id)?;
        self.reads.note_fallback();
        // Publish for future fast reads while the engine lock is still
        // held, so the published descriptor is current at this instant.
        if let (Ok(desc), Ok(crypto)) = (inner.get_descriptor(id), inner.crypto_for(id.partition)) {
            self.reads.publish(id, desc, &crypto, Some(&body));
        }
        Ok(body)
    }

    /// Atomically applies a group of operations (§4.1 `Commit`).
    ///
    /// # Errors
    ///
    /// Validation errors leave the store unchanged and live. A storage
    /// failure mid-commit rolls the in-memory state back to the pre-commit
    /// snapshot; if any bytes had already reached the log the store drops
    /// to read-only degraded mode (see [`ChunkStore::try_heal`]), otherwise
    /// it stays live. Only integrity violations poison the store.
    pub fn commit(&self, ops: Vec<CommitOp>) -> Result<()> {
        let _t = metrics::span(modules::CHUNK_STORE);
        // Under background maintenance, a bounded log below its low-water
        // mark throttles committers here (bounded wait) before they take
        // the engine lock.
        self.admission_gate();
        if self.batcher.is_some() {
            // Group commit: enqueue and let a leader thread batch this
            // commit with its contemporaries (see `crate::batcher`).
            return self.commit_batched(ops);
        }
        // Collect the chunk ids this commit can change *before* the ops
        // are consumed; partition deallocations can invalidate arbitrary
        // shard entries (ids may be reused), so they clear everything.
        let mut touched: Vec<ChunkId> = Vec::new();
        let mut clear_all = false;
        for op in &ops {
            match op {
                CommitOp::WriteChunk { id, .. } | CommitOp::DeallocChunk { id } => {
                    touched.push(*id);
                }
                CommitOp::DeallocPartition { .. } => clear_all = true,
                CommitOp::CreatePartition { .. } | CommitOp::CopyPartition { .. } => {}
            }
        }
        let mut inner = self.inner.lock();
        inner.check_writable()?;
        let result = inner.commit(ops);
        // Scrub shard state while still holding the engine lock, on every
        // outcome: a commit can be durably applied even when the call
        // returns an error (e.g. the follow-on checkpoint failed), so the
        // only safe rule is "touched ids never survive a commit attempt".
        if clear_all {
            self.reads.clear_all();
        } else {
            for id in &touched {
                self.reads.invalidate(*id);
            }
        }
        if result.is_ok() {
            for id in &touched {
                if let (Ok(desc), Ok(crypto)) =
                    (inner.get_descriptor(*id), inner.crypto_for(id.partition))
                {
                    self.reads.publish(*id, desc, &crypto, None);
                }
            }
        }
        self.reads.set_health(&inner.health);
        self.note_engine_state(&inner);
        result
    }

    /// Forces a checkpoint (§4.7), consolidating buffered chunk-map updates.
    ///
    /// # Errors
    ///
    /// A storage failure rolls back and degrades or stays live exactly as
    /// in [`ChunkStore::commit`]; integrity violations poison.
    pub fn checkpoint(&self) -> Result<()> {
        let _t = metrics::span(modules::CHUNK_STORE);
        let mut inner = self.inner.lock();
        inner.check_writable()?;
        // A checkpoint rewrites map chunks and leaders but never changes a
        // data chunk's state, so published shard entries stay valid.
        let result = inner.checkpoint();
        self.reads.set_health(&inner.health);
        self.note_engine_state(&inner);
        result
    }

    /// Runs the log cleaner over up to `max_segments` segments (§4.9.5),
    /// returning how many were reclaimed.
    ///
    /// # Errors
    ///
    /// A storage failure rolls back and degrades or stays live exactly as
    /// in [`ChunkStore::commit`]; revalidation failures signal tamper and
    /// poison the store.
    pub fn clean(&self, max_segments: usize) -> Result<usize> {
        let _t = metrics::span(modules::CHUNK_STORE);
        self.clean_locked(max_segments, false)
    }

    /// Chunk positions whose state differs between two partitions (§5.1
    /// `Diff`). Commonly both are snapshots of the same partition.
    ///
    /// # Errors
    ///
    /// Fails if either partition does not exist.
    pub fn diff(&self, old: PartitionId, new: PartitionId) -> Result<Vec<DiffEntry>> {
        let _t = metrics::span(modules::CHUNK_STORE);
        let mut inner = self.inner.lock();
        inner.check_readable()?;
        inner.diff(old, new)
    }

    /// The written data-chunk ranks of a partition, ascending (used by full
    /// backups and integrity sweeps).
    ///
    /// # Errors
    ///
    /// Fails if the partition does not exist.
    pub fn written_ranks(&self, partition: PartitionId) -> Result<Vec<u64>> {
        let _t = metrics::span(modules::CHUNK_STORE);
        let mut inner = self.inner.lock();
        inner.check_readable()?;
        inner.written_ranks(partition)
    }

    /// The cryptographic parameters of a partition (cipher and hash kinds
    /// only; the key is not exposed).
    ///
    /// # Errors
    ///
    /// Fails if the partition does not exist.
    pub fn partition_kinds(
        &self,
        partition: PartitionId,
    ) -> Result<(tdb_crypto::CipherKind, tdb_crypto::HashKind)> {
        let mut inner = self.inner.lock();
        inner.check_readable()?;
        let entry = inner.leader_entry(partition)?;
        Ok((entry.leader.params.cipher, entry.leader.params.hash))
    }

    /// Whether `partition` currently exists (is written).
    pub fn partition_exists(&self, partition: PartitionId) -> bool {
        let mut inner = self.inner.lock();
        if inner.check_readable().is_err() {
            return false;
        }
        inner.leader_entry(partition).is_ok()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ChunkStoreStats {
        let mut stats = {
            let inner = self.inner.lock();
            let mut stats = inner.stats;
            let (appends, runs, bytes) = inner.log.coalesce_counters();
            stats.log_coalesced_bytes = bytes;
            stats.log_writes_coalesced = appends.saturating_sub(runs);
            stats.lazy_hash_hits = inner.lazy.hits;
            stats.lazy_hash_recomputes = inner.lazy.recomputes;
            stats.lazy_invalidations = inner.lazy.invalidations;
            stats
        };
        let (hits, fallbacks, contention, decompress_fallbacks) = self.reads.counters();
        stats.read_fast_hits = hits;
        stats.read_fallbacks = fallbacks;
        stats.read_shard_contention = contention;
        stats.decompress_fallbacks = decompress_fallbacks;
        stats.maintenance_wakeups = self.maint.wakeups.load(Ordering::Relaxed);
        stats.commit_throttle_waits = self.maint.throttle_waits.load(Ordering::Relaxed);
        stats
    }

    /// Current health: live, degraded (read-only), or poisoned.
    pub fn health(&self) -> StoreHealth {
        self.inner.lock().health.clone()
    }

    /// Whether this store runs the background maintenance thread.
    pub fn background_maintenance(&self) -> bool {
        self.maintenance.is_some()
    }

    /// Lock-free estimate of the bounded log's free segments (headroom to
    /// `max_segments` plus the free list), or `None` when the log is
    /// unbounded. Callers running their own maintenance poll this to
    /// decide when to checkpoint and clean — waiting for a commit to fail
    /// with [`CoreError::OutOfSpace`](crate::errors::CoreError::OutOfSpace)
    /// is too late: a completely full log has no room left to relocate
    /// live versions into.
    pub fn free_segment_estimate(&self) -> Option<u64> {
        self.maint.free_segments_if_bounded()
    }

    /// Drops every cached descriptor and validated body from the read
    /// shards (partition crypto handles are kept). Until the shards
    /// re-warm, reads fall back to the locked, storage-backed path. For
    /// tests and benchmarks that need every read to touch untrusted
    /// storage, and for callers shedding memory.
    pub fn drop_read_cache(&self) {
        self.reads.clear_shards();
    }

    /// Attempts to return a degraded store to live service without the
    /// full reopen-and-revalidate path: the region between the validated
    /// log tail and the end of the tail segment (where a failed mutation
    /// may have left torn bytes) is scrubbed to zero and read back. On
    /// success the store is live again; the in-memory state was already
    /// rolled back to the last successful mutation when degradation was
    /// entered.
    ///
    /// A no-op on a live store.
    ///
    /// # Errors
    ///
    /// Fails if the store is poisoned (reopen instead) or the device still
    /// refuses I/O — the store stays degraded and the call can be retried.
    pub fn try_heal(&self) -> Result<()> {
        let _t = metrics::span(modules::CHUNK_STORE);
        let mut inner = self.inner.lock();
        let result = inner.try_heal();
        self.reads.set_health(&inner.health);
        result
    }

    /// Total bytes the store occupies (superblock + all segments).
    pub fn stored_size(&self) -> u64 {
        let inner = self.inner.lock();
        crate::log::SEGMENT_BASE
            + u64::from(inner.sys_leader.log.num_segments)
                * u64::from(inner.sys_leader.log.segment_size)
    }

    /// Live (current-version) bytes per segment, for space experiments.
    pub fn utilization(&self) -> Vec<u32> {
        self.inner.lock().sys_leader.log.utilization.clone()
    }

    /// Checkpoints and flushes; call before dropping for a clean shutdown.
    ///
    /// # Errors
    ///
    /// Fails like [`ChunkStore::checkpoint`].
    pub fn close(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.check_writable()?;
        let result = inner.checkpoint();
        self.reads.set_health(&inner.health);
        self.note_engine_state(&inner);
        result
    }

    /// Runs `f` with the engine lock held (crate-internal escape hatch for
    /// the backup store).
    pub(crate) fn with_inner<R>(&self, f: impl FnOnce(&mut Inner) -> Result<R>) -> Result<R> {
        let mut inner = self.inner.lock();
        inner.check_readable()?;
        f(&mut inner)
    }
}

impl Inner {
    /// Gate for mutating operations: only a live store may mutate.
    pub(crate) fn check_writable(&self) -> Result<()> {
        match &self.health {
            StoreHealth::Live => Ok(()),
            StoreHealth::Degraded { reason } => Err(CoreError::DegradedMode(reason.clone())),
            StoreHealth::Poisoned { reason } => Err(CoreError::Poisoned(reason.clone())),
        }
    }

    /// Gate for read-only operations: reads stay available in degraded
    /// mode (every read is still validated through the map tree), and are
    /// refused only once integrity is in doubt.
    pub(crate) fn check_readable(&self) -> Result<()> {
        match &self.health {
            StoreHealth::Poisoned { reason } => Err(CoreError::Poisoned(reason.clone())),
            _ => Ok(()),
        }
    }

    /// Classifies a failed mutation and moves the health state machine:
    /// integrity violations poison; storage failures roll back to `snap`
    /// and degrade only when log bytes were already written.
    pub(crate) fn fail_mutation(&mut self, snap: EngineSnapshot, e: &CoreError, what: &str) {
        if e.fault_class() == FaultClass::Integrity {
            // The in-memory state is rolled back for hygiene, but no
            // validated path may run again until a reopen revalidates.
            self.restore(snap);
            self.enter_poisoned(format!("integrity violation during {what}: {e}"));
            return;
        }
        let wrote = self.wrote_log;
        self.restore(snap);
        if wrote {
            self.enter_degraded(format!(
                "storage failure during {what} after log bytes were written: {e}"
            ));
        }
    }

    pub(crate) fn enter_degraded(&mut self, reason: String) {
        if self.health.is_poisoned() {
            return;
        }
        self.stats.degraded_entries += 1;
        metrics::count(counters::DEGRADED_ENTRIES);
        self.health = StoreHealth::Degraded { reason };
    }

    pub(crate) fn enter_poisoned(&mut self, reason: String) {
        self.stats.poison_events += 1;
        metrics::count(counters::POISON_EVENTS);
        self.health = StoreHealth::Poisoned { reason };
    }

    /// Fast-path repair of a degraded store: instead of a full reopen
    /// (which replays and revalidates the whole residual log), scrub the
    /// possibly-torn region between the validated tail and the end of the
    /// tail segment, verify the device takes writes again, and go live.
    fn try_heal(&mut self) -> Result<()> {
        match &self.health {
            StoreHealth::Live => return Ok(()),
            StoreHealth::Poisoned { reason } => return Err(CoreError::Poisoned(reason.clone())),
            StoreHealth::Degraded { .. } => {}
        }
        self.stats.heal_attempts += 1;
        metrics::count(counters::HEAL_ATTEMPTS);
        // Scrubbing drops the durable-but-unacknowledged log suffix. In
        // counter mode that is only sound while the trusted counter has not
        // already counted that suffix: with the counter ahead of the
        // rolled-back commit count, dropping it would make the next
        // validation read as a replay (§4.8.2.2). Such a store needs the
        // full reopen, which *adopts* the suffix by rolling forward.
        if let TrustedBackend::Counter(c) = &self.trusted {
            let actual = {
                let _t = metrics::span(modules::TRUSTED_STORE);
                c.get()?
            };
            if actual > self.commit_count {
                return Err(CoreError::DegradedMode(format!(
                    "trusted counter ({actual}) is ahead of the rolled-back \
                     commit count ({}); reopen to roll the log forward",
                    self.commit_count
                )));
            }
        }
        let tail = self.log.tail_location();
        let seg_start = self.log.segment_offset(self.log.tail_segment());
        let scrub_len = (u64::from(self.log.segment_size()) - (tail - seg_start)) as usize;
        if scrub_len > 0 {
            let store = Arc::clone(self.log.store());
            let zeros = vec![0u8; scrub_len];
            store.write_at(tail, &zeros)?;
            store.flush()?;
            let mut back = vec![0u8; scrub_len];
            store.read_at(tail, &mut back)?;
            if back.iter().any(|b| *b != 0) {
                return Err(CoreError::Corrupt(
                    "tail scrub read-back mismatch; device unreliable".into(),
                ));
            }
        }
        self.health = StoreHealth::Live;
        self.stats.heals += 1;
        metrics::count(counters::HEALS);
        Ok(())
    }

    pub(crate) fn fanout(&self) -> u64 {
        u64::from(self.config.fanout)
    }
}

impl ChunkStore {
    /// Test-only descriptor peek (debug builds).
    #[doc(hidden)]
    pub fn debug_descriptor(&self, id: ChunkId) -> Result<Descriptor> {
        let mut inner = self.inner.lock();
        inner.get_descriptor(id)
    }
}
