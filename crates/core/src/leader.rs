//! Partition leaders and the system leader (§4.3, §5.2).
//!
//! "The chunk at the top contains the descriptor of the root map chunk and
//! some additional metadata needed to manage the tree; we call it the
//! *leader* chunk." Every partition has a leader holding its position-map
//! root, tree height, id-allocation state, and cryptographic parameters;
//! partition leaders are data chunks of the system partition. The *system
//! leader* additionally carries log-management state (segment allocation
//! and utilization) and is the head of the residual log (§5.4).

use tdb_crypto::{CipherKind, HashKind};

use crate::codec::{Dec, Enc};
use crate::descriptor::Descriptor;
use crate::errors::{CoreError, Result};
use crate::ids::PartitionId;
use crate::params::CryptoParams;

/// Maximum number of free ranks remembered per partition. Beyond this,
/// deallocated ids are leaked (ids are 64-bit; the map stays compact enough
/// because the free list covers the common churn patterns).
pub const MAX_FREE_RANKS: usize = 4096;

/// Per-partition tree-management state: the leader chunk's content.
#[derive(Debug, Clone)]
pub struct PartitionLeader {
    /// Cryptographic parameters protecting the partition's chunks.
    pub params: CryptoParams,
    /// Height of the position-map tree (≥ 1).
    pub height: u8,
    /// Lowest never-allocated data rank.
    pub next_rank: u64,
    /// Descriptor of the root map chunk (at `height`).
    pub root: Descriptor,
    /// Deallocated data ranks available for reuse (§4.4), newest last.
    pub free_ranks: Vec<u64>,
    /// Direct copies of this partition (§5.5: "each partition leader stores
    /// the ids of its direct copies").
    pub copies: Vec<PartitionId>,
    /// The partition this one was copied from, if any.
    pub source: Option<PartitionId>,
}

impl PartitionLeader {
    /// A fresh, empty partition with the given parameters.
    pub fn new(params: CryptoParams) -> PartitionLeader {
        PartitionLeader {
            params,
            height: 1,
            next_rank: 0,
            root: Descriptor::unallocated(),
            free_ranks: Vec::new(),
            copies: Vec::new(),
            source: None,
        }
    }

    /// The copy-on-write duplicate of this leader for a partition copy
    /// (§5.3): shares the root (and hence all map and data chunks) and the
    /// cryptographic parameters; starts with no copies of its own.
    pub fn copied(&self, source: PartitionId) -> PartitionLeader {
        PartitionLeader {
            params: self.params.clone(),
            height: self.height,
            next_rank: self.next_rank,
            root: self.root,
            free_ranks: self.free_ranks.clone(),
            copies: Vec::new(),
            source: Some(source),
        }
    }

    /// Records a deallocated rank for reuse, bounded by [`MAX_FREE_RANKS`].
    pub fn push_free(&mut self, rank: u64) {
        if self.free_ranks.len() < MAX_FREE_RANKS {
            self.free_ranks.push(rank);
        }
    }

    /// Removes `rank` from the free list if present (recovery replays a
    /// write of a previously deallocated id).
    pub fn unfree(&mut self, rank: u64) {
        if let Some(i) = self.free_ranks.iter().rposition(|&r| r == rank) {
            self.free_ranks.swap_remove(i);
        }
    }

    /// Serializes the leader body (stored encrypted under the *system*
    /// partition's cipher, carrying this partition's key inside — the
    /// cipher link of §5.2).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(128 + self.free_ranks.len() * 8);
        self.params.encode(&mut e);
        e.u8(self.height);
        e.u64(self.next_rank);
        // The root descriptor uses this partition's hash length.
        self.root.encode(&mut e, self.params.hash.digest_len());
        e.u32(self.free_ranks.len() as u32);
        for &r in &self.free_ranks {
            e.u64(r);
        }
        e.u32(self.copies.len() as u32);
        for c in &self.copies {
            e.u32(c.0);
        }
        match self.source {
            Some(s) => {
                e.u8(1);
                e.u32(s.0);
            }
            None => {
                e.u8(0);
            }
        }
        e.finish()
    }

    /// Inverse of [`PartitionLeader::encode`].
    ///
    /// # Errors
    ///
    /// Fails on structural corruption.
    pub fn decode(body: &[u8]) -> Result<PartitionLeader> {
        let mut d = Dec::new(body);
        let leader = Self::decode_from(&mut d)?;
        d.expect_done("partition leader")?;
        Ok(leader)
    }

    fn decode_from(d: &mut Dec<'_>) -> Result<PartitionLeader> {
        let params = CryptoParams::decode(d)?;
        let height = d.u8()?;
        if height == 0 {
            return Err(CoreError::Corrupt("leader height 0".into()));
        }
        let next_rank = d.u64()?;
        let root = Descriptor::decode(d, params.hash.digest_len())?;
        let n_free = d.u32()? as usize;
        if n_free > MAX_FREE_RANKS {
            return Err(CoreError::Corrupt("oversized free list".into()));
        }
        let mut free_ranks = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            free_ranks.push(d.u64()?);
        }
        let n_copies = d.u32()? as usize;
        if n_copies > u32::MAX as usize / 4 {
            return Err(CoreError::Corrupt("oversized copies list".into()));
        }
        let mut copies = Vec::with_capacity(n_copies.min(1024));
        for _ in 0..n_copies {
            copies.push(PartitionId(d.u32()?));
        }
        let source = if d.u8()? == 1 {
            Some(PartitionId(d.u32()?))
        } else {
            None
        };
        Ok(PartitionLeader {
            params,
            height,
            next_rank,
            root,
            free_ranks,
            copies,
            source,
        })
    }
}

/// Log-management state carried by the system leader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogState {
    /// Fixed segment size in bytes (§4.9.4).
    pub segment_size: u32,
    /// Number of segment slots that exist in the untrusted store.
    pub num_segments: u32,
    /// Segment indices available for reuse (produced by the cleaner).
    pub free_segments: Vec<u32>,
    /// Live bytes per segment, indexed by segment number: the utilization
    /// metric guiding cleaner segment selection (§4.9.5).
    pub utilization: Vec<u32>,
}

impl LogState {
    /// Initial log state for a fresh store.
    pub fn new(segment_size: u32) -> LogState {
        LogState {
            segment_size,
            num_segments: 0,
            free_segments: Vec::new(),
            utilization: Vec::new(),
        }
    }

    fn encode(&self, e: &mut Enc) {
        e.u32(self.segment_size);
        e.u32(self.num_segments);
        e.u32(self.free_segments.len() as u32);
        for &s in &self.free_segments {
            e.u32(s);
        }
        e.u32(self.utilization.len() as u32);
        for &u in &self.utilization {
            e.u32(u);
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<LogState> {
        let segment_size = d.u32()?;
        let num_segments = d.u32()?;
        let n_free = d.u32()? as usize;
        if n_free > num_segments as usize {
            return Err(CoreError::Corrupt(
                "free segments exceed segment count".into(),
            ));
        }
        let mut free_segments = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            free_segments.push(d.u32()?);
        }
        let n_util = d.u32()? as usize;
        if n_util > num_segments as usize {
            return Err(CoreError::Corrupt(
                "utilization table exceeds segment count".into(),
            ));
        }
        let mut utilization = Vec::with_capacity(n_util);
        for _ in 0..n_util {
            utilization.push(d.u32()?);
        }
        Ok(LogState {
            segment_size,
            num_segments,
            free_segments,
            utilization,
        })
    }
}

/// The system leader: head of the residual log (§5.4).
///
/// Combines the tree-management state for the system partition's position
/// map (whose data chunks are the partition leaders, i.e. the *partition
/// map* of Figure 7) with log-management state.
#[derive(Debug, Clone)]
pub struct SystemLeader {
    /// Tree state for the partition map. `params` here are the system
    /// partition's cipher/hash and the secret-store key; the key itself is
    /// *not* serialized (the secret store is the root of trust).
    pub map: PartitionLeader,
    /// Log-management state.
    pub log: LogState,
    /// Monotonically increasing checkpoint sequence number.
    pub checkpoint_seq: u64,
}

impl SystemLeader {
    /// A fresh system leader.
    pub fn new(params: CryptoParams, segment_size: u32) -> SystemLeader {
        SystemLeader {
            map: PartitionLeader::new(params),
            log: LogState::new(segment_size),
            checkpoint_seq: 0,
        }
    }

    /// Serializes the system leader body. Unlike partition leaders, the
    /// system key is replaced by an empty placeholder: the secret-store key
    /// must never be written to untrusted storage, even encrypted under
    /// itself.
    pub fn encode(&self) -> Vec<u8> {
        let mut scrubbed = self.map.clone();
        scrubbed.params = CryptoParams {
            cipher: self.map.params.cipher,
            hash: self.map.params.hash,
            key: tdb_crypto::SecretKey::new(vec![0u8; self.map.params.cipher.key_len()]),
        };
        let mut e = Enc::new();
        e.bytes(&scrubbed.encode());
        self.log.encode(&mut e);
        e.u64(self.checkpoint_seq);
        e.finish()
    }

    /// Inverse of [`SystemLeader::encode`]; reinstates the secret-store key
    /// passed by the caller.
    ///
    /// # Errors
    ///
    /// Fails on structural corruption or if the recorded cipher/hash do not
    /// match the platform's system parameters.
    pub fn decode(body: &[u8], system_params: &CryptoParams) -> Result<SystemLeader> {
        let mut d = Dec::new(body);
        let map_body = d.bytes()?;
        let mut map = PartitionLeader::decode(map_body)?;
        if map.params.cipher != system_params.cipher || map.params.hash != system_params.hash {
            return Err(CoreError::Corrupt(
                "system leader records different system crypto parameters".into(),
            ));
        }
        map.params = system_params.clone();
        let log = LogState::decode(&mut d)?;
        let checkpoint_seq = d.u64()?;
        d.expect_done("system leader")?;
        Ok(SystemLeader {
            map,
            log,
            checkpoint_seq,
        })
    }
}

/// Convenience: the paper's fixed system cipher/hash (§5.2).
pub fn paper_system_kinds() -> (CipherKind, HashKind) {
    (CipherKind::TripleDes, HashKind::Sha1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_crypto::HashValue;

    fn params() -> CryptoParams {
        CryptoParams::generate(CipherKind::Des, HashKind::Sha1)
    }

    #[test]
    fn partition_leader_roundtrip() {
        let mut l = PartitionLeader::new(params());
        l.height = 3;
        l.next_rank = 500;
        l.root = Descriptor::written(42, 10, 8, HashValue::new(&[3u8; 20]));
        l.free_ranks = vec![7, 9, 12];
        l.copies = vec![PartitionId(4), PartitionId(9)];
        l.source = Some(PartitionId(2));
        let body = l.encode();
        let back = PartitionLeader::decode(&body).unwrap();
        assert_eq!(back.height, 3);
        assert_eq!(back.next_rank, 500);
        assert_eq!(back.root, l.root);
        assert_eq!(back.free_ranks, vec![7, 9, 12]);
        assert_eq!(back.copies, vec![PartitionId(4), PartitionId(9)]);
        assert_eq!(back.source, Some(PartitionId(2)));
        assert_eq!(back.params.key.as_bytes(), l.params.key.as_bytes());
    }

    #[test]
    fn copied_leader_shares_root_not_copies() {
        let mut l = PartitionLeader::new(params());
        l.root = Descriptor::written(1, 2, 3, HashValue::new(&[1u8; 20]));
        l.copies = vec![PartitionId(8)];
        let c = l.copied(PartitionId(3));
        assert_eq!(c.root, l.root);
        assert!(c.copies.is_empty());
        assert_eq!(c.source, Some(PartitionId(3)));
        assert_eq!(c.params.key.as_bytes(), l.params.key.as_bytes());
    }

    #[test]
    fn free_rank_push_unfree() {
        let mut l = PartitionLeader::new(params());
        l.push_free(5);
        l.push_free(6);
        l.push_free(5);
        l.unfree(5); // Removes the most recent 5.
        assert_eq!(l.free_ranks.iter().filter(|&&r| r == 5).count(), 1);
        l.unfree(99); // No-op.
        assert_eq!(l.free_ranks.len(), 2);
    }

    #[test]
    fn free_list_is_bounded() {
        let mut l = PartitionLeader::new(params());
        for r in 0..(MAX_FREE_RANKS as u64 + 100) {
            l.push_free(r);
        }
        assert_eq!(l.free_ranks.len(), MAX_FREE_RANKS);
    }

    #[test]
    fn system_leader_roundtrip_scrubs_key() {
        let sys_params = CryptoParams::paper_system(tdb_crypto::SecretKey::random(24));
        let mut sl = SystemLeader::new(sys_params.clone(), 65536);
        sl.map.next_rank = 3;
        sl.log.num_segments = 5;
        sl.log.free_segments = vec![2];
        sl.log.utilization = vec![100, 200, 0, 50, 60];
        sl.checkpoint_seq = 9;
        let body = sl.encode();

        // The secret key must not appear in the serialized body.
        let key = sys_params.key.as_bytes();
        assert!(
            !body.windows(key.len()).any(|w| w == key),
            "secret-store key leaked into system leader body"
        );

        let back = SystemLeader::decode(&body, &sys_params).unwrap();
        assert_eq!(back.map.next_rank, 3);
        assert_eq!(back.log, sl.log);
        assert_eq!(back.checkpoint_seq, 9);
        assert_eq!(back.map.params.key.as_bytes(), key);
    }

    #[test]
    fn system_leader_rejects_mismatched_params() {
        let a = CryptoParams::paper_system(tdb_crypto::SecretKey::random(24));
        let sl = SystemLeader::new(a.clone(), 65536);
        let body = sl.encode();
        let other = CryptoParams {
            cipher: CipherKind::Aes256,
            hash: HashKind::Sha256,
            key: tdb_crypto::SecretKey::random(32),
        };
        assert!(SystemLeader::decode(&body, &other).is_err());
    }

    #[test]
    fn corrupt_leader_rejected() {
        let l = PartitionLeader::new(params());
        let mut body = l.encode();
        body.truncate(body.len() - 1);
        assert!(PartitionLeader::decode(&body).is_err());
    }
}
