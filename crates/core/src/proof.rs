//! Client-verifiable read proofs.
//!
//! The chunk map *is* a Merkle tree — "an arrow from descriptor to chunk is
//! simultaneously a location link and a hash link" (§4.3) — so the path of
//! map-chunk bodies from a chunk up to the partition root is a membership
//! proof: a client holding only the partition's *root digest* can check
//! that a returned chunk body is exactly the one the committed tree vouches
//! for. This is the verifiable-read story of ledger databases (GlassDB and
//! authenticated key-value stores in PAPERS.md) grafted onto TDB's existing
//! machinery.
//!
//! Because checkpointing is deferred (§4.7), the *persisted* ancestor
//! descriptors can be stale between checkpoints; proofs therefore carry the
//! **effective** map-chunk bodies — what a checkpoint would write now — and
//! the root digest is the hash of the effective root body. Right after a
//! checkpoint the effective root digest equals the persisted root
//! descriptor's hash. Any later commit changes the digest (locations are
//! part of map bodies), so a proof is valid for the committed state it was
//! extracted against, identified by its root digest.
//!
//! Verification needs no keys: chunk-state hashes are plain collision-
//! resistant digests (encryption is a separate, orthogonal link). The
//! verifier is a pure function of `(proof, body, root digest)`.

use tdb_crypto::{HashKind, HashValue};

use crate::codec::{Dec, Enc};
use crate::descriptor::MapChunk;
use crate::errors::{CoreError, Result};
use crate::ids::{ChunkId, PartitionId, Position};
use crate::store::ChunkStore;

/// One level of a read proof: the effective body of the map chunk holding
/// the previous level's descriptor, and the slot index of that descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofLevel {
    /// Encoded effective map-chunk body (exactly `fanout` slots).
    pub body: Vec<u8>,
    /// Slot within `body` holding the child's descriptor.
    pub slot: usize,
}

/// A Merkle membership proof for one chunk against a partition root digest.
///
/// Produced by [`ChunkStore::read_with_proof`]; checked by
/// [`verify_read_proof`] with no access to the store or its keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadProof {
    /// The chunk this proof vouches for.
    pub id: ChunkId,
    /// The partition's hash function (per-partition crypto, §5.2).
    pub hash: HashKind,
    /// Descriptors per map chunk.
    pub fanout: u32,
    /// Map-chunk bodies from the chunk's parent (level 1) up to the
    /// partition root. Empty when the tree has height 0 (the chunk is the
    /// root itself).
    pub levels: Vec<ProofLevel>,
    /// The effective root digest this proof was extracted against.
    pub root: HashValue,
    /// The stored compressed envelope of the leaf body, present only when
    /// the version was stored compressed ([`crate::compress`]). Descriptor
    /// hashes cover stored bytes, so the verifier hashes this envelope —
    /// and then demands it decompress to exactly the plaintext handed to
    /// it, keeping the proof honest about both representations.
    pub stored_body: Option<Vec<u8>>,
}

impl ReadProof {
    /// Serializes the proof for transport to a client.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(self.id.partition.0);
        e.u8(self.id.pos.height);
        e.u64(self.id.pos.rank);
        e.u8(self.hash.tag());
        e.u32(self.fanout);
        e.bytes(self.root.as_bytes());
        e.u32(self.levels.len() as u32);
        for level in &self.levels {
            e.u32(level.slot as u32);
            e.bytes(&level.body);
        }
        match &self.stored_body {
            Some(stored) => {
                e.u8(1);
                e.bytes(stored);
            }
            None => {
                e.u8(0);
            }
        }
        e.finish()
    }

    /// Inverse of [`ReadProof::encode`].
    ///
    /// # Errors
    ///
    /// Fails on truncation or an unknown hash tag.
    pub fn decode(buf: &[u8]) -> Result<ReadProof> {
        let mut d = Dec::new(buf);
        let partition = PartitionId(d.u32()?);
        let height = d.u8()?;
        let rank = d.u64()?;
        let hash = HashKind::from_tag(d.u8()?)
            .ok_or_else(|| CoreError::Corrupt("unknown hash tag in proof".into()))?;
        let fanout = d.u32()?;
        let root_bytes = d.bytes()?;
        if root_bytes.len() != hash.digest_len() {
            return Err(CoreError::Corrupt("proof root digest length".into()));
        }
        let root = HashValue::new(root_bytes);
        let count = d.u32()? as usize;
        let mut levels = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            let slot = d.u32()? as usize;
            let body = d.bytes()?.to_vec();
            levels.push(ProofLevel { body, slot });
        }
        let stored_body = match d.u8()? {
            0 => None,
            1 => Some(d.bytes()?.to_vec()),
            _ => return Err(CoreError::Corrupt("proof stored-body flag".into())),
        };
        d.expect_done("read proof")?;
        Ok(ReadProof {
            id: ChunkId::new(partition, Position { height, rank }),
            hash,
            fanout,
            levels,
            root,
            stored_body,
        })
    }
}

/// Checks a [`ReadProof`] against a trusted root digest.
///
/// Recomputes the hash chain bottom-up: the body's digest must appear —
/// written — in the claimed slot of the level-1 map chunk, each level's
/// digest in the slot above, and the final digest must equal `root`. Slot
/// indices are recomputed from the chunk id, so a proof cannot vouch for a
/// different id's value; the leaf descriptor's size must match the body, so
/// it cannot vouch for a truncated body.
///
/// Pure: needs no store, no keys, no I/O. Returns `false` for
/// [`HashKind::Null`] partitions, which carry no integrity protection to
/// prove.
pub fn verify_read_proof(proof: &ReadProof, body: &[u8], root: &HashValue) -> bool {
    if proof.hash == HashKind::Null || proof.fanout == 0 {
        return false;
    }
    // Proofs vouch for data chunks only, and a u64 rank bounds the tree
    // height; a claimed id or path outside that envelope is a forgery (and
    // must not reach the position arithmetic below, which asserts on the
    // reserved leader height).
    if !proof.id.pos.is_data() || proof.levels.len() > 64 {
        return false;
    }
    let hash_len = proof.hash.digest_len();
    let fanout = u64::from(proof.fanout);
    // Descriptor hashes cover the *stored* body. A compressed leaf ships
    // its envelope: that is what the tree vouches for, and it must
    // decompress — through the hardened bounded decoder — to exactly the
    // plaintext being verified. Compression strictly shrinks, so an
    // envelope as large as the body is an immediate forgery.
    let leaf_preimage: &[u8] = match &proof.stored_body {
        Some(stored) => {
            if stored.len() >= body.len() {
                return false;
            }
            match crate::compress::decompress_body(stored, body.len()) {
                Ok(plain) if plain == body => stored.as_slice(),
                _ => return false,
            }
        }
        None => body,
    };
    let mut h = proof.hash.hash(leaf_preimage);
    let mut pos = proof.id.pos;
    for (i, level) in proof.levels.iter().enumerate() {
        // The slot must be the one id-based navigation (§4.3) would use.
        if level.slot != pos.slot(fanout) {
            return false;
        }
        let Ok(chunk) = MapChunk::decode(&level.body, proof.fanout as usize, hash_len) else {
            return false;
        };
        let desc = &chunk.slots[level.slot];
        if !desc.is_written() || desc.hash != h {
            return false;
        }
        if i == 0 && proof.id.pos.is_data() && desc.size as usize != body.len() {
            return false;
        }
        h = proof.hash.hash(&level.body);
        pos = pos.parent(fanout);
    }
    // The walk must terminate AT the root: slot indices are digits of the
    // rank base-fanout, so without this a proof for rank r would equally
    // vouch for the out-of-range alias r + fanout^levels.
    if pos.rank != 0 {
        return false;
    }
    // Covers height-0 trees too: no levels, the body hashes to the root.
    h == *root && proof.root == *root
}

impl ChunkStore {
    /// The partition's current *effective root digest*: the hash its root
    /// descriptor would carry if a checkpoint ran now. This is the digest a
    /// client pins to verify [`ReadProof`]s extracted against the same
    /// committed state.
    ///
    /// # Errors
    ///
    /// Fails if the partition does not exist or nothing is written in it.
    pub fn snapshot_root(&self, partition: PartitionId) -> Result<HashValue> {
        let mut inner = self.inner.lock();
        inner.check_readable()?;
        inner.effective_root_hash(partition)
    }

    /// Reads a chunk and extracts its membership proof **atomically** (one
    /// engine-lock hold), so the body, the proof, and the proof's root
    /// digest all describe the same committed state.
    ///
    /// # Errors
    ///
    /// Fails like [`ChunkStore::read`]; proof extraction adds map reads
    /// that validate like any other.
    pub fn read_with_proof(&self, id: ChunkId) -> Result<(Vec<u8>, ReadProof)> {
        let mut inner = self.inner.lock();
        inner.check_readable()?;
        let (body, stored) = inner.read_chunk_full(id)?;
        let mut proof = inner.extract_proof(id)?;
        proof.stored_body = stored;
        Ok((body, proof))
    }
}
