//! Per-module runtime accounting for the Figure 12 breakdown.
//!
//! The paper's Figure 12 reports, for the release experiment, the time spent
//! in each module where "the time reported for each module *excludes* nested
//! calls to other reported modules". This module implements exactly that
//! semantics: a thread-local span stack where entering a child span pauses
//! the parent's clock.
//!
//! Spans are named with the paper's module names (see [`modules`]) so the
//! benchmark harness can print the same rows.
//!
//! Beyond durations, the module keeps always-on event [`counters`] for the
//! robustness machinery: transient-fault retries, degraded-mode entries,
//! poison events, and heal/recovery attempts. Durations are opt-in (they
//! cost a clock read per span) but counters are so rare and cheap that they
//! record unconditionally, so a production incident always has them.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// The module names used by Figure 12.
pub mod modules {
    /// The collection store (§8).
    pub const COLLECTION_STORE: &str = "collection store";
    /// The object store (§7).
    pub const OBJECT_STORE: &str = "object store";
    /// The chunk store proper (map/log bookkeeping, §4–§5).
    pub const CHUNK_STORE: &str = "chunk store";
    /// Cipher time (seal/open of headers and bodies).
    pub const ENCRYPTION: &str = "encryption";
    /// Hash time (chunk digests, log chains, commit sets).
    pub const HASHING: &str = "hashing";
    /// Untrusted-store read I/O.
    pub const UNTRUSTED_READ: &str = "untrusted store read";
    /// Untrusted-store write and flush I/O.
    pub const UNTRUSTED_WRITE: &str = "untrusted store write";
    /// Tamper-resistant store updates.
    pub const TRUSTED_STORE: &str = "tamper-resistant store";

    /// Figure 12's row order.
    pub const ALL: [&str; 8] = [
        COLLECTION_STORE,
        OBJECT_STORE,
        CHUNK_STORE,
        ENCRYPTION,
        HASHING,
        UNTRUSTED_READ,
        UNTRUSTED_WRITE,
        TRUSTED_STORE,
    ];
}

/// Names of the always-on fault/robustness event counters.
pub mod counters {
    /// Operations retried after a transient fault (from retry-wrapped
    /// stores via the engine's observer hook).
    pub const RETRIES: &str = "io retries";
    /// Times a store entered read-only degraded mode.
    pub const DEGRADED_ENTRIES: &str = "degraded-mode entries";
    /// Times a store hard-poisoned on an integrity violation.
    pub const POISON_EVENTS: &str = "poison events";
    /// `try_heal` attempts on degraded stores.
    pub const HEAL_ATTEMPTS: &str = "heal attempts";
    /// Successful heals (degraded back to live).
    pub const HEALS: &str = "heals";
    /// Recovery (reopen) attempts.
    pub const RECOVERY_ATTEMPTS: &str = "recovery attempts";
    /// Fast reads that found their shard write-locked and had to wait.
    pub const READ_SHARD_CONTENTION: &str = "read-shard contention";
    /// Commit/checkpoint batches sealed by the parallel crypto pipeline.
    pub const PARALLEL_CRYPTO_BATCHES: &str = "parallel-crypto batches";
    /// Chunks sealed by the parallel crypto pipeline.
    pub const PARALLEL_CRYPTO_CHUNKS: &str = "parallel-crypto chunks";
    /// Group-commit batches executed by a leader thread.
    pub const COMMIT_BATCHES: &str = "group-commit batches";
    /// Commits that rode in a group-commit batch.
    pub const BATCHED_COMMITS: &str = "group-commit batched commits";
    /// Device writes saved by log append coalescing.
    pub const LOG_WRITES_COALESCED: &str = "log writes coalesced";
    /// Map-tree levels a checkpoint skipped because none of their chunks
    /// were dirty.
    pub const DIRTY_MAP_LEVELS_SKIPPED: &str = "dirty map levels skipped";
    /// Segments reclaimed by the log cleaner.
    pub const SEGMENTS_CLEANED: &str = "segments cleaned";
    /// Current chunk versions the cleaner relocated to the log tail.
    pub const VERSIONS_RELOCATED: &str = "versions relocated";
    /// Obsolete bytes reclaimed by cleaning.
    pub const BYTES_RECLAIMED: &str = "bytes reclaimed by cleaning";
    /// Bounded cleaning slices run by the background maintenance thread.
    pub const CLEAN_SLICES: &str = "clean slices";
    /// Maintenance-thread wakeups that ran a pass.
    pub const MAINTENANCE_WAKEUPS: &str = "maintenance wakeups";
    /// Commits throttled at the low-water admission gate.
    pub const COMMIT_THROTTLE_WAITS: &str = "commit throttle waits";
    /// Shards observed entering read-only degraded mode (labelled by shard).
    pub const SHARD_DEGRADED: &str = "shards degraded";
    /// Shards observed poisoning on an integrity violation (labelled by
    /// shard).
    pub const SHARD_POISONED: &str = "shards poisoned";
    /// Shards observed healing back to live (labelled by shard).
    pub const SHARD_HEALED: &str = "shards healed";
    /// Partition migrations started (labelled by source shard).
    pub const MIGRATIONS_STARTED: &str = "migrations started";
    /// Interrupted migrations picked back up after a crash or fault
    /// (labelled by source shard).
    pub const MIGRATIONS_RESUMED: &str = "migrations resumed";
    /// Migrations rolled back to a consistent source (labelled by source
    /// shard).
    pub const MIGRATIONS_ROLLED_BACK: &str = "migrations rolled back";
    /// Migrations that reached `Completed` (labelled by source shard).
    pub const MIGRATIONS_COMPLETED: &str = "migrations completed";
    /// Bodies stored as compressed envelopes.
    pub const BODIES_COMPRESSED: &str = "bodies compressed";
    /// Bodies examined by the compression knob but stored raw.
    pub const BODIES_STORED_RAW: &str = "bodies stored raw";
    /// Sealed log bytes saved by compression.
    pub const LOG_BYTES_SAVED: &str = "log bytes saved by compression";
    /// Fast reads that failed to decompress a verified body and fell back
    /// to the engine-locked path.
    pub const DECOMPRESS_FALLBACKS: &str = "decompress fallbacks";

    /// All counter names, for reporting.
    pub const ALL: [&str; 30] = [
        RETRIES,
        DEGRADED_ENTRIES,
        POISON_EVENTS,
        HEAL_ATTEMPTS,
        HEALS,
        RECOVERY_ATTEMPTS,
        READ_SHARD_CONTENTION,
        PARALLEL_CRYPTO_BATCHES,
        PARALLEL_CRYPTO_CHUNKS,
        COMMIT_BATCHES,
        BATCHED_COMMITS,
        LOG_WRITES_COALESCED,
        DIRTY_MAP_LEVELS_SKIPPED,
        SEGMENTS_CLEANED,
        VERSIONS_RELOCATED,
        BYTES_RECLAIMED,
        CLEAN_SLICES,
        MAINTENANCE_WAKEUPS,
        COMMIT_THROTTLE_WAITS,
        SHARD_DEGRADED,
        SHARD_POISONED,
        SHARD_HEALED,
        MIGRATIONS_STARTED,
        MIGRATIONS_RESUMED,
        MIGRATIONS_ROLLED_BACK,
        MIGRATIONS_COMPLETED,
        BODIES_COMPRESSED,
        BODIES_STORED_RAW,
        LOG_BYTES_SAVED,
        DECOMPRESS_FALLBACKS,
    ];
}

static ENABLED: AtomicBool = AtomicBool::new(false);

static TOTALS: Mutex<Option<HashMap<&'static str, Duration>>> = Mutex::new(None);

static COUNTERS: Mutex<Option<HashMap<&'static str, u64>>> = Mutex::new(None);

static LABELED: Mutex<Option<HashMap<(&'static str, u64), u64>>> = Mutex::new(None);

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

struct Frame {
    module: &'static str,
    resumed_at: Instant,
}

/// Turns accounting on and clears previous totals.
pub fn enable() {
    *TOTALS.lock() = Some(HashMap::new());
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns accounting off.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// True when spans are being recorded.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Adds `n` to the named event counter. Always on, independent of
/// [`enable`].
pub fn add(counter: &'static str, n: u64) {
    let mut guard = COUNTERS.lock();
    *guard
        .get_or_insert_with(HashMap::new)
        .entry(counter)
        .or_default() += n;
}

/// Increments the named event counter by one.
pub fn count(counter: &'static str) {
    add(counter, 1);
}

/// Adds `n` to both the named counter and its per-label bucket. Labels are
/// small integers — the shard manager uses the shard id — so an incident
/// report can say not just *that* a shard degraded but *which one*.
pub fn add_labeled(counter: &'static str, label: u64, n: u64) {
    add(counter, n);
    let mut guard = LABELED.lock();
    *guard
        .get_or_insert_with(HashMap::new)
        .entry((counter, label))
        .or_default() += n;
}

/// Increments the named counter and its per-label bucket by one.
pub fn count_labeled(counter: &'static str, label: u64) {
    add_labeled(counter, label, 1);
}

/// An observer for [`tdb_storage::RetryStore`] that records every retry in
/// the global [`counters::RETRIES`] counter, tying the storage layer's
/// retry loop into the engine's metrics:
///
/// ```ignore
/// let store = RetryStore::new(inner, IoPolicy::default())
///     .with_observer(metrics::retry_observer());
/// ```
pub fn retry_observer() -> tdb_storage::RetryObserver {
    Box::new(|_attempt| count(counters::RETRIES))
}

/// A point-in-time copy of accumulated self-times and event counters.
///
/// Indexing (`snap[module]`) and [`MetricsSnapshot::get`] look up module
/// durations, keeping the `HashMap`-shaped API the benchmark harness uses;
/// [`MetricsSnapshot::counter`] reads the event counters.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    durations: HashMap<&'static str, Duration>,
    counters: HashMap<&'static str, u64>,
    labeled: HashMap<(&'static str, u64), u64>,
}

impl MetricsSnapshot {
    /// The accumulated self-time for `module`, if any was recorded.
    pub fn get(&self, module: &str) -> Option<&Duration> {
        self.durations.get(module)
    }

    /// The value of the named event counter (0 when never incremented).
    pub fn counter(&self, counter: &str) -> u64 {
        self.counters.get(counter).copied().unwrap_or(0)
    }

    /// The per-label bucket of a labelled counter (0 when never incremented).
    pub fn labeled(&self, counter: &str, label: u64) -> u64 {
        self.labeled
            .iter()
            .find(|((name, l), _)| *name == counter && *l == label)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// All per-label buckets recorded for `counter`, sorted by label.
    pub fn labels_of(&self, counter: &str) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self
            .labeled
            .iter()
            .filter(|((name, _), _)| *name == counter)
            .map(|((_, label), v)| (*label, *v))
            .collect();
        out.sort_unstable();
        out
    }

    /// All recorded module durations.
    pub fn durations(&self) -> &HashMap<&'static str, Duration> {
        &self.durations
    }

    /// All recorded event counters.
    pub fn counters(&self) -> &HashMap<&'static str, u64> {
        &self.counters
    }
}

impl std::ops::Index<&str> for MetricsSnapshot {
    type Output = Duration;

    fn index(&self, module: &str) -> &Duration {
        &self.durations[module]
    }
}

/// Takes a snapshot of accumulated self-times and event counters.
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        durations: TOTALS.lock().clone().unwrap_or_default(),
        counters: COUNTERS.lock().clone().unwrap_or_default(),
        labeled: LABELED.lock().clone().unwrap_or_default(),
    }
}

/// Clears accumulated totals and counters (keeps recording enabled).
pub fn reset() {
    if let Some(m) = TOTALS.lock().as_mut() {
        m.clear();
    }
    if let Some(m) = COUNTERS.lock().as_mut() {
        m.clear();
    }
    if let Some(m) = LABELED.lock().as_mut() {
        m.clear();
    }
}

fn charge(module: &'static str, d: Duration) {
    if let Some(m) = TOTALS.lock().as_mut() {
        *m.entry(module).or_default() += d;
    }
}

/// An RAII span. While alive, wall time accrues to `module`; entering a
/// nested span pauses this one.
pub struct Span {
    active: bool,
}

/// Opens a span for `module`. Cheap no-op unless [`enable`] was called.
pub fn span(module: &'static str) -> Span {
    if !is_enabled() {
        return Span { active: false };
    }
    let now = Instant::now();
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        if let Some(parent) = stack.last_mut() {
            charge(parent.module, now - parent.resumed_at);
            parent.resumed_at = now;
        }
        stack.push(Frame {
            module,
            resumed_at: now,
        });
    });
    Span { active: true }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let now = Instant::now();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(frame) = stack.pop() {
                charge(frame.module, now - frame.resumed_at);
            }
            if let Some(parent) = stack.last_mut() {
                parent.resumed_at = now;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy(d: Duration) {
        let start = Instant::now();
        while start.elapsed() < d {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn nested_spans_exclude_children() {
        enable();
        reset();
        {
            let _outer = span("chunk store");
            busy(Duration::from_millis(10));
            {
                let _inner = span("hashing");
                busy(Duration::from_millis(20));
            }
            busy(Duration::from_millis(5));
        }
        disable();
        let snap = snapshot();
        let outer = snap["chunk store"];
        let inner = snap["hashing"];
        assert!(inner >= Duration::from_millis(19), "{inner:?}");
        // The outer span's self time excludes the inner 20 ms.
        assert!(outer >= Duration::from_millis(14), "{outer:?}");
        assert!(outer < Duration::from_millis(30), "{outer:?}");
    }

    #[test]
    fn disabled_spans_cost_nothing() {
        disable();
        reset();
        {
            let _s = span("encryption");
            busy(Duration::from_millis(2));
        }
        // Totals unchanged because recording was off.
        let snap = snapshot();
        assert!(snap.get("encryption").copied().unwrap_or_default() < Duration::from_millis(1));
    }

    #[test]
    fn counters_accumulate_without_enable() {
        disable();
        // A name no production code uses; sibling tests call reset(), so
        // retry rather than assert an exact total.
        for _ in 0..100 {
            count("metrics-test-private-counter");
            if snapshot().counter("metrics-test-private-counter") >= 1 {
                assert_eq!(snapshot().counter("metrics-test-never-touched"), 0);
                return;
            }
        }
        panic!("counter never observed");
    }

    #[test]
    fn labeled_counters_bucket_by_label() {
        disable();
        // Private names so sibling tests (which call reset()) cannot race
        // the totals we assert on; retry like the unlabeled test does.
        for _ in 0..100 {
            add_labeled("metrics-test-labeled", 3, 2);
            count_labeled("metrics-test-labeled", 7);
            let snap = snapshot();
            if snap.labeled("metrics-test-labeled", 3) >= 2
                && snap.labeled("metrics-test-labeled", 7) >= 1
            {
                assert_eq!(snap.labeled("metrics-test-labeled", 99), 0);
                let labels = snap.labels_of("metrics-test-labeled");
                assert!(labels.iter().any(|&(l, _)| l == 3));
                assert!(labels.iter().any(|&(l, _)| l == 7));
                // Labelled adds also feed the flat counter.
                assert!(snap.counter("metrics-test-labeled") >= 3);
                return;
            }
        }
        panic!("labeled counters never observed");
    }

    #[test]
    fn sibling_spans_accumulate() {
        enable();
        reset();
        for _ in 0..3 {
            let _s = span("object store");
            busy(Duration::from_millis(3));
        }
        disable();
        let total = snapshot()["object store"];
        assert!(total >= Duration::from_millis(8), "{total:?}");
    }
}
