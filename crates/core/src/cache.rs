//! The chunk-map cache (§4.5, §4.6).
//!
//! "For better performance, the chunk map keeps a cache of descriptors
//! indexed by chunk ids … The cached data is decrypted, validated, and
//! unpickled." We cache whole decoded map chunks; the descriptor of chunk
//! *c* is a slot of *c*'s parent. Updating a descriptor dirties the cached
//! parent instead of rewriting the map chunk to the log — the deferral that
//! checkpointing later consolidates (§4.7).
//!
//! Invariant: a dirty map chunk is pinned (never evicted) until a
//! checkpoint writes it out; a map chunk with no persistent version *must*
//! therefore be in the cache.

use std::collections::{BTreeSet, HashMap};

use crate::descriptor::MapChunk;
use crate::ids::{PartitionId, Position};

/// One cached, decoded map chunk.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Decoded slots.
    pub chunk: MapChunk,
    /// True when the cached content is newer than any persistent version.
    pub dirty: bool,
    /// LRU timestamp.
    last_used: u64,
}

/// The map-chunk cache.
#[derive(Debug, Clone)]
pub struct MapCache {
    entries: HashMap<(PartitionId, Position), CacheEntry>,
    /// Index of dirty entries, ordered (partition, height, rank) — the
    /// bottom-up checkpoint order. Kept in lockstep with the `dirty` flags
    /// in `entries` so checkpoint triggering and level iteration are O(1)
    /// / O(dirty) instead of full-cache scans.
    dirty: BTreeSet<(PartitionId, Position)>,
    /// Soft capacity in entries; only clean entries are evictable.
    capacity: usize,
    tick: u64,
}

impl MapCache {
    /// Creates a cache bounded to roughly `capacity` map chunks.
    pub fn new(capacity: usize) -> MapCache {
        MapCache {
            entries: HashMap::new(),
            dirty: BTreeSet::new(),
            capacity: capacity.max(8),
            tick: 0,
        }
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up a cached map chunk, refreshing its LRU position.
    pub fn get(&mut self, partition: PartitionId, pos: Position) -> Option<&MapChunk> {
        let tick = self.bump();
        self.entries.get_mut(&(partition, pos)).map(|e| {
            e.last_used = tick;
            &e.chunk
        })
    }

    /// True when the map chunk is cached (no LRU refresh).
    pub fn contains(&self, partition: PartitionId, pos: Position) -> bool {
        self.entries.contains_key(&(partition, pos))
    }

    /// True when the map chunk is cached *and* dirty.
    pub fn is_dirty(&self, partition: PartitionId, pos: Position) -> bool {
        self.entries.get(&(partition, pos)).is_some_and(|e| e.dirty)
    }

    /// Mutable access plus dirty marking: the caller is changing a slot.
    pub fn get_mut_dirty(
        &mut self,
        partition: PartitionId,
        pos: Position,
    ) -> Option<&mut MapChunk> {
        let tick = self.bump();
        let entry = self.entries.get_mut(&(partition, pos))?;
        entry.last_used = tick;
        entry.dirty = true;
        self.dirty.insert((partition, pos));
        Some(&mut entry.chunk)
    }

    /// Inserts a map chunk (replacing any previous entry), then evicts clean
    /// entries if over capacity.
    pub fn insert(&mut self, partition: PartitionId, pos: Position, chunk: MapChunk, dirty: bool) {
        let tick = self.bump();
        self.entries.insert(
            (partition, pos),
            CacheEntry {
                chunk,
                dirty,
                last_used: tick,
            },
        );
        if dirty {
            self.dirty.insert((partition, pos));
        } else {
            self.dirty.remove(&(partition, pos));
        }
        self.evict_if_needed(Some((partition, pos)));
    }

    /// Marks an entry clean (after a checkpoint wrote it out).
    pub fn mark_clean(&mut self, partition: PartitionId, pos: Position) {
        if let Some(e) = self.entries.get_mut(&(partition, pos)) {
            e.dirty = false;
            self.dirty.remove(&(partition, pos));
        }
    }

    /// Removes every entry belonging to `partition` (partition deallocated).
    pub fn purge_partition(&mut self, partition: PartitionId) {
        self.entries.retain(|(p, _), _| *p != partition);
        self.dirty.retain(|(p, _)| *p != partition);
    }

    /// Clones all *dirty* map chunks of `src` under `dst`'s key space — the
    /// cache half of a partition copy (§5.3). Persistent map chunks are
    /// shared through the copied root descriptor; only the buffered
    /// (post-checkpoint) overrides need duplicating.
    pub fn clone_dirty(&mut self, src: PartitionId, dst: PartitionId) {
        let cloned: Vec<(Position, MapChunk)> = self
            .entries
            .iter()
            .filter(|((p, _), e)| *p == src && e.dirty)
            .map(|((_, pos), e)| (*pos, e.chunk.clone()))
            .collect();
        for (pos, chunk) in cloned {
            self.insert(dst, pos, chunk, true);
        }
    }

    /// True when any dirty entry of `partition` lies inside the subtree
    /// rooted at `pos` (including `pos` itself).
    ///
    /// Dirty positions at height `h ≤ pos.height` fall under `pos` exactly
    /// when their rank is in `[pos.rank·F^(pos.height−h),
    /// (pos.rank+1)·F^(pos.height−h))`, and the index orders entries by
    /// (partition, height, rank) — so each level is one O(log n) range
    /// probe instead of a scan of every dirty key.
    pub fn subtree_dirty(&self, partition: PartitionId, pos: Position, fanout: u64) -> bool {
        for height in 1..=pos.height {
            let span = fanout.saturating_pow(u32::from(pos.height - height));
            let lo = pos.rank.saturating_mul(span);
            let hi = lo.saturating_add(span - 1);
            let start = (partition, Position::map(height, lo));
            let end = (partition, Position::map(height, hi));
            if self.dirty.range(start..=end).next().is_some() {
                return true;
            }
        }
        false
    }

    /// Number of dirty entries (drives checkpoint triggering, §4.7: "when
    /// the cache becomes too large because of dirty descriptors"). O(1)
    /// via the dirty index.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// All dirty entries' keys, sorted by (partition, height, rank) so a
    /// checkpoint can write bottom-up deterministically. Served from the
    /// dirty index without scanning the cache.
    pub fn dirty_keys(&self) -> Vec<(PartitionId, Position)> {
        self.dirty.iter().copied().collect()
    }

    /// The lowest height among dirty map chunks with `is_system()` matching
    /// `system`, with the keys at that height in (partition, rank) order —
    /// one incremental-checkpoint level. `None` when no such chunk is dirty.
    pub fn min_dirty_level(&self, system: bool) -> Option<(u8, Vec<(PartitionId, Position)>)> {
        let mut level: Option<u8> = None;
        let mut keys: Vec<(PartitionId, Position)> = Vec::new();
        for &(p, pos) in self.dirty.iter().filter(|(p, _)| p.is_system() == system) {
            match level {
                None => {
                    level = Some(pos.height);
                    keys.push((p, pos));
                }
                Some(h) if pos.height < h => {
                    level = Some(pos.height);
                    keys.clear();
                    keys.push((p, pos));
                }
                Some(h) if pos.height == h => keys.push((p, pos)),
                Some(_) => {}
            }
        }
        level.map(|h| (h, keys))
    }

    /// Distinct (partition kind, height) levels present in the cache and
    /// the subset of those with at least one dirty chunk — the denominator
    /// and numerator of the incremental checkpoint's skipped-levels stat.
    pub fn level_counts(&self) -> (usize, usize) {
        let mut present: BTreeSet<(bool, u8)> = BTreeSet::new();
        for (p, pos) in self.entries.keys() {
            present.insert((p.is_system(), pos.height));
        }
        let mut dirty: BTreeSet<(bool, u8)> = BTreeSet::new();
        for (p, pos) in &self.dirty {
            dirty.insert((p.is_system(), pos.height));
        }
        (present.len(), dirty.len())
    }

    /// Total entries cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops everything (used when a restore replaces partitions wholesale).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.dirty.clear();
    }

    fn evict_if_needed(&mut self, keep: Option<(PartitionId, Position)>) {
        while self.entries.len() > self.capacity {
            // Find the least recently used *clean* entry, never the one the
            // caller just inserted (it is about to be used).
            let victim = self
                .entries
                .iter()
                .filter(|(k, e)| !e.dirty && Some(**k) != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    self.entries.remove(&k);
                }
                // Everything is dirty: allow the cache to exceed capacity;
                // the caller will checkpoint soon.
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::Descriptor;
    use tdb_crypto::HashValue;

    fn p(n: u32) -> PartitionId {
        PartitionId(n)
    }

    fn mc(fanout: usize, marker: u8) -> MapChunk {
        let mut c = MapChunk::empty(fanout);
        c.slots[0] = Descriptor::written(u64::from(marker), 1, 1, HashValue::new(&[marker; 20]));
        c
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut cache = MapCache::new(16);
        cache.insert(p(1), Position::map(1, 0), mc(4, 7), false);
        assert!(cache.contains(p(1), Position::map(1, 0)));
        let got = cache.get(p(1), Position::map(1, 0)).unwrap();
        assert_eq!(got.slots[0].location, 7);
        assert!(cache.get(p(2), Position::map(1, 0)).is_none());
    }

    #[test]
    fn dirty_entries_survive_eviction_pressure() {
        let mut cache = MapCache::new(8);
        for i in 0..8 {
            cache.insert(p(1), Position::map(1, i), mc(4, i as u8), true);
        }
        for i in 8..40 {
            cache.insert(p(1), Position::map(1, i), mc(4, i as u8), false);
        }
        // All dirty entries still present.
        for i in 0..8 {
            assert!(
                cache.contains(p(1), Position::map(1, i)),
                "dirty {i} evicted"
            );
        }
        // Cache respects capacity modulo the dirty overflow.
        assert!(cache.len() <= 9, "len {}", cache.len());
    }

    #[test]
    fn lru_evicts_least_recent_clean() {
        let mut cache = MapCache::new(8);
        for i in 0..8 {
            cache.insert(p(1), Position::map(1, i), mc(4, i as u8), false);
        }
        // Touch 0 so it is most recent.
        let _ = cache.get(p(1), Position::map(1, 0));
        cache.insert(p(1), Position::map(1, 100), mc(4, 0), false);
        assert!(cache.contains(p(1), Position::map(1, 0)));
        // Entry 1 was the least recently used.
        assert!(!cache.contains(p(1), Position::map(1, 1)));
    }

    #[test]
    fn get_mut_dirty_marks_and_counts() {
        let mut cache = MapCache::new(8);
        cache.insert(p(1), Position::map(1, 0), mc(4, 1), false);
        assert_eq!(cache.dirty_count(), 0);
        cache
            .get_mut_dirty(p(1), Position::map(1, 0))
            .unwrap()
            .slots[1] = Descriptor::unwritten();
        assert_eq!(cache.dirty_count(), 1);
        cache.mark_clean(p(1), Position::map(1, 0));
        assert_eq!(cache.dirty_count(), 0);
    }

    #[test]
    fn clone_dirty_copies_only_dirty() {
        let mut cache = MapCache::new(32);
        cache.insert(p(1), Position::map(1, 0), mc(4, 1), true);
        cache.insert(p(1), Position::map(1, 1), mc(4, 2), false);
        cache.insert(p(1), Position::map(2, 0), mc(4, 3), true);
        cache.clone_dirty(p(1), p(2));
        assert!(cache.contains(p(2), Position::map(1, 0)));
        assert!(!cache.contains(p(2), Position::map(1, 1)));
        assert!(cache.contains(p(2), Position::map(2, 0)));
        // Clones are dirty and independent.
        assert_eq!(cache.dirty_count(), 4);
        cache
            .get_mut_dirty(p(2), Position::map(1, 0))
            .unwrap()
            .slots[0] = Descriptor::unallocated();
        assert!(cache.get(p(1), Position::map(1, 0)).unwrap().slots[0].is_written());
    }

    #[test]
    fn purge_partition_removes_all() {
        let mut cache = MapCache::new(32);
        cache.insert(p(1), Position::map(1, 0), mc(4, 1), true);
        cache.insert(p(2), Position::map(1, 0), mc(4, 2), true);
        cache.purge_partition(p(1));
        assert!(!cache.contains(p(1), Position::map(1, 0)));
        assert!(cache.contains(p(2), Position::map(1, 0)));
    }

    #[test]
    fn dirty_index_tracks_levels() {
        let mut cache = MapCache::new(32);
        cache.insert(p(1), Position::map(2, 0), mc(4, 1), true);
        cache.insert(p(2), Position::map(1, 3), mc(4, 2), true);
        cache.insert(p(1), Position::map(1, 1), mc(4, 3), true);
        cache.insert(p(3), Position::map(3, 0), mc(4, 4), false);
        assert_eq!(cache.dirty_count(), 3);
        let (height, keys) = cache.min_dirty_level(false).unwrap();
        assert_eq!(height, 1);
        assert_eq!(
            keys,
            vec![(p(1), Position::map(1, 1)), (p(2), Position::map(1, 3))]
        );
        assert!(cache.min_dirty_level(true).is_none());
        let (present, dirty) = cache.level_counts();
        assert_eq!((present, dirty), (3, 2));
        cache.mark_clean(p(1), Position::map(1, 1));
        cache.mark_clean(p(2), Position::map(1, 3));
        let (height, keys) = cache.min_dirty_level(false).unwrap();
        assert_eq!(height, 2);
        assert_eq!(keys, vec![(p(1), Position::map(2, 0))]);
        cache.mark_clean(p(1), Position::map(2, 0));
        assert_eq!(cache.dirty_count(), 0);
        assert!(cache.min_dirty_level(false).is_none());
        // The dirty index survives purge and clear.
        cache.insert(p(2), Position::map(1, 0), mc(4, 5), true);
        cache.purge_partition(p(2));
        assert_eq!(cache.dirty_count(), 0);
    }

    #[test]
    fn subtree_dirty_matches_linear_scan() {
        let fanout = 4u64;
        let mut cache = MapCache::new(256);
        // A mix of dirty and clean chunks across partitions and levels.
        for (part, height, rank, dirty) in [
            (1u32, 1u8, 0u64, true),
            (1, 1, 5, true),
            (1, 2, 1, false),
            (1, 3, 0, true),
            (2, 1, 3, true),
            (2, 2, 0, false),
            (3, 1, 15, true),
        ] {
            cache.insert(
                p(part),
                Position::map(height, rank),
                mc(4, rank as u8),
                dirty,
            );
        }
        // The reference semantics: climb each dirty key to pos.height by
        // rank division (what the old O(dirty) scan computed).
        let reference = |part: PartitionId, pos: Position| {
            cache.dirty_keys().into_iter().any(|(q, dp)| {
                q == part && dp.height <= pos.height && {
                    let levels = u32::from(pos.height - dp.height);
                    dp.rank / fanout.saturating_pow(levels) == pos.rank
                }
            })
        };
        for part in [1u32, 2, 3, 4] {
            for height in 1u8..=4 {
                for rank in 0u64..20 {
                    let pos = Position::map(height, rank);
                    assert_eq!(
                        cache.subtree_dirty(p(part), pos, fanout),
                        reference(p(part), pos),
                        "partition {part} pos ({height},{rank})"
                    );
                }
            }
        }
    }

    #[test]
    fn dirty_keys_sorted_bottom_up() {
        let mut cache = MapCache::new(32);
        cache.insert(p(2), Position::map(2, 0), mc(4, 1), true);
        cache.insert(p(1), Position::map(1, 5), mc(4, 2), true);
        cache.insert(p(1), Position::map(1, 2), mc(4, 3), true);
        cache.insert(p(1), Position::map(2, 0), mc(4, 4), true);
        let keys = cache.dirty_keys();
        assert_eq!(
            keys,
            vec![
                (p(1), Position::map(1, 2)),
                (p(1), Position::map(1, 5)),
                (p(1), Position::map(2, 0)),
                (p(2), Position::map(2, 0)),
            ]
        );
    }
}
