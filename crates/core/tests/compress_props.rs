//! Property tests for the chunk-body compression codec (ISSUE 9):
//! round-trips over random and adversarial inputs, the stored-raw escape
//! hatch, and hardening of the decoder against malformed streams — no
//! panic and no allocation beyond the declared (capped) length, ever.
//!
//! `regression_*` tests pin previously interesting cases so they run on
//! every build without the property machinery.

use proptest::prelude::*;

use tdb_core::compress::{
    compress_block, compress_body, declared_len, decompress_block, decompress_body, CompressError,
    MIN_COMPRESS_BODY,
};

/// Deterministic body generator: each `mode` exercises a different shape
/// of input (compressible and not), `seed`/`len` vary the content.
fn body_for(mode: u8, seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64*, same family the bench fixtures use.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    match mode % 6 {
        // Incompressible: every byte fresh from the generator.
        0 => (0..len).map(|_| next() as u8).collect(),
        // All zeros: the best case for run matching.
        1 => vec![0u8; len],
        // A short motif repeated: long matches at a small offset.
        2 => {
            let motif: Vec<u8> = (0..7 + (seed % 23) as usize)
                .map(|_| next() as u8)
                .collect();
            (0..len).map(|i| motif[i % motif.len()]).collect()
        }
        // Text-like: a few frequent bytes with occasional noise.
        3 => (0..len)
            .map(|_| {
                let r = next();
                if r % 10 == 0 {
                    r as u8
                } else {
                    b"etaoin shrdlu"[(r % 13) as usize]
                }
            })
            .collect(),
        // Random prefix, then that prefix repeated: far-offset matches.
        4 => {
            let half = len / 2 + 1;
            let prefix: Vec<u8> = (0..half).map(|_| next() as u8).collect();
            (0..len).map(|i| prefix[i % half]).collect()
        }
        // Runs of varying lengths: match-length extension bytes.
        _ => {
            let mut out = Vec::with_capacity(len);
            while out.len() < len {
                let byte = next() as u8;
                let run = 1 + (next() % 300) as usize;
                for _ in 0..run.min(len - out.len()) {
                    out.push(byte);
                }
            }
            out
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        .. ProptestConfig::default()
    })]

    /// `decompress_block(compress_block(x), x.len()) == x` for every input
    /// shape, including empty and chunk-sized bodies.
    #[test]
    fn block_round_trip(mode in 0u8..6, seed in any::<u64>(), len in 0usize..4096) {
        let body = body_for(mode, seed, len);
        let stream = compress_block(&body);
        let back = decompress_block(&stream, body.len()).expect("round trip");
        prop_assert_eq!(back, body);
    }

    /// The envelope path round-trips too, and honours its contract: `None`
    /// means "store raw", `Some` means the envelope is strictly smaller
    /// than the body and declares exactly the body's length.
    #[test]
    fn body_round_trip(mode in 0u8..6, seed in any::<u64>(), len in 0usize..4096) {
        let body = body_for(mode, seed, len);
        match compress_body(&body) {
            None => {
                // Sub-threshold bodies are always stored raw.
                if body.len() < MIN_COMPRESS_BODY {
                    prop_assert!(true);
                }
            }
            Some(env) => {
                prop_assert!(env.len() < body.len(), "envelope must shrink");
                prop_assert_eq!(declared_len(&env), Some(body.len()));
                let back = decompress_body(&env, body.len()).expect("round trip");
                prop_assert_eq!(back, body);
            }
        }
    }

    /// Truncating a valid stream anywhere fails cleanly — never panics,
    /// never returns a wrong-length body.
    #[test]
    fn truncation_is_detected(mode in 0u8..6, seed in any::<u64>(), cut in any::<u64>()) {
        let body = body_for(mode, seed, 1500);
        let stream = compress_block(&body);
        if stream.len() > 1 {
            let cut = 1 + (cut as usize) % (stream.len() - 1);
            match decompress_block(&stream[..cut], body.len()) {
                Ok(out) => prop_assert_eq!(out.len(), body.len()),
                Err(_) => prop_assert!(true),
            }
        }
    }

    /// Flipping any single byte of a valid stream either fails cleanly or
    /// yields a body of exactly the expected length — the decoder never
    /// panics and never over-allocates past the declared length.
    #[test]
    fn bit_flips_never_panic(mode in 0u8..6, seed in any::<u64>(), at in any::<u64>(), bit in 0u8..8) {
        let body = body_for(mode, seed, 1200);
        let mut stream = compress_block(&body);
        if !stream.is_empty() {
            let at = (at as usize) % stream.len();
            stream[at] ^= 1 << bit;
            match decompress_block(&stream, body.len()) {
                Ok(out) => prop_assert_eq!(out.len(), body.len()),
                Err(_) => prop_assert!(true),
            }
        }
    }

    /// Pure garbage bytes as a token stream: clean error or exact-length
    /// output, nothing else.
    #[test]
    fn garbage_streams_never_panic(seed in any::<u64>(), len in 0usize..512, expect in 0usize..2048) {
        let garbage = body_for(0, seed, len);
        match decompress_block(&garbage, expect) {
            Ok(out) => prop_assert_eq!(out.len(), expect),
            Err(_) => prop_assert!(true),
        }
    }

    /// A tampered declared length in the envelope header is rejected by
    /// `decompress_body` before any token is processed: the declared value
    /// must equal the caller's expectation exactly.
    #[test]
    fn tampered_declared_length_rejected(seed in any::<u64>(), lie in any::<u32>()) {
        let body = body_for(2, seed, 2048);
        let mut env = compress_body(&body).expect("repetitive body compresses");
        let lie_bytes = lie.to_le_bytes();
        if lie as usize != body.len() {
            env[..4].copy_from_slice(&lie_bytes);
            prop_assert!(matches!(
                decompress_body(&env, body.len()),
                Err(CompressError::WrongLength) | Err(CompressError::BadEnvelope)
            ));
        }
    }
}

// ---- Pinned regressions -------------------------------------------------

/// Empty input: empty stream, empty round trip.
#[test]
fn regression_empty_body() {
    let stream = compress_block(&[]);
    assert_eq!(decompress_block(&stream, 0).unwrap(), Vec::<u8>::new());
    assert_eq!(compress_body(&[]), None);
}

/// A 4-byte match at the maximum offset boundary (65535) must round-trip;
/// offsets beyond it must never be emitted.
#[test]
fn regression_max_offset_match() {
    let mut body = vec![0xAAu8; 4];
    body.extend(std::iter::repeat_n(0x55, 65531));
    body.extend_from_slice(&[0xAA, 0xAA, 0xAA, 0xAA]);
    let stream = compress_block(&body);
    assert_eq!(decompress_block(&stream, body.len()).unwrap(), body);
}

/// Overlapping match (offset 1, long run): the byte-by-byte copy must
/// reproduce RLE semantics, not memcpy a stale region.
#[test]
fn regression_overlapping_match() {
    let mut body = vec![7u8];
    body.extend(std::iter::repeat_n(7u8, 1000));
    let stream = compress_block(&body);
    assert!(stream.len() < 32, "RLE case must compress hard");
    assert_eq!(decompress_block(&stream, body.len()).unwrap(), body);
}

/// Literal-run extension boundary: exactly 15 and 15+255 literals.
#[test]
fn regression_literal_extension_boundaries() {
    for len in [15usize, 14, 16, 270, 269, 271] {
        let body = body_for(0, 99, len);
        let stream = compress_block(&body);
        assert_eq!(decompress_block(&stream, len).unwrap(), body, "len {len}");
    }
}

/// A zero offset is invalid on the wire even though a naive copy loop
/// would "work" (self-copy): the decoder must reject it.
#[test]
fn regression_zero_offset_rejected() {
    // token: 0 literals, match nibble 0 (len 4), offset 0.
    let stream = vec![0x00, 0x00, 0x00];
    assert!(matches!(
        decompress_block(&stream, 4),
        Err(CompressError::BadOffset)
    ));
}

/// Declared length far past any plausible chunk size must not cause an
/// allocation: `decompress_body` checks declared == expected first.
#[test]
fn regression_huge_declared_length_no_alloc() {
    let body = vec![3u8; 1024];
    let mut env = compress_body(&body).expect("compresses");
    env[..4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(decompress_body(&env, body.len()).is_err());
    // And the block decoder caps at the expected length even when the
    // stream would produce more.
    let long = compress_block(&vec![9u8; 4096]);
    assert!(matches!(
        decompress_block(&long, 16),
        Err(CompressError::TooLong)
    ));
}
