//! Integration tests for the chunk store: the §4/§5 API contract, crash
//! recovery, tamper detection, partitions, snapshots, and cleaning.

use std::sync::Arc;

use tdb_core::store::{ChunkStore, ChunkStoreConfig, CommitOp, TrustedBackend, ValidationMode};
use tdb_core::{ChunkId, CoreError, CryptoParams, DiffChange, PartitionId, TamperKind};
use tdb_crypto::{CipherKind, HashKind, SecretKey};
use tdb_storage::{
    CounterOverTrusted, CrashStore, MemStore, MemTrustedStore, MonotonicCounter, SharedUntrusted,
    TrustedStore, UntrustedStore,
};

/// A small-geometry config that exercises tree growth and segment
/// switching quickly.
fn small_config(validation: ValidationMode) -> ChunkStoreConfig {
    ChunkStoreConfig {
        fanout: 4,
        segment_size: 4096,
        map_cache_capacity: 64,
        checkpoint_threshold: 1000, // Explicit checkpoints only, by default.
        validation,
        ..ChunkStoreConfig::default()
    }
}

fn counter_mode() -> ValidationMode {
    ValidationMode::Counter {
        delta_ut: 5,
        delta_tu: 0,
    }
}

struct Fixture {
    secret: SecretKey,
    untrusted: Arc<MemStore>,
    register: Arc<MemTrustedStore>,
    config: ChunkStoreConfig,
}

impl Fixture {
    fn new(validation: ValidationMode) -> Fixture {
        Fixture {
            secret: SecretKey::random(24),
            untrusted: Arc::new(MemStore::new()),
            register: Arc::new(MemTrustedStore::new(64)),
            config: small_config(validation),
        }
    }

    fn backend(&self) -> TrustedBackend {
        match self.config.validation {
            ValidationMode::Counter { .. } => TrustedBackend::Counter(Arc::new(
                CounterOverTrusted::new(Arc::clone(&self.register) as Arc<dyn TrustedStore>),
            )),
            ValidationMode::DirectHash => {
                TrustedBackend::Register(Arc::clone(&self.register) as Arc<dyn TrustedStore>)
            }
        }
    }

    fn create(&self) -> ChunkStore {
        ChunkStore::create(
            Arc::clone(&self.untrusted) as SharedUntrusted,
            self.backend(),
            self.secret.clone(),
            self.config.clone(),
        )
        .expect("create store")
    }

    fn reopen(&self) -> tdb_core::Result<ChunkStore> {
        ChunkStore::open(
            Arc::clone(&self.untrusted) as SharedUntrusted,
            self.backend(),
            self.secret.clone(),
            self.config.clone(),
        )
    }

    /// Reopens against a crash image (a fresh MemStore holding `image`).
    fn reopen_image(&self, image: Vec<u8>) -> tdb_core::Result<ChunkStore> {
        ChunkStore::open(
            Arc::new(MemStore::from_bytes(image)) as SharedUntrusted,
            self.backend(),
            self.secret.clone(),
            self.config.clone(),
        )
    }
}

fn des_params() -> CryptoParams {
    CryptoParams::generate(CipherKind::Des, HashKind::Sha1)
}

/// Creates a partition and returns its id.
fn make_partition(store: &ChunkStore) -> PartitionId {
    let p = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CreatePartition {
            id: p,
            params: des_params(),
        }])
        .unwrap();
    p
}

fn write_one(store: &ChunkStore, p: PartitionId, data: &[u8]) -> ChunkId {
    let c = store.allocate_chunk(p).unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: c,
            bytes: data.to_vec(),
        }])
        .unwrap();
    c
}

// ---------------------------------------------------------------------------
// Basic §4.1 contract.
// ---------------------------------------------------------------------------

#[test]
fn write_read_roundtrip() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    let c = write_one(&store, p, b"hello trusted world");
    assert_eq!(store.read(c).unwrap(), b"hello trusted world");
}

#[test]
fn read_unwritten_and_unallocated_signal() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    let c = store.allocate_chunk(p).unwrap();
    assert!(matches!(store.read(c), Err(CoreError::NotWritten(_))));
    let bogus = ChunkId::data(p, 999);
    assert!(matches!(store.read(bogus), Err(CoreError::NotAllocated(_))));
}

#[test]
fn overwrite_changes_state_and_size() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    let c = write_one(&store, p, b"short");
    store
        .commit(vec![CommitOp::WriteChunk {
            id: c,
            bytes: vec![7u8; 3000],
        }])
        .unwrap();
    assert_eq!(store.read(c).unwrap(), vec![7u8; 3000]);
}

#[test]
fn dealloc_then_read_signals() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    let c = write_one(&store, p, b"ephemeral");
    store
        .commit(vec![CommitOp::DeallocChunk { id: c }])
        .unwrap();
    assert!(matches!(store.read(c), Err(CoreError::NotAllocated(_))));
}

#[test]
fn dealloc_ids_are_reused() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    let c = write_one(&store, p, b"first");
    store
        .commit(vec![CommitOp::DeallocChunk { id: c }])
        .unwrap();
    let c2 = store.allocate_chunk(p).unwrap();
    assert_eq!(c2, c, "deallocated id should be reused (§4.4)");
    store
        .commit(vec![CommitOp::WriteChunk {
            id: c2,
            bytes: b"second".to_vec(),
        }])
        .unwrap();
    assert_eq!(store.read(c2).unwrap(), b"second");
}

#[test]
fn multi_op_commit_is_visible_together() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    let a = store.allocate_chunk(p).unwrap();
    let b = store.allocate_chunk(p).unwrap();
    // "Store a newly-allocated chunk id in another chunk during the same
    // commit" (§4.1).
    let pointer = b.pos.rank.to_le_bytes().to_vec();
    store
        .commit(vec![
            CommitOp::WriteChunk {
                id: a,
                bytes: pointer,
            },
            CommitOp::WriteChunk {
                id: b,
                bytes: b"pointee".to_vec(),
            },
        ])
        .unwrap();
    let stored = store.read(a).unwrap();
    let rank = u64::from_le_bytes(stored.as_slice().try_into().unwrap());
    assert_eq!(store.read(ChunkId::data(p, rank)).unwrap(), b"pointee");
}

#[test]
fn commit_validation_failure_leaves_store_usable() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    let c = write_one(&store, p, b"ok");
    // Write to an unallocated id fails validation up front.
    let err = store
        .commit(vec![
            CommitOp::WriteChunk {
                id: c,
                bytes: b"x".to_vec(),
            },
            CommitOp::WriteChunk {
                id: ChunkId::data(p, 777),
                bytes: b"y".to_vec(),
            },
        ])
        .unwrap_err();
    assert!(matches!(err, CoreError::NotAllocated(_)));
    // Nothing applied; the store still works.
    assert_eq!(store.read(c).unwrap(), b"ok");
    write_one(&store, p, b"still alive");
}

#[test]
fn many_chunks_grow_the_tree() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    // fanout 4 → 100 chunks forces height ≥ 4.
    let mut ids = Vec::new();
    for i in 0..100u32 {
        let c = store.allocate_chunk(p).unwrap();
        store
            .commit(vec![CommitOp::WriteChunk {
                id: c,
                bytes: format!("chunk number {i}").into_bytes(),
            }])
            .unwrap();
        ids.push(c);
    }
    for (i, c) in ids.iter().enumerate() {
        assert_eq!(
            store.read(*c).unwrap(),
            format!("chunk number {i}").as_bytes()
        );
    }
    assert_eq!(store.written_ranks(p).unwrap().len(), 100);
}

#[test]
fn variable_chunk_sizes_roundtrip() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    for len in [0usize, 1, 100, 1000, 3000] {
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let c = write_one(&store, p, &data);
        assert_eq!(store.read(c).unwrap(), data, "len {len}");
    }
}

#[test]
fn oversized_chunk_rejected() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    let c = store.allocate_chunk(p).unwrap();
    let err = store
        .commit(vec![CommitOp::WriteChunk {
            id: c,
            bytes: vec![0u8; 8192], // Exceeds the 4096-byte segment.
        }])
        .unwrap_err();
    assert!(matches!(err, CoreError::ChunkTooLarge { .. }));
}

// ---------------------------------------------------------------------------
// Persistence and recovery (§4.8).
// ---------------------------------------------------------------------------

#[test]
fn persists_across_clean_reopen() {
    let fx = Fixture::new(counter_mode());
    let (p, ids) = {
        let store = fx.create();
        let p = make_partition(&store);
        let ids: Vec<ChunkId> = (0..20)
            .map(|i| write_one(&store, p, format!("persistent {i}").as_bytes()))
            .collect();
        store.close().unwrap();
        (p, ids)
    };
    let store = fx.reopen().unwrap();
    for (i, c) in ids.iter().enumerate() {
        assert_eq!(
            store.read(*c).unwrap(),
            format!("persistent {i}").as_bytes()
        );
    }
    // The partition is still usable.
    write_one(&store, p, b"after reopen");
}

#[test]
fn recovers_residual_log_without_checkpoint() {
    let fx = Fixture::new(counter_mode());
    let (p, ids) = {
        let store = fx.create();
        let p = make_partition(&store);
        // No checkpoint after these commits: they live only in the
        // residual log.
        let ids: Vec<ChunkId> = (0..10)
            .map(|i| write_one(&store, p, format!("residual {i}").as_bytes()))
            .collect();
        (p, ids)
        // Dropped without close(): simulates a crash after the last commit
        // (all commits flushed the untrusted store).
    };
    let store = fx.reopen().unwrap();
    for (i, c) in ids.iter().enumerate() {
        assert_eq!(store.read(*c).unwrap(), format!("residual {i}").as_bytes());
    }
    write_one(&store, p, b"continues");
}

#[test]
fn recovers_deallocations_from_residual_log() {
    let fx = Fixture::new(counter_mode());
    let (c_kept, c_gone) = {
        let store = fx.create();
        let p = make_partition(&store);
        let kept = write_one(&store, p, b"kept");
        let gone = write_one(&store, p, b"gone");
        store
            .commit(vec![CommitOp::DeallocChunk { id: gone }])
            .unwrap();
        (kept, gone)
    };
    let store = fx.reopen().unwrap();
    assert_eq!(store.read(c_kept).unwrap(), b"kept");
    assert!(matches!(
        store.read(c_gone),
        Err(CoreError::NotAllocated(_))
    ));
}

#[test]
fn torn_tail_commit_is_discarded() {
    let fx = Fixture::new(counter_mode());
    let crash_store = {
        let crash =
            Arc::new(CrashStore::new(Arc::clone(&fx.untrusted) as SharedUntrusted).unwrap());
        let store = ChunkStore::create(
            Arc::clone(&crash) as SharedUntrusted,
            fx.backend(),
            fx.secret.clone(),
            fx.config.clone(),
        )
        .unwrap();
        let p = make_partition(&store);
        let c = write_one(&store, p, b"durable");
        // Write more, then crash losing the unflushed tail of the last
        // commit. CrashStore applies flushes, so committed state survives;
        // we simulate the torn write by capturing mid-commit state: commit
        // flushes internally, so instead corrupt the tail manually below.
        let _ = (p, c);
        crash
    };
    let _ = crash_store;
    // (The flush-every-commit design means torn tails only arise from
    // physical partial writes; that path is covered by
    // `torn_bytes_after_valid_tail_ignored` below.)
}

#[test]
fn torn_bytes_after_valid_tail_ignored() {
    let fx = Fixture::new(counter_mode());
    let (c, image) = {
        let store = fx.create();
        let p = make_partition(&store);
        let c = write_one(&store, p, b"acknowledged");
        (c, fx.untrusted.image())
    };
    // Append garbage beyond the valid tail, simulating a torn final write.
    let mut torn = image;
    torn.extend_from_slice(&[0xABu8; 97]);
    let store = fx.reopen_image(torn).unwrap();
    assert_eq!(store.read(c).unwrap(), b"acknowledged");
}

#[test]
fn recovery_across_checkpoint_and_more_commits() {
    let fx = Fixture::new(counter_mode());
    let ids = {
        let store = fx.create();
        let p = make_partition(&store);
        let mut ids = Vec::new();
        for i in 0..8 {
            ids.push(write_one(&store, p, format!("pre {i}").as_bytes()));
        }
        store.checkpoint().unwrap();
        for i in 0..8 {
            ids.push(write_one(&store, p, format!("post {i}").as_bytes()));
        }
        ids
    };
    let store = fx.reopen().unwrap();
    for (i, c) in ids.iter().enumerate().take(8) {
        assert_eq!(store.read(*c).unwrap(), format!("pre {i}").as_bytes());
    }
    for (i, c) in ids.iter().enumerate().skip(8) {
        assert_eq!(
            store.read(*c).unwrap(),
            format!("post {}", i - 8).as_bytes()
        );
    }
}

#[test]
fn automatic_checkpoint_by_threshold() {
    let fx = Fixture::new(counter_mode());
    let mut config = fx.config.clone();
    config.checkpoint_threshold = 4;
    let store = ChunkStore::create(
        Arc::clone(&fx.untrusted) as SharedUntrusted,
        fx.backend(),
        fx.secret.clone(),
        config,
    )
    .unwrap();
    let p = make_partition(&store);
    for i in 0..60u32 {
        write_one(&store, p, format!("auto {i}").as_bytes());
    }
    assert!(store.stats().checkpoints >= 2, "threshold checkpoints ran");
    // Everything still readable after the churn.
    for rank in store.written_ranks(p).unwrap() {
        store.read(ChunkId::data(p, rank)).unwrap();
    }
}

// ---------------------------------------------------------------------------
// Tamper detection (§4.1, §4.8.2).
// ---------------------------------------------------------------------------

#[test]
fn flipped_chunk_byte_detected_on_read() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    let c = write_one(&store, p, b"precious licensing state");
    // Find the chunk's bytes in the raw image and corrupt one byte of
    // every candidate position after the superblock; the read must either
    // fail closed or return the right data (if we hit slack space).
    let len = fx.untrusted.len().unwrap();
    let mut detected = false;
    // Segments start right after the 512-byte superblock.
    for offset in (512..len).step_by(37) {
        fx.untrusted.tamper(offset, 0x40);
        // Flush the validated-read cache so this read really hits the
        // tampered storage rather than a previously validated body.
        store.drop_read_cache();
        match store.read(c) {
            Err(e) if e.is_tamper() => detected = true,
            Err(_) => detected = true,
            Ok(data) => assert_eq!(data, b"precious licensing state"),
        }
        fx.untrusted.tamper(offset, 0x40); // Undo.
    }
    assert!(detected, "no corruption was ever detected");
    assert_eq!(store.read(c).unwrap(), b"precious licensing state");
}

#[test]
fn replayed_database_image_rejected() {
    let fx = Fixture::new(counter_mode());
    let old_image = {
        let store = fx.create();
        let p = make_partition(&store);
        write_one(&store, p, b"balance: $100");
        store.close().unwrap();
        let old = fx.untrusted.image();
        // The consumer "purchases goods": more commits advance the counter
        // well past the replay window.
        let store = fx.reopen().unwrap();
        for i in 0..10 {
            write_one(&store, p, format!("purchase {i}").as_bytes());
        }
        store.close().unwrap();
        old
    };
    // Replay the saved image (§1: "a consumer could save a copy of the
    // local database, purchase some goods, then replay the saved copy").
    let err = fx.reopen_image(old_image).unwrap_err();
    assert!(
        matches!(
            err,
            CoreError::TamperDetected(TamperKind::CounterWindowViolated { .. })
        ),
        "got {err:?}"
    );
}

#[test]
fn wrong_secret_key_fails_validation() {
    let fx = Fixture::new(counter_mode());
    {
        let store = fx.create();
        let p = make_partition(&store);
        write_one(&store, p, b"sealed");
        store.close().unwrap();
    }
    let err = ChunkStore::open(
        Arc::clone(&fx.untrusted) as SharedUntrusted,
        fx.backend(),
        SecretKey::random(24),
        fx.config.clone(),
    )
    .map(|_| ())
    .unwrap_err();
    // The leader will not decrypt / identify under the wrong key.
    assert!(
        err.is_tamper() || matches!(err, CoreError::Corrupt(_)),
        "got {err:?}"
    );
}

#[test]
fn counter_rollback_is_detected() {
    // A fresh (zeroed) counter with an old database image means the
    // counter was rolled back or swapped — the log is "ahead" of it.
    let fx = Fixture::new(counter_mode());
    {
        let store = fx.create();
        let p = make_partition(&store);
        for i in 0..20 {
            write_one(&store, p, format!("c{i}").as_bytes());
        }
        store.close().unwrap();
    }
    let fresh_counter = TrustedBackend::Counter(Arc::new(CounterOverTrusted::new(Arc::new(
        MemTrustedStore::new(64),
    ))));
    let err = ChunkStore::open(
        Arc::clone(&fx.untrusted) as SharedUntrusted,
        fresh_counter,
        fx.secret.clone(),
        fx.config.clone(),
    )
    .map(|_| ())
    .unwrap_err();
    assert!(
        matches!(
            err,
            CoreError::TamperDetected(TamperKind::CounterWindowViolated { .. })
        ),
        "got {err:?}"
    );
}

// ---------------------------------------------------------------------------
// Direct hash validation (§4.8.2.1).
// ---------------------------------------------------------------------------

#[test]
fn direct_mode_roundtrip_and_reopen() {
    let fx = Fixture::new(ValidationMode::DirectHash);
    let ids = {
        let store = fx.create();
        let p = make_partition(&store);
        let ids: Vec<ChunkId> = (0..12)
            .map(|i| write_one(&store, p, format!("direct {i}").as_bytes()))
            .collect();
        ids
    };
    let store = fx.reopen().unwrap();
    for (i, c) in ids.iter().enumerate() {
        assert_eq!(store.read(*c).unwrap(), format!("direct {i}").as_bytes());
    }
}

#[test]
fn direct_mode_replay_rejected() {
    let fx = Fixture::new(ValidationMode::DirectHash);
    let old_image = {
        let store = fx.create();
        let p = make_partition(&store);
        write_one(&store, p, b"before");
        let old = fx.untrusted.image();
        write_one(&store, p, b"after");
        store.close().unwrap();
        old
    };
    let err = fx.reopen_image(old_image).unwrap_err();
    assert!(err.is_tamper(), "got {err:?}");
}

#[test]
fn direct_mode_unacknowledged_tail_ignored() {
    // Direct validation stores the exact tail: bytes past it (a commit
    // whose trusted-store update never happened) are ignored (§4.8.2.1:
    // "the last commit set in the untrusted store is ignored").
    let fx = Fixture::new(ValidationMode::DirectHash);
    let (c1, image, register_img) = {
        let store = fx.create();
        let p = make_partition(&store);
        let c1 = write_one(&store, p, b"acknowledged");
        let register_img = fx.register.image();
        // One more commit whose register update we roll back.
        write_one(&store, p, b"unacknowledged");
        (c1, fx.untrusted.image(), register_img)
    };
    fx.register.restore(register_img);
    let store = fx.reopen_image(image).unwrap();
    assert_eq!(store.read(c1).unwrap(), b"acknowledged");
}

// ---------------------------------------------------------------------------
// Partitions, copies, diffs (§5).
// ---------------------------------------------------------------------------

#[test]
fn partitions_are_isolated() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    let q = make_partition(&store);
    let cp = write_one(&store, p, b"in p");
    let cq = write_one(&store, q, b"in q");
    assert_eq!(cp.pos, cq.pos, "same position in different partitions");
    assert_eq!(store.read(cp).unwrap(), b"in p");
    assert_eq!(store.read(cq).unwrap(), b"in q");
}

#[test]
fn partition_with_distinct_ciphers() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    for (cipher, hash) in [
        (CipherKind::Null, HashKind::Null),
        (CipherKind::Des, HashKind::Sha1),
        (CipherKind::TripleDes, HashKind::Sha1),
        (CipherKind::Aes128, HashKind::Sha256),
        (CipherKind::Aes256, HashKind::Sha256),
    ] {
        let p = store.allocate_partition().unwrap();
        store
            .commit(vec![CommitOp::CreatePartition {
                id: p,
                params: CryptoParams::generate(cipher, hash),
            }])
            .unwrap();
        let c = write_one(&store, p, b"parameterized");
        assert_eq!(store.read(c).unwrap(), b"parameterized", "{cipher:?}");
        assert_eq!(store.partition_kinds(p).unwrap(), (cipher, hash));
    }
}

#[test]
fn snapshot_preserves_state_under_updates() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    let c = write_one(&store, p, b"v1");
    // Snapshot.
    let snap = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CopyPartition { dst: snap, src: p }])
        .unwrap();
    // Update the source; the snapshot must keep v1.
    store
        .commit(vec![CommitOp::WriteChunk {
            id: c,
            bytes: b"v2".to_vec(),
        }])
        .unwrap();
    assert_eq!(store.read(c).unwrap(), b"v2");
    assert_eq!(store.read(ChunkId::data(snap, c.pos.rank)).unwrap(), b"v1");
}

#[test]
fn snapshot_is_independently_writable() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    let c = write_one(&store, p, b"shared");
    let snap = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CopyPartition { dst: snap, src: p }])
        .unwrap();
    // "The chunks of Q can also be modified independently of P" (§5.3).
    store
        .commit(vec![CommitOp::WriteChunk {
            id: ChunkId::data(snap, c.pos.rank),
            bytes: b"diverged".to_vec(),
        }])
        .unwrap();
    assert_eq!(store.read(c).unwrap(), b"shared");
    assert_eq!(
        store.read(ChunkId::data(snap, c.pos.rank)).unwrap(),
        b"diverged"
    );
}

#[test]
fn diff_reports_created_updated_deallocated() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    let updated = write_one(&store, p, b"old");
    let gone = write_one(&store, p, b"to delete");
    let _stable = write_one(&store, p, b"unchanged");
    let snap1 = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CopyPartition { dst: snap1, src: p }])
        .unwrap();

    store
        .commit(vec![
            CommitOp::WriteChunk {
                id: updated,
                bytes: b"new".to_vec(),
            },
            CommitOp::DeallocChunk { id: gone },
        ])
        .unwrap();
    let created = write_one(&store, p, b"brand new");

    let snap2 = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CopyPartition { dst: snap2, src: p }])
        .unwrap();

    let mut diff = store.diff(snap1, snap2).unwrap();
    diff.sort_by_key(|e| e.pos.rank);
    let find = |rank: u64| diff.iter().find(|e| e.pos.rank == rank).map(|e| e.change);
    assert_eq!(find(updated.pos.rank), Some(DiffChange::Updated));
    if created.pos.rank == gone.pos.rank {
        // The deallocated id was reused (§4.4): written in both snapshots
        // with different content, so the diff reads as an update.
        assert_eq!(find(created.pos.rank), Some(DiffChange::Updated));
        assert_eq!(diff.len(), 2);
    } else {
        assert_eq!(find(created.pos.rank), Some(DiffChange::Created));
        assert_eq!(find(gone.pos.rank), Some(DiffChange::Deallocated));
        assert_eq!(diff.len(), 3);
    }
}

#[test]
fn dealloc_partition_removes_copies_too() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    let c = write_one(&store, p, b"data");
    let snap = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CopyPartition { dst: snap, src: p }])
        .unwrap();
    store
        .commit(vec![CommitOp::DeallocPartition { id: p }])
        .unwrap();
    assert!(!store.partition_exists(p));
    assert!(
        !store.partition_exists(snap),
        "copies deallocated with source (§5.1)"
    );
    assert!(store.read(c).is_err());
    assert!(store.read(ChunkId::data(snap, 0)).is_err());
}

#[test]
fn partition_ids_reused_after_dealloc() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    store
        .commit(vec![CommitOp::DeallocPartition { id: p }])
        .unwrap();
    let q = store.allocate_partition().unwrap();
    assert_eq!(q, p, "partition ids are reused");
}

#[test]
fn snapshots_survive_reopen() {
    let fx = Fixture::new(counter_mode());
    let (c, snap) = {
        let store = fx.create();
        let p = make_partition(&store);
        let c = write_one(&store, p, b"v1");
        let snap = store.allocate_partition().unwrap();
        store
            .commit(vec![CommitOp::CopyPartition { dst: snap, src: p }])
            .unwrap();
        store
            .commit(vec![CommitOp::WriteChunk {
                id: c,
                bytes: b"v2".to_vec(),
            }])
            .unwrap();
        (c, snap)
    };
    let store = fx.reopen().unwrap();
    assert_eq!(store.read(c).unwrap(), b"v2");
    assert_eq!(store.read(ChunkId::data(snap, c.pos.rank)).unwrap(), b"v1");
}

#[test]
fn copy_after_checkpoint_and_reopen() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    let c = write_one(&store, p, b"base");
    store.checkpoint().unwrap();
    let snap = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CopyPartition { dst: snap, src: p }])
        .unwrap();
    store
        .commit(vec![CommitOp::WriteChunk {
            id: c,
            bytes: b"changed".to_vec(),
        }])
        .unwrap();
    drop(store);
    let store = fx.reopen().unwrap();
    assert_eq!(store.read(c).unwrap(), b"changed");
    assert_eq!(
        store.read(ChunkId::data(snap, c.pos.rank)).unwrap(),
        b"base"
    );
}

// ---------------------------------------------------------------------------
// Cleaning (§4.9.5, §5.5).
// ---------------------------------------------------------------------------

#[test]
fn cleaner_reclaims_and_preserves_data() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    // Create churn: write and overwrite to fill several segments with
    // obsolete versions.
    let mut ids = Vec::new();
    for i in 0..20u32 {
        ids.push(write_one(&store, p, &vec![i as u8; 300]));
    }
    for round in 0..4u8 {
        for c in &ids {
            store
                .commit(vec![CommitOp::WriteChunk {
                    id: *c,
                    bytes: vec![round; 300],
                }])
                .unwrap();
        }
    }
    store.checkpoint().unwrap();
    let cleaned = store.clean(8).unwrap();
    assert!(cleaned > 0, "no segments cleaned");
    for c in &ids {
        assert_eq!(store.read(*c).unwrap(), vec![3u8; 300]);
    }
    // Cleaned space is reused by further writes.
    for i in 0..10u32 {
        write_one(&store, p, &[i as u8; 200]);
    }
}

#[test]
fn cleaner_respects_snapshots() {
    let fx = Fixture::new(counter_mode());
    let store = fx.create();
    let p = make_partition(&store);
    let c = write_one(&store, p, b"snapshot me");
    let snap = store.allocate_partition().unwrap();
    store
        .commit(vec![CommitOp::CopyPartition { dst: snap, src: p }])
        .unwrap();
    // Obsolete the version in p but not in the snapshot.
    store
        .commit(vec![CommitOp::WriteChunk {
            id: c,
            bytes: b"newer".to_vec(),
        }])
        .unwrap();
    // Churn to fill segments, checkpoint, clean everything cleanable.
    for i in 0..30u32 {
        write_one(&store, p, &[i as u8; 200]);
    }
    store.checkpoint().unwrap();
    store.clean(100).unwrap();
    assert_eq!(
        store.read(ChunkId::data(snap, c.pos.rank)).unwrap(),
        b"snapshot me",
        "cleaner must keep versions current only in copies (§5.5)"
    );
    assert_eq!(store.read(c).unwrap(), b"newer");
}

#[test]
fn cleaner_state_survives_crash_recovery() {
    let fx = Fixture::new(counter_mode());
    let ids = {
        let store = fx.create();
        let p = make_partition(&store);
        let mut ids = Vec::new();
        for i in 0..15u32 {
            ids.push(write_one(&store, p, &vec![i as u8; 250]));
        }
        for c in &ids {
            store
                .commit(vec![CommitOp::WriteChunk {
                    id: *c,
                    bytes: vec![0xEE; 250],
                }])
                .unwrap();
        }
        store.checkpoint().unwrap();
        store.clean(4).unwrap();
        // Crash without checkpoint: cleaner records live in the residual
        // log only.
        ids
    };
    let store = fx.reopen().unwrap();
    for c in &ids {
        assert_eq!(store.read(*c).unwrap(), vec![0xEE; 250]);
    }
}

#[test]
fn non_revalidating_cleaner_works() {
    let fx = Fixture::new(counter_mode());
    let mut config = fx.config.clone();
    config.cleaner_revalidates = false;
    let store = ChunkStore::create(
        Arc::clone(&fx.untrusted) as SharedUntrusted,
        fx.backend(),
        fx.secret.clone(),
        config,
    )
    .unwrap();
    let p = make_partition(&store);
    let mut ids = Vec::new();
    for i in 0..12u32 {
        ids.push(write_one(&store, p, &vec![i as u8; 300]));
    }
    for c in &ids {
        store
            .commit(vec![CommitOp::WriteChunk {
                id: *c,
                bytes: vec![0x55; 300],
            }])
            .unwrap();
    }
    store.checkpoint().unwrap();
    store.clean(6).unwrap();
    for c in &ids {
        assert_eq!(store.read(*c).unwrap(), vec![0x55; 300]);
    }
}

// ---------------------------------------------------------------------------
// Counter lag windows (§4.8.2.2).
// ---------------------------------------------------------------------------

#[test]
fn counter_lag_within_delta_recovers() {
    // With Δut = 5 the trusted counter is flushed every 5 commits; a crash
    // right before a flush leaves the log up to 5 ahead — accepted.
    let fx = Fixture::new(counter_mode());
    let counter = Arc::new(CounterOverTrusted::new(
        Arc::clone(&fx.register) as Arc<dyn TrustedStore>
    ));
    let ids = {
        let store = ChunkStore::create(
            Arc::clone(&fx.untrusted) as SharedUntrusted,
            TrustedBackend::Counter(Arc::clone(&counter) as Arc<dyn MonotonicCounter>),
            fx.secret.clone(),
            fx.config.clone(),
        )
        .unwrap();
        let p = make_partition(&store);
        let ids: Vec<ChunkId> = (0..7)
            .map(|i| write_one(&store, p, format!("lag {i}").as_bytes()))
            .collect();
        ids
    };
    let store = fx.reopen().unwrap();
    for (i, c) in ids.iter().enumerate() {
        assert_eq!(store.read(*c).unwrap(), format!("lag {i}").as_bytes());
    }
}

#[test]
fn strict_delta_zero_flushes_every_commit() {
    let fx = Fixture::new(ValidationMode::Counter {
        delta_ut: 0,
        delta_tu: 0,
    });
    let store = fx.create();
    let p = make_partition(&store);
    let before = fx.register.stats().snapshot().writes;
    write_one(&store, p, b"a");
    write_one(&store, p, b"b");
    let after = fx.register.stats().snapshot().writes;
    assert!(after >= before + 2, "counter must flush on every commit");
}
